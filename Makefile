# LBM-IB reproduction — common workflows.

PYTHON ?= python

.PHONY: install test test-quick test-faults test-verify verify-physics bench bench-fused examples report clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Fast inner-loop smoke subset (< 60 s): everything except the tests
# marked slow, faults, or verify.  Run the full `make test` plus
# `make verify-physics` before merging.
test-quick:
	$(PYTHON) -m pytest -x -m "not slow and not faults and not verify" tests/

# Fault-injection / resilience suite.  Each test is wrapped in a hard
# SIGALRM deadline (see tests/conftest.py), so a reintroduced deadlock
# fails CI with a traceback instead of hanging it.
test-faults:
	LBMIB_FAULT_TEST_TIMEOUT=120 $(PYTHON) -m pytest -m faults tests/

# The differential-verification pytest suite only.
test-verify:
	$(PYTHON) -m pytest -m verify tests/

# The physics verification gate: golden baselines, the differential
# oracle across all solver variants on generated configs, and the
# deliberate-perturbation self-test.  Gates every PR that touches a
# solver hot path.  Regenerate baselines after an *intentional* physics
# change with: PYTHONPATH=src $(PYTHON) -m repro.verify --regen-golden
verify-physics:
	PYTHONPATH=src $(PYTHON) -m repro.verify --cases 3

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sequential-vs-fused hot-path benchmark; writes
# benchmarks/results/BENCH_fused.json (per-kernel + whole-step wall
# time and tracemalloc allocation profile).  Override the run size with
# e.g. BENCH_FUSED_ARGS="--scale 8 --steps 3".
bench-fused:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fused_kernels.py $(BENCH_FUSED_ARGS)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/flexible_sheet_in_flow.py --steps 100
	$(PYTHON) examples/circular_plate.py --steps 100
	$(PYTHON) examples/scaling_study.py
	$(PYTHON) examples/extensions_tour.py
	$(PYTHON) examples/convergence_study.py

# print every reproduced table/figure without pytest
report:
	$(PYTHON) -m repro.experiments

clean:
	rm -rf benchmarks/results examples/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
