# LBM-IB reproduction — common workflows.

PYTHON ?= python

.PHONY: install test test-faults bench examples report clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Fault-injection / resilience suite.  Each test is wrapped in a hard
# SIGALRM deadline (see tests/conftest.py), so a reintroduced deadlock
# fails CI with a traceback instead of hanging it.
test-faults:
	LBMIB_FAULT_TEST_TIMEOUT=120 $(PYTHON) -m pytest -m faults tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/flexible_sheet_in_flow.py --steps 100
	$(PYTHON) examples/circular_plate.py --steps 100
	$(PYTHON) examples/scaling_study.py
	$(PYTHON) examples/extensions_tour.py
	$(PYTHON) examples/convergence_study.py

# print every reproduced table/figure without pytest
report:
	$(PYTHON) -m repro.experiments

clean:
	rm -rf benchmarks/results examples/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
