# LBM-IB reproduction — common workflows.

PYTHON ?= python

# bench-gate knobs: the candidate must be produced with the same
# workload as the checked-in baseline (identity keys are compared
# exactly), the tolerance is generous because the smoke workload is
# tiny, and only the stable headline keys are gated by default
# (aggregate step times, deterministic allocation bytes, speedups —
# individual sub-millisecond kernel timings are pure scheduler noise).
BENCH_GATE_BASELINE ?= benchmarks/baselines/BENCH_fused.json
BENCH_GATE_ARGS ?= --scale 8 --steps 3 --warmup 2 --scatter-repeats 2
BENCH_GATE_TOL ?= 0.75
BENCH_GATE_KEYS ?= '*.step_seconds' '*alloc*_bytes' '*speedup*' '*_per_second'

# batched-execution benchmark gate: same pattern as the fused gate —
# the checked-in baseline pins the smoke workload, and the candidate
# must be produced with identical arguments.
BENCH_BATCH_BASELINE ?= benchmarks/baselines/BENCH_batch.json
BENCH_BATCH_GATE_ARGS ?= --steps 6 --warmup 2 --batch-sizes 1 4 16

# in-place AA-pattern benchmark gate: the lattice footprint ratio is
# structural (2.0) and the timing keys follow the fused-gate tolerance.
BENCH_INPLACE_BASELINE ?= benchmarks/baselines/BENCH_inplace.json
BENCH_INPLACE_GATE_ARGS ?= --scale 8 --steps 3 --warmup 2

# precision-policy benchmark gate: gated at the full Table-I grid
# (scale 2) rather than a smoke grid — the float32 speedup is a
# memory-bandwidth effect that a dispatch-dominated tiny grid cannot
# show, so the checked-in baseline itself carries the >= 1.3x
# float32-fused acceptance number.
BENCH_PRECISION_BASELINE ?= benchmarks/baselines/BENCH_precision.json
BENCH_PRECISION_GATE_ARGS ?= --scale 2 --steps 8 --warmup 2

.PHONY: install test test-quick test-faults test-chaos test-service test-verify verify-physics bench bench-fused bench-inplace bench-batch bench-precision bench-tune bench-gate trace-example examples report clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Fast inner-loop smoke subset (< 60 s): everything except the tests
# marked slow, faults, or verify.  Run the full `make test` plus
# `make verify-physics` before merging.
test-quick:
	$(PYTHON) -m pytest -x --durations=15 -m "not slow and not faults and not verify" tests/

# Fault-injection / resilience suite.  Each test is wrapped in a hard
# SIGALRM deadline (see tests/conftest.py), so a reintroduced deadlock
# fails CI with a traceback instead of hanging it.
test-faults:
	LBMIB_FAULT_TEST_TIMEOUT=120 $(PYTHON) -m pytest -m faults tests/

# Deterministic chaos suite for the fault-tolerant batch scheduler:
# seeded fault plans (slot corruption, checkpoint truncation, scheduler
# kill + resume) with completed results pinned bit-identical to a
# fault-free golden run.  Set LBMIB_CHAOS_DIR to keep the incident
# journal and resume manifest for inspection (CI archives them on
# failure).
test-chaos:
	LBMIB_FAULT_TEST_TIMEOUT=180 $(PYTHON) -m pytest -m chaos tests/

# Simulation-service suite: async job API lifecycle, weighted-fair
# queue properties (seeded random schedules with greedy shrinking),
# admission control, and the soak smoke.  The slow full soak (220 jobs
# + kill/resume) and the service chaos scenario run under `make test`
# / the CI service job.  Each test carries the SIGALRM deadline from
# tests/conftest.py.
test-service:
	LBMIB_FAULT_TEST_TIMEOUT=180 $(PYTHON) -m pytest -m "service and not slow" tests/

# The differential-verification pytest suite only.
test-verify:
	$(PYTHON) -m pytest -m verify tests/

# The physics verification gate: golden baselines, the differential
# oracle across all solver variants on generated configs, and the
# deliberate-perturbation self-test.  Gates every PR that touches a
# solver hot path.  Regenerate baselines after an *intentional* physics
# change with: PYTHONPATH=src $(PYTHON) -m repro.verify --regen-golden
verify-physics:
	PYTHONPATH=src $(PYTHON) -m repro.verify --cases 3

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sequential-vs-fused hot-path benchmark; writes
# benchmarks/results/BENCH_fused.json (per-kernel + whole-step wall
# time and tracemalloc allocation profile).  Override the run size with
# e.g. BENCH_FUSED_ARGS="--scale 8 --steps 3".
bench-fused:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fused_kernels.py $(BENCH_FUSED_ARGS)

# Single-lattice AA-pattern benchmark (variant='inplace' vs fused);
# writes benchmarks/results/BENCH_inplace.json (whole-step wall time,
# allocation profile, and the fused/inplace lattice footprint ratio).
# Override the run size with e.g. BENCH_INPLACE_ARGS="--scale 8".
bench-inplace:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_inplace.py $(BENCH_INPLACE_ARGS)

# Batched multi-simulation benchmark (solo loop vs vectorized batch,
# plus the continuous-batching scheduler); writes
# benchmarks/results/BENCH_batch.json.  Override the run size with e.g.
# BENCH_BATCH_ARGS="--steps 10 --batch-sizes 1 8".
bench-batch:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_batch_throughput.py $(BENCH_BATCH_ARGS)

# Precision-policy benchmark (float32/mixed storage vs float64 on the
# fused and in-place hot paths); writes
# benchmarks/results/BENCH_precision.json.  Non-gating smoke — the
# regression gate lives in bench-gate.  Override the run size with
# e.g. BENCH_PRECISION_ARGS="--scale 4 --steps 4".
bench-precision:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_precision.py $(BENCH_PRECISION_ARGS)

# Workload-adaptive autotuner benchmark (model-guided ranking, measured
# top-N probe, decision cache) against an exhaustive candidate sweep;
# writes benchmarks/results/BENCH_tune.json and asserts the acceptance
# ratios (auto within 5% of the best hand-picked candidate, >= 1.3x
# better than the worst) on the full Table-I grid.  Override the run
# size with e.g. BENCH_TUNE_ARGS="--scale 4 --steps 2 --no-check".
bench-tune:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_tune.py $(BENCH_TUNE_ARGS)

# Benchmark-regression gate: re-run the fused and batched benchmarks at
# each baseline's smoke workload and diff them against the checked-in
# records.  Exit 1 = a gated key regressed beyond BENCH_GATE_TOL; exit
# 2 = the two records describe different workloads (regenerate with
# `make bench-fused BENCH_FUSED_ARGS="$(BENCH_GATE_ARGS)"` /
# `make bench-batch BENCH_BATCH_ARGS="$(BENCH_BATCH_GATE_ARGS)"` and
# copy the results into benchmarks/baselines/ after an intentional
# change).
bench-gate:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fused_kernels.py $(BENCH_GATE_ARGS)
	PYTHONPATH=src $(PYTHON) -m repro.observe compare \
		$(BENCH_GATE_BASELINE) benchmarks/results/BENCH_fused.json \
		--tol $(BENCH_GATE_TOL) --keys $(BENCH_GATE_KEYS)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_batch_throughput.py $(BENCH_BATCH_GATE_ARGS)
	PYTHONPATH=src $(PYTHON) -m repro.observe compare \
		$(BENCH_BATCH_BASELINE) benchmarks/results/BENCH_batch.json \
		--tol $(BENCH_GATE_TOL) --keys $(BENCH_GATE_KEYS)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_inplace.py $(BENCH_INPLACE_GATE_ARGS)
	PYTHONPATH=src $(PYTHON) -m repro.observe compare \
		$(BENCH_INPLACE_BASELINE) benchmarks/results/BENCH_inplace.json \
		--tol $(BENCH_GATE_TOL) --keys $(BENCH_GATE_KEYS)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_precision.py $(BENCH_PRECISION_GATE_ARGS)
	PYTHONPATH=src $(PYTHON) -m repro.observe compare \
		$(BENCH_PRECISION_BASELINE) benchmarks/results/BENCH_precision.json \
		--tol $(BENCH_GATE_TOL) --keys $(BENCH_GATE_KEYS)

# Chrome-trace demo: traces a small sequential + cube run and writes
# benchmarks/results/trace_example.json (open at chrome://tracing or
# https://ui.perfetto.dev) plus a metrics snapshot next to it.
trace-example:
	PYTHONPATH=src $(PYTHON) -m repro.observe trace-example \
		--output benchmarks/results/trace_example.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/flexible_sheet_in_flow.py --steps 100
	$(PYTHON) examples/circular_plate.py --steps 100
	$(PYTHON) examples/scaling_study.py
	$(PYTHON) examples/extensions_tour.py
	$(PYTHON) examples/convergence_study.py
	$(PYTHON) examples/service_demo.py

# print every reproduced table/figure without pytest
report:
	$(PYTHON) -m repro.experiments

clean:
	rm -rf benchmarks/results examples/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
