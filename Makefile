# LBM-IB reproduction — common workflows.

PYTHON ?= python

.PHONY: install test bench examples report clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/flexible_sheet_in_flow.py --steps 100
	$(PYTHON) examples/circular_plate.py --steps 100
	$(PYTHON) examples/scaling_study.py
	$(PYTHON) examples/extensions_tour.py
	$(PYTHON) examples/convergence_study.py

# print every reproduced table/figure without pytest
report:
	$(PYTHON) -m repro.experiments

clean:
	rm -rf benchmarks/results examples/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
