"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so
PEP-517 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation`` fall back to
the classic ``setup.py develop`` code path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
