"""Multi-tenant weighted-fair job queues with bounded depth.

Start-time fair queuing (SFQ): every tenant carries a virtual time that
advances by ``1 / weight`` per served job, and the scheduler always
serves the tenant with the smallest virtual time among those with work.
Over any busy interval each tenant therefore receives service in
proportion to its weight, and no backlogged tenant starves — the
classic packet-scheduling result, applied to simulation jobs.

Two details matter for a job service:

* **vtime catch-up** — a tenant that idles does not bank credit.  When
  a job arrives at an empty tenant queue its virtual time is raised to
  the current global floor, so a returning tenant competes from *now*
  rather than replaying its idle period as a monopolizing burst.
* **bounded depth** — each tenant's queue has a depth cap; a push past
  it raises :class:`~repro.errors.QueueFullError` carrying a
  retry-after hint (backpressure is an admission-time signal, never a
  silent drop).

All operations are thread-safe: the asyncio submission side and the
scheduler's executor thread (pulling through ``refill_source``) share
one lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.batch.scheduler import JobRequest, compatibility_key
from repro.errors import ConfigurationError, QueueFullError

__all__ = ["TenantSpec", "PendingJob", "WeightedFairQueues"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share and backpressure limits.

    ``weight`` is the fair-share proportion (a weight-3 tenant gets
    3x the service of a weight-1 tenant over any contended interval);
    ``max_depth`` is the pending-job cap; ``retry_after_seconds`` is
    the hint returned with a queue-full rejection.
    """

    name: str
    weight: float = 1.0
    max_depth: int = 64
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} weight must be positive, got {self.weight}"
            )
        if self.max_depth < 1:
            raise ConfigurationError(
                f"tenant {self.name!r} max_depth must be >= 1, got {self.max_depth}"
            )
        if self.retry_after_seconds <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} retry_after_seconds must be positive"
            )


@dataclass
class PendingJob:
    """One queued job: the scheduler request plus service bookkeeping."""

    job_id: str
    tenant: str
    request: JobRequest
    state_bytes: int
    state_seed: int | None = None
    enqueued_at: float = 0.0
    compat_key: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.compat_key:
            self.compat_key = compatibility_key(self.request.config)


class _TenantQueue:
    __slots__ = ("spec", "jobs", "vtime", "reserved")

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.jobs: list[PendingJob] = []
        self.vtime = 0.0
        #: Slots held by in-flight reservations (counted toward the cap).
        self.reserved = 0


class WeightedFairQueues:
    """Per-tenant FIFO queues drained in weighted-fair order."""

    def __init__(self, tenants: "list[TenantSpec] | tuple[TenantSpec, ...]") -> None:
        if not tenants:
            raise ConfigurationError("at least one tenant is required")
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantQueue] = {}
        for spec in tenants:
            if spec.name in self._tenants:
                raise ConfigurationError(f"duplicate tenant {spec.name!r}")
            self._tenants[spec.name] = _TenantQueue(spec)

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantSpec:
        """The spec for ``name`` (KeyError for unknown tenants)."""
        return self._tenants[name].spec

    @property
    def tenant_names(self) -> list[str]:
        """Registered tenants in registration order."""
        return list(self._tenants)

    def depth(self, tenant: str | None = None) -> int:
        """Pending jobs for one tenant, or across all tenants."""
        with self._lock:
            if tenant is not None:
                return len(self._tenants[tenant].jobs)
            return sum(len(q.jobs) for q in self._tenants.values())

    # ------------------------------------------------------------------
    def reserve_slot(self, tenant: str) -> None:
        """Atomically claim one queue slot ahead of a :meth:`push`.

        Raises :class:`QueueFullError` at the depth cap.  The service
        reserves *before* journaling an acceptance so a job can never be
        durably recorded as accepted and then rejected at the cap;
        the reservation is consumed by ``push(job, reserved=True)`` or
        returned with :meth:`release_slot` when admission fails later.
        """
        with self._lock:
            queue = self._tenants.get(tenant)
            if queue is None:
                raise ConfigurationError(f"unknown tenant {tenant!r}")
            depth = len(queue.jobs) + queue.reserved
            if depth >= queue.spec.max_depth:
                raise QueueFullError(
                    tenant, depth, queue.spec.retry_after_seconds
                )
            queue.reserved += 1

    def release_slot(self, tenant: str) -> None:
        """Return an unused reservation taken by :meth:`reserve_slot`."""
        with self._lock:
            queue = self._tenants.get(tenant)
            if queue is not None and queue.reserved > 0:
                queue.reserved -= 1

    def push(self, job: PendingJob, reserved: bool = False) -> None:
        """Enqueue; raises :class:`QueueFullError` at the depth cap.

        With ``reserved=True`` the push consumes a slot claimed earlier
        by :meth:`reserve_slot` and cannot hit the cap.
        """
        with self._lock:
            queue = self._tenants.get(job.tenant)
            if queue is None:
                raise ConfigurationError(f"unknown tenant {job.tenant!r}")
            if reserved and queue.reserved > 0:
                queue.reserved -= 1
            elif len(queue.jobs) + queue.reserved >= queue.spec.max_depth:
                raise QueueFullError(
                    job.tenant,
                    len(queue.jobs) + queue.reserved,
                    queue.spec.retry_after_seconds,
                )
            if not queue.jobs:
                # vtime catch-up: an idle tenant rejoins at the current
                # service floor instead of replaying its idle period.
                busy = [q.vtime for q in self._tenants.values() if q.jobs]
                if busy:
                    queue.vtime = max(queue.vtime, min(busy))
            queue.jobs.append(job)

    def pop_next(self, compat_key: tuple | None = None) -> PendingJob | None:
        """Serve the next job in weighted-fair order.

        With ``compat_key`` only jobs of that compatibility group are
        eligible (the scheduler refills a running batch); each tenant
        still offers its *head-of-line* eligible job, preserving FIFO
        within a tenant per group.  Returns ``None`` when nothing is
        eligible.
        """
        with self._lock:
            best: _TenantQueue | None = None
            best_index = -1
            for queue in self._tenants.values():
                for index, job in enumerate(queue.jobs):
                    if compat_key is None or job.compat_key == compat_key:
                        if best is None or queue.vtime < best.vtime:
                            best, best_index = queue, index
                        break
            if best is None:
                return None
            job = best.jobs.pop(best_index)
            best.vtime += 1.0 / best.spec.weight
            return job

    def remove(self, job_id: str) -> PendingJob | None:
        """Drop a queued job by id (cancel-while-queued); None if absent."""
        with self._lock:
            for queue in self._tenants.values():
                for index, job in enumerate(queue.jobs):
                    if job.job_id == job_id:
                        return queue.jobs.pop(index)
        return None

    def snapshot(self) -> dict:
        """Queue depths and virtual times (for metrics/debugging)."""
        with self._lock:
            return {
                name: {
                    "depth": len(q.jobs),
                    "vtime": q.vtime,
                    "weight": q.spec.weight,
                    "jobs": [job.job_id for job in q.jobs],
                }
                for name, q in self._tenants.items()
            }
