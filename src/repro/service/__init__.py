"""Simulation-as-a-service: the async job API over continuous batching.

The ROADMAP's north star made concrete: a long-lived
:class:`SimulationService` that accepts simulation jobs from multiple
tenants, serves them through the continuous-batching
:class:`~repro.batch.scheduler.BatchScheduler` in weighted-fair order,
applies backpressure and memory-budget admission control, streams
progress, and survives hard kills by journaling every accepted job
before admission (see DESIGN.md §17).

Quick start::

    import asyncio
    from repro.config import SimulationConfig
    from repro.service import SimulationService, TenantSpec

    async def main():
        async with SimulationService(
            "out/service",
            tenants=[TenantSpec("batch", weight=1),
                     TenantSpec("interactive", weight=3)],
        ) as svc:
            job = svc.submit(SimulationConfig(fluid_shape=(8, 8, 8)),
                             num_steps=20, tenant="interactive")
            result = await svc.result(job)
            assert result.ok

    asyncio.run(main())
"""

from repro.service.admission import MemoryBudget
from repro.service.jobs import JobRecord, JobSnapshot
from repro.service.journal import ServiceJournal
from repro.service.queues import PendingJob, TenantSpec, WeightedFairQueues
from repro.service.service import DEFAULT_MEMORY_BUDGET, SimulationService

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "JobRecord",
    "JobSnapshot",
    "MemoryBudget",
    "PendingJob",
    "ServiceJournal",
    "SimulationService",
    "TenantSpec",
    "WeightedFairQueues",
]
