"""The asyncio simulation service over the continuous-batching scheduler.

:class:`SimulationService` turns the synchronous
:class:`~repro.batch.scheduler.BatchScheduler` into a long-lived,
multi-tenant job service:

* **submit/poll/cancel/stream/result** — jobs enter weighted-fair
  per-tenant queues (:mod:`repro.service.queues`) and are served in
  fair order; progress streams off the scheduler's cooperative tick
  hook; results are awaited as coroutines.
* **backpressure + admission control** — a bounded per-tenant queue
  depth rejects with a retry-after hint, and a memory budget sized by
  :meth:`~repro.config.SimulationConfig.estimated_state_bytes`
  (:mod:`repro.service.admission`) bounds total resident state.
* **durability** — every accepted job is journaled before it is
  enqueued (:mod:`repro.service.journal`); a hard kill at any instant
  is recovered by :meth:`SimulationService.resume`, which replays the
  journal for never-dispatched jobs and delegates in-flight ones to
  :meth:`BatchScheduler.resume`.

Threading model: the asyncio event loop owns the service API; one
executor thread at a time runs ``BatchScheduler.run``.  The scheduler
calls back into the service from that thread through ``step_hook``
(progress + SLO metrics) and ``refill_source`` (continuous fair-order
admission), both of which only touch thread-safe structures; all
mutation of job records happens under ``_state_lock``.
"""

from __future__ import annotations

import asyncio
import os
import time

import threading

from repro.batch.scheduler import (
    TERMINAL_STATUSES,
    BatchResult,
    BatchScheduler,
    JobRequest,
    SchedulerTick,
)
from repro.config import SimulationConfig
from repro.core.lbm.fields import FluidGrid
from repro.errors import AdmissionError, ConfigurationError, ServiceError, WorkerKilledError
from repro.service.admission import MemoryBudget
from repro.service.jobs import JobRecord, JobSnapshot
from repro.service.journal import ServiceJournal
from repro.service.queues import PendingJob, TenantSpec, WeightedFairQueues

__all__ = ["SimulationService", "DEFAULT_MEMORY_BUDGET"]

#: Default admission budget: resident state across queued + running jobs.
DEFAULT_MEMORY_BUDGET = 1 << 30

#: Subdirectory of the service workdir owned by the batch scheduler.
BATCH_SUBDIR = "batch"


class SimulationService:
    """Async façade over :class:`BatchScheduler` — see the module docs.

    Parameters
    ----------
    workdir:
        Durability root: the service journal lives at its top level and
        the batch scheduler's manifest/checkpoints under ``batch/``.
    tenants:
        Tenant specs; defaults to a single ``default`` tenant.
    max_batch:
        Batch width handed to the scheduler.
    memory_budget_bytes:
        Admission budget over estimated resident state.
    checkpoint_every:
        Scheduler checkpoint cadence in steps (enables mid-flight
        recovery finer than the submit-time state).
    resume_on_kill:
        ``True`` (default) transparently rebuilds the scheduler via
        :meth:`BatchScheduler.resume` when a run is killed mid-batch;
        ``False`` stops the service instead, leaving recovery to a
        fresh :meth:`SimulationService.resume` (the cross-process
        restart path the chaos suite exercises).
    telemetry / fault_injector / retry_policy / guard:
        Forwarded to the scheduler.
    retuner:
        Optional :class:`~repro.tuning.online.OnlineRetuner`: the
        service feeds it every scheduler tick (after its own SLO
        bookkeeping) and keeps it bound to the live scheduler across
        rebuilds/resumes, so step-time drift beyond the tuned
        expectation triggers a journaled online re-tune whose knobs
        land through :meth:`BatchScheduler.apply_tuning`.
    """

    def __init__(
        self,
        workdir: str | os.PathLike,
        tenants: "list[TenantSpec] | None" = None,
        max_batch: int = 8,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        checkpoint_every: int = 0,
        resume_on_kill: bool = True,
        telemetry=None,
        fault_injector=None,
        retry_policy=None,
        guard: bool = False,
        retuner=None,
    ) -> None:
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        self.telemetry = telemetry
        self.resume_on_kill = resume_on_kill
        self.max_batch = max_batch
        self.checkpoint_every = checkpoint_every
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.guard = guard
        self.retuner = retuner
        self._queues = WeightedFairQueues(tenants or [TenantSpec("default")])
        self._budget = MemoryBudget(memory_budget_bytes)
        self._journal = ServiceJournal(self.workdir)
        self._state_lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._terminal_events: dict[str, list[asyncio.Event]] = {}
        self._counter = 0
        self._scheduler = self._build_scheduler()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._stopping = False
        self._fatal: BaseException | None = None

    # ------------------------------------------------------------------
    # scheduler wiring
    # ------------------------------------------------------------------
    @property
    def batch_workdir(self) -> str:
        """The batch scheduler's persistence directory."""
        return os.path.join(self.workdir, BATCH_SUBDIR)

    def _batch_kwargs(self) -> dict:
        return dict(
            max_batch=self.max_batch,
            telemetry=self.telemetry,
            checkpoint_every=self.checkpoint_every,
            fault_injector=self.fault_injector,
            retry_policy=self.retry_policy,
            guard=self.guard,
            step_hook=self._on_tick,
            refill_source=self._refill_source,
        )

    def _build_scheduler(self) -> BatchScheduler:
        scheduler = BatchScheduler(
            workdir=self.batch_workdir, **self._batch_kwargs()
        )
        if self.retuner is not None:
            # Re-bound on every rebuild (resume_on_kill constructs fresh
            # schedulers) so re-tuned knobs always reach the live one.
            self.retuner.bind(scheduler)
        return scheduler

    def _metrics(self):
        return self.telemetry.metrics if self.telemetry is not None else None

    # ------------------------------------------------------------------
    # submission API (event-loop thread)
    # ------------------------------------------------------------------
    def submit(
        self,
        config: SimulationConfig,
        num_steps: int,
        tenant: str = "default",
        job_id: str | None = None,
        state_seed: int | None = None,
    ) -> str:
        """Accept one job: admission-check, journal, enqueue; returns its id.

        Raises :class:`~repro.errors.QueueFullError` at the tenant's
        depth cap and :class:`~repro.errors.MemoryBudgetError` when the
        estimated state does not fit the remaining budget — both carry
        ``retry_after_seconds`` when resubmission can succeed.  Initial
        state is specified by ``state_seed`` (``None`` = configured
        rest state) so the journal can rebuild it bit-identically on
        recovery; raw arrays are deliberately not accepted here.
        """
        if self._fatal is not None:
            raise ServiceError(f"service stopped: {self._fatal!r}") from self._fatal
        try:
            spec = self._queues.tenant(tenant)
        except KeyError:
            raise AdmissionError(f"unknown tenant {tenant!r}") from None
        if num_steps < 1:
            raise ConfigurationError(f"num_steps must be positive, got {num_steps}")
        if job_id is None:
            while True:
                job_id = f"job-{self._counter:04d}"
                self._counter += 1
                if job_id not in self._records:
                    break
        elif job_id in self._records:
            raise ConfigurationError(f"duplicate job id {job_id!r}")
        state_bytes = config.estimated_state_bytes()
        metrics = self._metrics()
        try:
            self._budget.reserve(job_id, state_bytes)
            try:
                # Claim the queue slot *before* the journal write: a job
                # must never be durably recorded as accepted and then
                # rejected at the depth cap (resume would resurrect it).
                self._queues.reserve_slot(tenant)
            except Exception:
                self._budget.release(job_id)
                raise
            try:
                self._enqueue(
                    job_id, tenant, config, num_steps, state_seed, state_bytes,
                    journal=True, reserved=True,
                )
            except Exception:
                self._queues.release_slot(tenant)
                self._budget.release(job_id)
                raise
        except AdmissionError:
            if metrics is not None:
                metrics.counter("service.rejected").inc()
            raise
        if metrics is not None:
            metrics.counter("service.accepted").inc()
            metrics.gauge("service.queue_depth").set(self._queues.depth())
        self._kick()
        return job_id

    def _enqueue(
        self,
        job_id: str,
        tenant: str,
        config: SimulationConfig,
        num_steps: int,
        state_seed: int | None,
        state_bytes: int,
        journal: bool,
        reserved: bool = False,
    ) -> None:
        """Journal (optionally) and enqueue one accepted job."""
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            config=config,
            num_steps=int(num_steps),
            state_bytes=state_bytes,
            state_seed=state_seed,
            submitted_at=time.monotonic(),
        )
        pending = PendingJob(
            job_id=job_id,
            tenant=tenant,
            request=JobRequest(
                config=config,
                num_steps=int(num_steps),
                job_id=job_id,
                initial_fluid=self._initial_fluid(config, state_seed),
            ),
            state_bytes=state_bytes,
            state_seed=state_seed,
            enqueued_at=record.submitted_at,
        )
        if journal:
            # Durability rule: journal *before* the job becomes visible
            # anywhere — a kill after this line never loses the job.
            # The queue slot was reserved before this write, so the
            # push below cannot be rejected at the depth cap.
            self._journal.job_accepted(
                job_id, tenant, config.to_dict(), num_steps, state_seed, state_bytes
            )
        self._queues.push(pending, reserved=reserved)
        with self._state_lock:
            self._records[job_id] = record

    @staticmethod
    def _initial_fluid(
        config: SimulationConfig, state_seed: int | None
    ) -> FluidGrid | None:
        if state_seed is None:
            return None
        from repro.verify.oracle import seeded_initial_fluid

        return seeded_initial_fluid(config, state_seed)

    # ------------------------------------------------------------------
    # lifecycle queries
    # ------------------------------------------------------------------
    def poll(self, job_id: str) -> JobSnapshot:
        """Current state of a job (raises KeyError for unknown ids)."""
        with self._state_lock:
            return self._records[job_id].snapshot()

    def jobs(self) -> list[JobSnapshot]:
        """Snapshots of every ever-accepted job, submission order."""
        with self._state_lock:
            return [record.snapshot() for record in self._records.values()]

    async def result(self, job_id: str) -> BatchResult:
        """Wait until the job is terminal; returns its :class:`BatchResult`."""
        with self._state_lock:
            record = self._records[job_id]
            # A record restored terminal by resume() may still await its
            # BatchResult from the scheduler's next run — keep waiting.
            if record.terminal and record.result is not None:
                return record.result
            event = asyncio.Event()
            self._terminal_events.setdefault(job_id, []).append(event)
        while not event.is_set():
            if self._fatal is not None:
                raise ServiceError(
                    f"service stopped before job {job_id!r} finished: {self._fatal!r}"
                ) from self._fatal
            try:
                await asyncio.wait_for(event.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                continue
        with self._state_lock:
            return self._records[job_id].result

    async def stream(self, job_id: str):
        """Async generator of progress events ending with the result.

        Yields dicts: ``{"type": "progress", ...}`` per scheduler sweep
        the job participated in, then one ``{"type": "result", ...}``
        carrying the terminal :class:`JobSnapshot` and
        :class:`BatchResult`.
        """
        queue: asyncio.Queue = asyncio.Queue()
        finished = None
        with self._state_lock:
            record = self._records[job_id]
            # A record restored terminal by resume() may still await its
            # BatchResult from the scheduler's next run — subscribe and
            # let _finish deliver it rather than yielding result=None.
            if record.terminal and record.result is not None:
                finished = {
                    "type": "result",
                    "job_id": job_id,
                    "snapshot": record.snapshot(),
                    "result": record.result,
                }
            else:
                record.subscribers.append(queue)
        if finished is not None:
            yield finished
            return
        try:
            while True:
                event = await queue.get()
                yield event
                if event.get("type") == "result":
                    return
        finally:
            with self._state_lock:
                if queue in record.subscribers:
                    record.subscribers.remove(queue)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; False when already terminal.

        Cancel-while-queued retires the job immediately (status
        ``"cancelled"``, budget released, journaled); cancel-while-
        running parks the batch slot benignly at the next step boundary
        through :meth:`BatchScheduler.cancel` — sibling slots stay
        bit-identical.
        """
        with self._state_lock:
            record = self._records.get(job_id)
            if record is None or record.terminal:
                return False
        pending = self._queues.remove(job_id)
        metrics = self._metrics()
        if pending is not None:
            self._journal.job_cancelled(job_id, queued=True)
            result = BatchResult(
                job_id=job_id,
                status="cancelled",
                steps_completed=0,
                fluid=pending.request.initial_fluid
                or FluidGrid(
                    record.config.fluid_shape,
                    tau=record.config.effective_tau,
                    collision_operator=record.config.collision_operator,
                ),
                structure=pending.request.initial_structure,
            )
            if metrics is not None:
                metrics.counter("service.cancelled").inc()
                metrics.gauge("service.queue_depth").set(self._queues.depth())
            self._finish(record, result)
            return True
        # Already dispatched: delegate to the scheduler's thread-safe
        # cancel; the terminal result flows back through _absorb.
        accepted = self._scheduler.cancel(job_id)
        if not accepted:
            # Handoff race: _refill_source (executor thread) may have
            # popped the job from the queues while the scheduler has not
            # registered its submit yet.  Retry briefly while the record
            # is still live instead of refusing to cancel a live job.
            deadline = time.monotonic() + 0.25
            while not accepted and time.monotonic() < deadline:
                with self._state_lock:
                    live = self._records.get(job_id)
                    if live is None or live.terminal:
                        return False
                time.sleep(0.002)
                accepted = self._scheduler.cancel(job_id)
        if accepted:
            self._journal.job_cancelled(job_id, queued=False)
            if metrics is not None:
                metrics.counter("service.cancelled").inc()
        return accepted

    # ------------------------------------------------------------------
    # run loop (event-loop thread + one executor thread)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the drive loop (idempotent)."""
        if self._task is not None and not self._task.done():
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopping = False
        self._task = self._loop.create_task(self._run_loop())

    async def stop(self, drain: bool = True) -> None:
        """Stop the drive loop; with ``drain`` finish queued work first."""
        if self._task is None:
            return
        if drain:
            try:
                await self.drain()
            except ServiceError:
                pass  # the fatal cause is preserved on self._fatal
        self._stopping = True
        self._kick()
        try:
            await self._task
        finally:
            self._task = None

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=exc_info == (None, None, None))
        self._journal.close()

    async def drain(self) -> None:
        """Wait until every accepted job is terminal."""
        while self._fatal is None:
            with self._state_lock:
                if all(record.terminal for record in self._records.values()):
                    return
            await asyncio.sleep(0.01)
        raise ServiceError(f"service stopped while draining: {self._fatal!r}")

    def _kick(self) -> None:
        if self._wake is not None and self._loop is not None:
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is self._loop:
                self._wake.set()
            else:
                self._loop.call_soon_threadsafe(self._wake.set)

    def _has_work(self) -> bool:
        return self._queues.depth() > 0 or self._scheduler.has_pending

    async def _run_loop(self) -> None:
        while not self._stopping:
            if not self._has_work():
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.05)
                except asyncio.TimeoutError:
                    pass
                continue
            try:
                await self._drive_once()
            except WorkerKilledError as exc:
                # resume_on_kill=False: the service halts; recovery is a
                # fresh SimulationService.resume on the same workdir.
                self._fatal = exc
                return
            except Exception as exc:  # pragma: no cover - defensive
                self._fatal = exc
                return

    async def _drive_once(self) -> None:
        """Seed the scheduler in fair order and run one batch wave."""
        seeded = self._queues.pop_next()
        if seeded is not None:
            self._dispatch(seeded)
        elif not self._scheduler.has_pending:
            return
        metrics = self._metrics()
        while True:
            tracer = self.telemetry.tracer if self.telemetry is not None else None
            start = time.perf_counter()
            try:
                results = await self._loop.run_in_executor(
                    None, self._scheduler.run
                )
            except WorkerKilledError:
                if not self.resume_on_kill:
                    raise
                if metrics is not None:
                    metrics.counter("service.kills_survived").inc()
                self._scheduler = BatchScheduler.resume(
                    self.batch_workdir, **self._batch_kwargs()
                )
                continue
            finally:
                if tracer is not None:
                    tracer.record(
                        "service.drive",
                        tid=0,
                        start=start,
                        duration=time.perf_counter() - start,
                        cat="service",
                    )
            break
        self._absorb(results)

    def _dispatch(self, pending: PendingJob) -> None:
        """Hand one queued job to the scheduler (loop or executor thread)."""
        self._scheduler.submit(
            pending.request.config,
            pending.request.num_steps,
            job_id=pending.job_id,
            initial_fluid=pending.request.initial_fluid,
            initial_structure=pending.request.initial_structure,
        )
        self._journal.job_dispatched(pending.job_id)
        now = time.monotonic()
        metrics = self._metrics()
        with self._state_lock:
            record = self._records.get(pending.job_id)
            if record is not None:
                record.dispatched_at = now
                queue_seconds = now - record.submitted_at
            else:  # pragma: no cover - defensive
                queue_seconds = None
        if metrics is not None:
            if queue_seconds is not None:
                metrics.histogram("service.queue_latency_seconds").observe(
                    queue_seconds
                )
            metrics.gauge("service.queue_depth").set(self._queues.depth())

    def _refill_source(self, compat_key: tuple) -> JobRequest | None:
        """Scheduler callback (executor thread): next fair-order job
        of the running compatibility group, already bookkept."""
        pending = self._queues.pop_next(compat_key)
        if pending is None:
            return None
        self._journal.job_dispatched(pending.job_id)
        now = time.monotonic()
        metrics = self._metrics()
        with self._state_lock:
            record = self._records.get(pending.job_id)
            queue_seconds = None
            if record is not None:
                record.dispatched_at = now
                queue_seconds = now - record.submitted_at
        if metrics is not None:
            if queue_seconds is not None:
                metrics.histogram("service.queue_latency_seconds").observe(
                    queue_seconds
                )
            metrics.gauge("service.queue_depth").set(self._queues.depth())
        # The scheduler submits the request itself; strip the job through
        # its JobRequest form (initial state included).
        return pending.request

    def _on_tick(self, tick: SchedulerTick) -> None:
        """Scheduler step hook (executor thread): progress + SLO metrics."""
        events: list[tuple[list, dict]] = []
        with self._state_lock:
            for job_id, steps in tick.jobs:
                record = self._records.get(job_id)
                if record is None or record.terminal:
                    continue
                record.steps_completed = steps
                if record.status == "queued":
                    record.status = "running"
                if record.subscribers:
                    events.append(
                        (
                            list(record.subscribers),
                            {
                                "type": "progress",
                                "job_id": job_id,
                                "steps_completed": steps,
                                "num_steps": record.num_steps,
                                "batch_step": tick.batch_step,
                            },
                        )
                    )
        metrics = self._metrics()
        if metrics is not None:
            metrics.quantiles("service.step_seconds").observe(tick.step_seconds)
            metrics.gauge("service.slot_occupancy").set(tick.occupancy)
            metrics.gauge("service.slot_capacity").set(tick.capacity)
        if self.retuner is not None:
            # Online re-tuning: the drift watchdog sees the same tick
            # stream the SLO quantiles do; a confirmed drift applies
            # bit-identity-safe knobs via the scheduler's apply_tuning.
            self.retuner.observe(tick)
        if events and self._loop is not None:
            for subscribers, payload in events:
                for queue in subscribers:
                    self._loop.call_soon_threadsafe(queue.put_nowait, payload)

    def _absorb(self, results: dict[str, BatchResult]) -> None:
        """Fold one run's results into the records (event-loop thread)."""
        for job_id, result in results.items():
            with self._state_lock:
                record = self._records.get(job_id)
                # A record restored terminal by resume() still needs its
                # BatchResult attached the first time it flows through.
                already = record is None or (
                    record.terminal and record.result is not None
                )
            if already:
                continue
            self._finish(record, result)

    def _finish(self, record: JobRecord, result: BatchResult) -> None:
        """Mark one job terminal: budget, journal, metrics, waiters."""
        with self._state_lock:
            record.status = result.status
            record.steps_completed = result.steps_completed
            record.result = result
            record.finished_at = time.monotonic()
            subscribers = list(record.subscribers)
            waiters = self._terminal_events.pop(record.job_id, [])
            snapshot = record.snapshot()
        self._budget.release(record.job_id)
        self._journal.job_terminal(
            record.job_id, result.status, result.steps_completed
        )
        metrics = self._metrics()
        if metrics is not None:
            counter = {
                "completed": "service.completed",
                "cancelled": "service.cancelled_total",
            }.get(result.status, "service.failed")
            metrics.counter(counter).inc()
        payload = {
            "type": "result",
            "job_id": record.job_id,
            "snapshot": snapshot,
            "result": result,
        }
        for event in waiters:
            event.set()
        for queue in subscribers:
            queue.put_nowait(payload)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, workdir: str | os.PathLike, **kwargs) -> "SimulationService":
        """Rebuild a service from a killed instance's ``workdir``.

        Jobs the dead service had dispatched are recovered through
        :meth:`BatchScheduler.resume` (newest loadable checkpoint);
        jobs journaled but never dispatched are re-enqueued from their
        journaled config + state seed.  Tenants default to those in
        ``kwargs``; tenants found only in the journal are auto-
        registered at weight 1 so no accepted job is orphaned.
        """
        replay = ServiceJournal.replay(workdir)
        tenants = {spec.name: spec for spec in kwargs.pop("tenants", None) or []}
        for record in replay.accepted.values():
            tenants.setdefault(str(record["tenant"]), TenantSpec(str(record["tenant"])))
        if not tenants:
            tenants["default"] = TenantSpec("default")
        service = cls(workdir, tenants=list(tenants.values()), **kwargs)
        batch_manifest = os.path.join(service.batch_workdir, "manifest.json")
        if os.path.exists(batch_manifest):
            service._scheduler = BatchScheduler.resume(
                service.batch_workdir, **service._batch_kwargs()
            )
        requeued = restored = 0
        for job_id, accepted in replay.accepted.items():
            config = SimulationConfig.from_dict(accepted["config"])
            num_steps = int(accepted["num_steps"])
            tenant = str(accepted["tenant"])
            state_seed = accepted.get("state_seed")
            state_bytes = int(accepted.get("state_bytes", 0))
            record = JobRecord(
                job_id=job_id,
                tenant=tenant,
                config=config,
                num_steps=num_steps,
                state_bytes=state_bytes,
                state_seed=state_seed,
                submitted_at=time.monotonic(),
            )
            scheduler_status = service._scheduler.job_status(job_id)
            if scheduler_status is not None:
                if (
                    job_id in replay.cancelled
                    and scheduler_status not in TERMINAL_STATUSES
                ):
                    # The dead service acknowledged this cancellation but
                    # the scheduler never persisted it — re-issue it so
                    # the job cannot run to completion after resume.
                    service._scheduler.cancel(job_id)
                    scheduler_status = service._scheduler.job_status(job_id)
                # The scheduler owns it: terminal results surface on the
                # next run(); in-flight jobs are already requeued there.
                record.dispatched_at = record.submitted_at
                record.status = (
                    scheduler_status if scheduler_status != "queued" else "queued"
                )
                if record.terminal:
                    restored += 1
                else:
                    try:
                        service._budget.reserve(job_id, state_bytes)
                    except AdmissionError:
                        pass  # already resident in scheduler state
                    requeued += 1
                with service._state_lock:
                    service._records[job_id] = record
                continue
            if job_id in replay.cancelled or job_id in replay.terminal:
                terminal = replay.terminal.get(job_id)
                record.status = (
                    str(terminal["status"]) if terminal else "cancelled"
                )
                record.steps_completed = int(terminal["steps"]) if terminal else 0
                # Rebuild the same fluid the pre-kill result carried: the
                # seeded initial state when the job had a state seed.
                fluid = cls._initial_fluid(config, state_seed)
                if fluid is None:
                    fluid = FluidGrid(
                        config.fluid_shape,
                        tau=config.effective_tau,
                        collision_operator=config.collision_operator,
                    )
                record.result = BatchResult(
                    job_id=job_id,
                    status=record.status,
                    steps_completed=record.steps_completed,
                    fluid=fluid,
                    structure=None,
                )
                restored += 1
                with service._state_lock:
                    service._records[job_id] = record
                continue
            # Accepted but never dispatched: re-enqueue from the journal.
            service._budget.reserve(job_id, state_bytes)
            service._enqueue(
                job_id, tenant, config, num_steps, state_seed, state_bytes,
                journal=False,
            )
            requeued += 1
        service._counter = len(replay.accepted)
        service._journal.service_resumed(requeued=requeued, restored=restored)
        metrics = service._metrics()
        if metrics is not None:
            metrics.counter("service.resumes").inc()
        return service
