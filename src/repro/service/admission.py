"""Admission control by a resident-memory budget.

The service sizes every job with
:meth:`~repro.config.SimulationConfig.estimated_state_bytes` — the
:mod:`repro.machine` bytes-per-node model (48 stored values per
two-lattice fluid node at the configured precision, 29 for the
in-place variant, plus the structure's node arrays) — and admits it
only while the sum over queued + in-flight jobs fits the budget.

Rejections are typed by recoverability: a job that would fit an empty
budget is *retryable* (resubmit after ``retry_after_seconds``, once
running jobs retire and release their reservations); a job larger than
the whole budget is permanent (:class:`MemoryBudgetError` with
``retryable=False``), because waiting can never help.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError, MemoryBudgetError

__all__ = ["MemoryBudget"]


class MemoryBudget:
    """Thread-safe byte-reservation ledger for admission control."""

    def __init__(self, budget_bytes: int, retry_after_seconds: float = 1.0) -> None:
        if budget_bytes < 1:
            raise ConfigurationError(
                f"budget_bytes must be positive, got {budget_bytes}"
            )
        if retry_after_seconds <= 0:
            raise ConfigurationError("retry_after_seconds must be positive")
        self.budget_bytes = int(budget_bytes)
        self.retry_after_seconds = retry_after_seconds
        self._lock = threading.Lock()
        self._reserved: dict[str, int] = {}

    @property
    def reserved_bytes(self) -> int:
        """Bytes currently reserved across admitted jobs."""
        with self._lock:
            return sum(self._reserved.values())

    @property
    def available_bytes(self) -> int:
        """Budget headroom right now."""
        return self.budget_bytes - self.reserved_bytes

    def reserve(self, job_id: str, nbytes: int) -> None:
        """Reserve ``nbytes`` for ``job_id`` or raise :class:`MemoryBudgetError`."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigurationError(f"reservation must be >= 0, got {nbytes}")
        with self._lock:
            if job_id in self._reserved:
                raise ConfigurationError(f"job {job_id!r} already holds a reservation")
            used = sum(self._reserved.values())
            if used + nbytes > self.budget_bytes:
                raise MemoryBudgetError(
                    requested_bytes=nbytes,
                    available_bytes=self.budget_bytes - used,
                    budget_bytes=self.budget_bytes,
                    retry_after_seconds=self.retry_after_seconds,
                )
            self._reserved[job_id] = nbytes

    def release(self, job_id: str) -> int:
        """Release a job's reservation; returns the freed bytes (0 if none)."""
        with self._lock:
            return self._reserved.pop(job_id, 0)

    def holds(self, job_id: str) -> bool:
        """True while ``job_id`` has an active reservation."""
        with self._lock:
            return job_id in self._reserved
