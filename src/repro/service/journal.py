"""Crash-safe service journal: accepted jobs survive a hard kill.

The service's durability rule is *journal before admit*: a job is
appended to the journal (fsync'd JSONL via
:class:`~repro.resilience.incident.IncidentLog`) before it enters the
fair queues, so a kill at any instant leaves every accepted job either

* in the scheduler's own manifest (it was dispatched — the
  :meth:`~repro.batch.scheduler.BatchScheduler.resume` machinery owns
  its recovery), or
* in this journal only (accepted but never dispatched — the service
  re-enqueues it from the journaled config + state seed on
  :meth:`~repro.service.service.SimulationService.resume`).

Raw initial-state arrays are deliberately not journaled; submissions
carry an optional ``state_seed`` and the journal stores the seed, so
recovery rebuilds bit-identical initial fluids through
:func:`repro.verify.oracle.seeded_initial_fluid`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.resilience.incident import IncidentLog

__all__ = ["ServiceJournal", "JournalReplay", "SERVICE_JOURNAL_NAME"]

#: Journal file name inside the service workdir.
SERVICE_JOURNAL_NAME = "service.jsonl"


@dataclass
class JournalReplay:
    """The journal folded into per-job outcomes (newest event wins)."""

    #: job_id -> acceptance record (tenant/config/num_steps/state_seed...).
    accepted: dict[str, dict] = field(default_factory=dict)
    #: Jobs handed to the batch scheduler (its manifest owns recovery).
    dispatched: set[str] = field(default_factory=set)
    #: Jobs cancelled at the service layer.
    cancelled: set[str] = field(default_factory=set)
    #: job_id -> ``{"status", "steps"}`` observed before the kill.
    terminal: dict[str, dict] = field(default_factory=dict)

    def undispatched(self) -> list[dict]:
        """Acceptance records never handed to the scheduler, in order."""
        return [
            record
            for job_id, record in self.accepted.items()
            if job_id not in self.dispatched
            and job_id not in self.cancelled
            and job_id not in self.terminal
        ]


class ServiceJournal:
    """Append-only job-lifecycle journal over an :class:`IncidentLog`."""

    def __init__(self, workdir: str | os.PathLike) -> None:
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        self.path = os.path.join(self.workdir, SERVICE_JOURNAL_NAME)
        self._log = IncidentLog(jsonl_path=self.path)

    # ------------------------------------------------------------------
    # append side
    # ------------------------------------------------------------------
    def job_accepted(
        self,
        job_id: str,
        tenant: str,
        config_dict: dict,
        num_steps: int,
        state_seed: int | None,
        state_bytes: int,
    ) -> None:
        """Durably record an accepted job *before* it is enqueued."""
        self._log.record(
            "job_accepted",
            job=job_id,
            tenant=tenant,
            config=config_dict,
            num_steps=int(num_steps),
            state_seed=state_seed,
            state_bytes=int(state_bytes),
        )

    def job_dispatched(self, job_id: str) -> None:
        """The job entered the batch scheduler (its manifest now owns it)."""
        self._log.record("job_dispatched", job=job_id)

    def job_terminal(self, job_id: str, status: str, steps: int) -> None:
        """The job reached a terminal status."""
        self._log.record("job_terminal", job=job_id, status=status, steps=int(steps))

    def job_cancelled(self, job_id: str, queued: bool) -> None:
        """A cancellation was accepted (``queued`` = before dispatch)."""
        self._log.record("job_cancelled", job=job_id, queued=bool(queued))

    def service_resumed(self, requeued: int, restored: int) -> None:
        """A restart rebuilt the service from this journal."""
        self._log.record("service_resumed", requeued=requeued, restored=restored)

    def close(self) -> None:
        """Release the underlying journal file handle."""
        self._log.close()

    # ------------------------------------------------------------------
    # replay side
    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, workdir: str | os.PathLike) -> JournalReplay:
        """Fold a (possibly torn-tailed) journal into per-job outcomes."""
        path = os.path.join(os.fspath(workdir), SERVICE_JOURNAL_NAME)
        outcome = JournalReplay()
        if not os.path.exists(path):
            return outcome
        for event in IncidentLog.load(path).events:
            job_id = event.detail.get("job")
            if event.kind == "job_accepted":
                outcome.accepted[job_id] = dict(event.detail)
            elif event.kind == "job_dispatched":
                outcome.dispatched.add(job_id)
            elif event.kind == "job_cancelled":
                outcome.cancelled.add(job_id)
            elif event.kind == "job_terminal":
                outcome.terminal[job_id] = {
                    "status": str(event.detail.get("status")),
                    "steps": int(event.detail.get("steps", 0)),
                }
        return outcome
