"""Service-side job records: the poll/stream surface of one submission.

A :class:`JobRecord` is the service's authoritative view of one job's
lifecycle — queued → running → terminal — updated from two threads
(the asyncio submission side and the scheduler's executor thread), so
every mutation happens under the service's state lock and readers get
plain snapshot copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.batch.scheduler import TERMINAL_STATUSES, BatchResult
from repro.config import SimulationConfig

__all__ = ["JobRecord", "JobSnapshot"]


@dataclass(frozen=True)
class JobSnapshot:
    """Immutable poll result: one job's state at a point in time."""

    job_id: str
    tenant: str
    status: str
    steps_completed: int
    num_steps: int
    queue_seconds: float | None = None

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.status in TERMINAL_STATUSES

    @property
    def progress(self) -> float:
        """Fraction of the step budget completed (0..1)."""
        if self.num_steps <= 0:
            return 0.0
        return min(1.0, self.steps_completed / self.num_steps)


@dataclass
class JobRecord:
    """Mutable service-side state for one submitted job."""

    job_id: str
    tenant: str
    config: SimulationConfig
    num_steps: int
    state_bytes: int
    state_seed: int | None = None
    status: str = "queued"
    steps_completed: int = 0
    submitted_at: float = 0.0
    dispatched_at: float | None = None
    finished_at: float | None = None
    result: BatchResult | None = None
    #: Per-subscriber asyncio queues fed from the scheduler tick hook.
    subscribers: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        """True once the job reached a status in :data:`TERMINAL_STATUSES`."""
        return self.status in TERMINAL_STATUSES

    def snapshot(self) -> JobSnapshot:
        """Immutable copy for :meth:`SimulationService.poll`."""
        queue_seconds = None
        if self.dispatched_at is not None:
            queue_seconds = self.dispatched_at - self.submitted_at
        return JobSnapshot(
            job_id=self.job_id,
            tenant=self.tenant,
            status=self.status,
            steps_completed=self.steps_completed,
            num_steps=self.num_steps,
            queue_seconds=queue_seconds,
        )
