"""Calibrated constants of the simulated-machine performance model.

Every constant here was either taken directly from the paper or fitted
*once* against the paper's published anchor points; this module is the
single place recording which is which.  Nothing else in the library
hides tuned numbers.

Model form
----------
Per-step execution time on ``n`` cores is::

    strong scaling:  T(n) = (Wc + Wm * (1 + alpha * n**q)) / n + c_sync * log2(n)
    weak scaling:    T(n) =  Wc + Wm * (1 + alpha * n**q)   + c_sync * log2(n)

``Wc`` is compute time and ``Wm`` memory-stall time at one core; the
``(1 + alpha * n**q)`` factor models the growth of memory-stall cost
with core count (bandwidth contention, shared-cache interference, and
NUMA interleaving combined).  The split ``Wc : Wm`` and the contention
exponents were least-squares fitted to the paper's curves:

* **Fig. 5** (OpenMP strong scaling, 32-core Abu Dhabi): parallel
  efficiency 75% @ 8, 56% @ 16, 38% @ 32 cores.  Fitted model gives
  74.6 / 56.7 / 37.6.
* **Fig. 8** (weak scaling, 64-core thog): OpenMP execution-time growth
  +25% (2->4), +36% (4->8), +22% per doubling (8->32), +42% (32->64);
  cube growth +3% (1->2), +13% per doubling (2->32), +18% (32->64);
  cube outperforms OpenMP by 53% at 64 cores.

Documented assumptions (values the paper does not state):

* OpenMP weak-scaling growth from 1 to 2 cores assumed +10% (the paper
  reports growth only from 2 cores upward).
* The cube solver's one-core overhead factor (1.2818) is *derived*:
  it is the unique value consistent with the paper's growth rates and
  the 53%-at-64-cores claim, and reflects the bookkeeping overhead of
  cube-blocked storage at low core counts (the two curves cross near
  8 cores).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ContentionFit",
    "OPENMP_STRONG_ABU_DHABI",
    "OPENMP_WEAK_THOG",
    "CUBE_WEAK_THOG",
    "CUBE_SINGLE_CORE_OVERHEAD",
    "SCALAR_ACCESSES_PER_ARRAY_ACCESS",
    "PAPER_SEQUENTIAL_SECONDS",
    "PAPER_SEQUENTIAL_STEPS",
]


@dataclass(frozen=True)
class ContentionFit:
    """Fitted contention-curve parameters (see module docstring).

    ``wc`` and ``wm`` are *relative* weights (only their ratio matters;
    the absolute scale comes from the Table-I-calibrated kernel cycle
    counts in :mod:`repro.machine.workload`).
    """

    wc: float
    wm: float
    alpha: float
    q: float
    c_sync: float = 0.0

    @property
    def memory_share(self) -> float:
        """Memory-stall share of one-core time, ``Wm' / (Wc + Wm')``."""
        wm1 = self.wm * (1.0 + self.alpha)
        return wm1 / (self.wc + wm1)

    def relative_time(self, n: float, weak: bool = False) -> float:
        """Unnormalized model time at ``n`` cores."""
        import math

        work = self.wc + self.wm * (1.0 + self.alpha * n**self.q)
        if not weak:
            work /= n
        return work + self.c_sync * math.log2(max(n, 1.0))


#: Fig. 5 fit — OpenMP strong scaling on the 32-core Abu Dhabi machine.
OPENMP_STRONG_ABU_DHABI = ContentionFit(
    wc=0.77879, wm=0.48097, alpha=0.10730, q=1.0, c_sync=0.0035748
)

#: Fig. 8 fit — OpenMP weak scaling on thog (with the assumed +10% 1->2).
OPENMP_WEAK_THOG = ContentionFit(wc=0.91570, wm=1.34128, alpha=1.15732, q=0.50327)

#: Fig. 8 fit — cube-based weak scaling on thog.
CUBE_WEAK_THOG = ContentionFit(wc=0.95444, wm=0.73999, alpha=0.66269, q=0.40542)

#: Cube-blocked bookkeeping overhead at one core (derived; see docstring).
CUBE_SINGLE_CORE_OVERHEAD: float = 1.2818

#: Register/stack accesses per array access in scalar C code; sets the
#: denominator of the simulated L1 miss rate the way PAPI sees it
#: (calibrated so the simulated L1 miss rate lands near Table II's 1.75%).
SCALAR_ACCESSES_PER_ARRAY_ACCESS: float = 6.0

#: Paper Section III-D: the sequential reference run.
PAPER_SEQUENTIAL_SECONDS: float = 967.0
PAPER_SEQUENTIAL_STEPS: int = 500
