"""Host fingerprint for cached tuning decisions.

A tuned configuration is a statement about *this* machine: the best
variant/precision/scatter choice flips with cache geometry, core count
and the BLAS/NumPy build (Fu & Song, arXiv:2208.05429, show the best
lattice traversal flipping with cache shape; Beny & Latt,
arXiv:1904.02108, show the scatter strategy flipping with node
density).  The decision cache therefore keys every entry by a stable
digest of the attributes that change those answers; restoring a cache
on different hardware silently re-tunes instead of serving a stale
decision.

The fingerprint is deliberately *coarse*: it hashes identity (ISA,
core count, interpreter and NumPy builds), not load or frequency —
transient conditions are the probe stage's job, not a cache key.
"""

from __future__ import annotations

import hashlib
import os
import platform

__all__ = ["fingerprint_components", "machine_fingerprint"]


def fingerprint_components() -> dict[str, str]:
    """The raw identity attributes folded into the fingerprint."""
    import numpy

    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "processor": platform.processor() or "unknown",
        "cpu_count": str(os.cpu_count() or 0),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def machine_fingerprint() -> str:
    """Short stable digest identifying this host for tuning caches."""
    parts = fingerprint_components()
    blob = "|".join(f"{k}={parts[k]}" for k in sorted(parts))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
