"""Machine descriptions (paper Table III).

:class:`MachineSpec` captures the hardware parameters the performance
model and cache simulator need.  Two presets mirror the paper's
experimental systems:

* :func:`thog` — the 64-core system of Section VI: 4x AMD Opteron 6380
  (Piledriver) 2.5 GHz, 16 cores per processor, per-core 16 KB L1d,
  8x 2 MB L2 (each shared by two cores), 2x 12 MB L3 (each shared by
  eight cores), 8 NUMA nodes of 8 cores / 32 GB each.
* :func:`abu_dhabi` — the 32-core machine of Sections III-IV: 2x AMD
  Opteron 16-core "Abu Dhabi" 2.9 GHz, 64 GB memory (4 NUMA nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineModelError

__all__ = ["CacheSpec", "MachineSpec", "thog", "abu_dhabi", "PRESETS"]


@dataclass(frozen=True)
class CacheSpec:
    """One cache level.

    Parameters
    ----------
    level:
        1, 2, or 3.
    size_bytes:
        Capacity of one cache instance.
    line_bytes:
        Cache-line size.
    associativity:
        Number of ways.
    shared_by:
        How many cores share one instance.
    """

    level: int
    size_bytes: int
    line_bytes: int
    associativity: int
    shared_by: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise MachineModelError("cache sizes must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise MachineModelError(
                f"L{self.level}: size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory manycore machine.

    Attributes mirror paper Table III plus the model parameters the
    performance model needs (clock, per-core bandwidth, issue width).
    """

    name: str
    processor: str
    num_sockets: int
    cores_per_socket: int
    ghz: float
    caches: tuple[CacheSpec, ...]
    num_numa_nodes: int
    memory_per_numa_gb: float
    numa_distance: np.ndarray = field(repr=False)
    #: Peak sustainable memory bandwidth of a single core (GB/s).
    per_core_bandwidth_gbs: float = 6.0
    #: Smooth-saturation half point: aggregate bandwidth follows
    #: ``n * b1 / (1 + n / n_half)`` (see repro.machine.memory).
    bandwidth_half_point: float = 16.0

    def __post_init__(self) -> None:
        if self.num_sockets < 1 or self.cores_per_socket < 1:
            raise MachineModelError("socket/core counts must be positive")
        d = np.asarray(self.numa_distance, dtype=float)
        if d.shape != (self.num_numa_nodes, self.num_numa_nodes):
            raise MachineModelError(
                f"NUMA distance matrix shape {d.shape} does not match "
                f"{self.num_numa_nodes} nodes"
            )
        if not np.allclose(d, d.T):
            raise MachineModelError("NUMA distance matrix must be symmetric")
        object.__setattr__(self, "numa_distance", d)

    @property
    def num_cores(self) -> int:
        """Total core count."""
        return self.num_sockets * self.cores_per_socket

    @property
    def cores_per_numa_node(self) -> int:
        """Cores per NUMA node (assumes an even split)."""
        return self.num_cores // self.num_numa_nodes

    def cache(self, level: int) -> CacheSpec:
        """The cache spec at ``level``; raises if the machine lacks it."""
        for c in self.caches:
            if c.level == level:
                return c
        raise MachineModelError(f"{self.name} has no L{level} cache")

    def numa_node_of_core(self, core: int) -> int:
        """NUMA node of ``core`` under compact (fill-first) placement."""
        if not 0 <= core < self.num_cores:
            raise MachineModelError(
                f"core {core} outside machine of {self.num_cores} cores"
            )
        return core // self.cores_per_numa_node

    def mean_numa_distance(self, num_active_nodes: int | None = None) -> float:
        """Average access distance under the ``interleave=all`` policy.

        With pages interleaved across all NUMA nodes, a core's expected
        access distance is the mean of its distance row; averaging over
        the active nodes gives the machine-level expectation.  The
        diagonal entry 10 represents local access, so the returned value
        divided by 10 is the mean slowdown factor relative to all-local.
        """
        n = self.num_numa_nodes if num_active_nodes is None else num_active_nodes
        if not 1 <= n <= self.num_numa_nodes:
            raise MachineModelError(
                f"active node count {n} outside [1, {self.num_numa_nodes}]"
            )
        # Cores live on nodes 0..n-1 (compact placement); pages are
        # interleaved over all nodes.
        return float(self.numa_distance[:n, :].mean())


#: Paper Table IV, generated by ``numactl -hardware`` on thog.
THOG_NUMA_DISTANCE = np.array(
    [
        [10, 16, 16, 22, 16, 22, 16, 22],
        [16, 10, 22, 16, 22, 16, 22, 16],
        [16, 22, 10, 16, 16, 22, 16, 22],
        [22, 16, 16, 10, 22, 16, 22, 16],
        [16, 22, 16, 22, 10, 16, 16, 22],
        [22, 16, 22, 16, 16, 10, 22, 16],
        [16, 22, 16, 22, 16, 22, 10, 16],
        [22, 16, 22, 16, 22, 16, 16, 10],
    ],
    dtype=float,
)


def thog() -> MachineSpec:
    """The 64-core experimental system of paper Tables III and IV."""
    return MachineSpec(
        name="thog",
        processor="AMD Opteron 6380",
        num_sockets=4,
        cores_per_socket=16,
        ghz=2.5,
        caches=(
            CacheSpec(level=1, size_bytes=16 * 1024, line_bytes=64, associativity=4, shared_by=1),
            CacheSpec(level=2, size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, shared_by=2),
            CacheSpec(level=3, size_bytes=12 * 1024 * 1024, line_bytes=64, associativity=48, shared_by=8),
        ),
        num_numa_nodes=8,
        memory_per_numa_gb=32.0,
        numa_distance=THOG_NUMA_DISTANCE,
        per_core_bandwidth_gbs=6.0,
        bandwidth_half_point=18.0,
    )


def abu_dhabi() -> MachineSpec:
    """The 32-core profiling machine of paper Sections III-IV.

    Two 16-core AMD Opteron "Abu Dhabi" 2.9 GHz processors, 64 GB
    memory.  Each Piledriver die is one NUMA node of 8 cores; the
    4-node distance matrix is the standard two-socket G34 topology
    (on-package 12, cross-socket 16/22-scaled approximation).
    """
    distance = np.array(
        [
            [10, 12, 16, 16],
            [12, 10, 16, 16],
            [16, 16, 10, 12],
            [16, 16, 12, 10],
        ],
        dtype=float,
    )
    return MachineSpec(
        name="abu-dhabi-32",
        processor="AMD Opteron 16-core Abu Dhabi",
        num_sockets=2,
        cores_per_socket=16,
        ghz=2.9,
        caches=(
            CacheSpec(level=1, size_bytes=16 * 1024, line_bytes=64, associativity=4, shared_by=1),
            CacheSpec(level=2, size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, shared_by=2),
            CacheSpec(level=3, size_bytes=8 * 1024 * 1024, line_bytes=64, associativity=64, shared_by=8),
        ),
        num_numa_nodes=4,
        memory_per_numa_gb=16.0,
        numa_distance=distance,
        per_core_bandwidth_gbs=6.0,
        bandwidth_half_point=16.0,
    )


#: Named machine presets.
PRESETS = {"thog": thog, "abu_dhabi": abu_dhabi}
