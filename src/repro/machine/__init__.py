"""The simulated manycore machine.

This package stands in for the paper's physical 32-/64-core AMD hosts
(the hardware gate documented in DESIGN.md):

* ``spec`` / ``numa`` — machine descriptions: paper Tables III and IV;
* ``cache_sim`` / ``traces`` / ``counters`` — a set-associative LRU
  cache simulator driven by layout-faithful address traces (the PAPI
  substitute behind Table II);
* ``workload`` — per-kernel structural costs and the Table-I-calibrated
  scalar cycle counts;
* ``memory`` — bandwidth saturation and contention factors;
* ``calibration`` — every fitted constant, with provenance;
* ``perf_model`` — the execution-time model behind Figures 5 and 8.
"""

from repro.machine.fingerprint import fingerprint_components, machine_fingerprint
from repro.machine.perf_model import PerformanceModel, ScalingPoint, StepBreakdown
from repro.machine.spec import CacheSpec, MachineSpec, abu_dhabi, thog

__all__ = [
    "PerformanceModel",
    "ScalingPoint",
    "StepBreakdown",
    "CacheSpec",
    "MachineSpec",
    "abu_dhabi",
    "thog",
    "fingerprint_components",
    "machine_fingerprint",
]
