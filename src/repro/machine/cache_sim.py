"""Set-associative LRU cache simulator (the PAPI substitute).

The paper measures L1/L2 data-cache miss rates with PAPI (Table II).
Without hardware counters we *simulate* the memory hierarchy: a
configurable set-associative LRU cache per level, driven by address
traces generated from the actual data layouts of the two parallel
programs (global direction-major arrays for the OpenMP version,
contiguous per-cube blocks for the cube version).

Traces are generated for a reduced grid with proportionally reduced
cache capacities, preserving the working-set-to-cache ratios that
determine the miss behaviour.  Following PAPI's accounting, the L2 miss
rate is ``L2 misses / L2 accesses`` where every L1 miss becomes an L2
access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineModelError
from repro.machine.spec import CacheSpec

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "CacheHierarchy",
    "record_bytes",
    "scaled_cache",
    "working_set_nodes",
]


def record_bytes(record_values: int, precision: str = "float64") -> int:
    """Bytes of one node record at a storage precision policy.

    The trace modules size records in *values* (48 per two-lattice
    node, 29 single-lattice — see :mod:`repro.machine.traces`); under
    the float32 and mixed policies each stored value is 4 bytes instead
    of 8, doubling the node count resident in a fixed cache (feed the
    result to :func:`working_set_nodes`).
    """
    from repro.core.backend import dtype_bytes

    if record_values < 1:
        raise MachineModelError(
            f"record_values must be positive, got {record_values}"
        )
    return record_values * dtype_bytes(precision)


def working_set_nodes(cache_bytes: int, record_bytes: int) -> int:
    """Predicted number of node records resident in ``cache_bytes``.

    A first-order capacity argument used to compare data layouts: the
    single-lattice (AA-pattern) record is 29 doubles against the
    two-lattice 48 (see :mod:`repro.machine.traces`), so the same cache
    keeps ``48/29 ~ 1.65x`` more fluid nodes resident — streaming
    neighbour reuse survives proportionally longer reuse distances
    before eviction.
    """
    if cache_bytes < 1 or record_bytes < 1:
        raise MachineModelError(
            f"cache ({cache_bytes}) and record ({record_bytes}) byte sizes "
            "must be positive"
        )
    return cache_bytes // record_bytes


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Number of hits."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """``misses / accesses`` (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    The simulator tracks cache *lines*: an access to byte address ``a``
    touches line ``a // line_bytes``, which maps to set
    ``line % num_sets``.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        line_bytes: int,
        next_line_prefetch: bool = False,
    ) -> None:
        if num_sets < 1 or ways < 1 or line_bytes < 1:
            raise MachineModelError("cache geometry values must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        #: Model a hardware next-line stream prefetcher: every demand
        #: miss also installs the following line (without counting it as
        #: an access), hiding sequential-stream misses the way real
        #: Opteron prefetchers do.
        self.next_line_prefetch = next_line_prefetch
        # Each set is an ordered list of tags, most recent last.
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.stats = CacheStats()

    @classmethod
    def from_spec(
        cls, spec: CacheSpec, next_line_prefetch: bool = False
    ) -> "SetAssociativeCache":
        """Build a simulator matching a hardware cache description."""
        return cls(
            spec.num_sets,
            spec.associativity,
            spec.line_bytes,
            next_line_prefetch=next_line_prefetch,
        )

    @property
    def size_bytes(self) -> int:
        """Capacity."""
        return self.num_sets * self.ways * self.line_bytes

    def access_line(self, line: int) -> bool:
        """Touch one line; returns True on hit.  Updates LRU order."""
        self.stats.accesses += 1
        s = self._sets[line % self.num_sets]
        try:
            s.remove(line)
            s.append(line)
            return True
        except ValueError:
            self.stats.misses += 1
            if len(s) >= self.ways:
                s.pop(0)
            s.append(line)
            if self.next_line_prefetch:
                self._install(line + 1)
            return False

    def _install(self, line: int) -> None:
        """Insert a line without counting an access (prefetch fill)."""
        s = self._sets[line % self.num_sets]
        try:
            s.remove(line)
        except ValueError:
            if len(s) >= self.ways:
                s.pop(0)
        s.append(line)

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()


class CacheHierarchy:
    """An inclusive L1 -> L2 (-> L3) lookup chain.

    ``access_addresses`` runs a byte-address trace through the
    hierarchy; an access that misses level ``i`` proceeds to level
    ``i+1``.  ``scalar_hits_per_access`` models the register/stack
    accesses of scalar code that PAPI counts as (always-hitting) L1
    accesses — it calibrates the denominator of the L1 miss rate the
    way hardware counters see it.
    """

    def __init__(
        self,
        levels: list[SetAssociativeCache],
        scalar_hits_per_access: float = 0.0,
    ) -> None:
        if not levels:
            raise MachineModelError("hierarchy needs at least one level")
        line = levels[0].line_bytes
        for lv in levels:
            if lv.line_bytes != line:
                raise MachineModelError("all levels must share a line size")
        self.levels = levels
        self.scalar_hits_per_access = scalar_hits_per_access
        self._extra_l1_hits = 0

    def access_addresses(self, addresses: np.ndarray) -> None:
        """Run a byte-address trace through the hierarchy."""
        line_bytes = self.levels[0].line_bytes
        lines = np.asarray(addresses, dtype=np.int64) // line_bytes
        levels = self.levels
        for line in lines.tolist():
            for cache in levels:
                if cache.access_line(line):
                    break
        if self.scalar_hits_per_access:
            self._extra_l1_hits += int(self.scalar_hits_per_access * lines.size)

    def miss_rate(self, level: int) -> float:
        """Miss rate of cache level ``level`` (1-based), PAPI accounting."""
        cache = self.levels[level - 1]
        accesses = cache.stats.accesses
        if level == 1:
            accesses += self._extra_l1_hits
        if accesses == 0:
            return 0.0
        return cache.stats.misses / accesses

    def reset(self) -> None:
        """Reset every level."""
        for lv in self.levels:
            lv.reset()
        self._extra_l1_hits = 0


def scaled_cache(
    spec: CacheSpec, scale: float, next_line_prefetch: bool = False
) -> SetAssociativeCache:
    """A simulator cache whose capacity is ``spec`` scaled by ``scale``.

    Used to simulate reduced problem sizes: shrinking the working set
    and the cache by the same factor preserves the miss behaviour of
    capacity-limited access patterns.  Associativity and line size are
    preserved; the set count is scaled (minimum 1).
    """
    if not 0 < scale <= 1:
        raise MachineModelError(f"scale must be in (0, 1], got {scale}")
    num_sets = max(1, int(round(spec.num_sets * scale)))
    return SetAssociativeCache(
        num_sets, spec.associativity, spec.line_bytes,
        next_line_prefetch=next_line_prefetch,
    )
