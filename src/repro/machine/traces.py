"""Address-trace generators for the cache simulator.

The traces replay the memory behaviour of the four expensive fluid
kernels (collision, streaming, velocity update, buffer copy — 97% of
the paper's runtime) for the two data layouts the paper compares.

Layouts
-------
The paper's C code keeps an **array of structs**: Algorithm 2 indexes
``fluid_nodes[x,y,z].distri_freq[direction]``, i.e. each fluid node's 19
present distributions, 19 new distributions, velocities and force live
contiguously in one record.

* :func:`global_step_addresses` — the sequential/OpenMP layout: one big
  node-record array over the whole grid in C (x, y, z) order; a thread
  walks its x-slab.  Streaming writes touch the 18 neighbour records,
  whose reuse distances are one z-line (~Nz records), one y-plane
  (~Ny*Nz records), and so on — the L2-resident reuse the paper's 26%
  L2 miss rate reflects.
* :func:`cube_step_addresses` — the cube layout: node records grouped
  by cube, each cube contiguous (paper Section V-A), with collision and
  streaming fused per cube (loop 2 of Algorithm 4).  Neighbour reuse
  distances shrink to the cube scale, which is the locality advantage
  the cube-centric algorithm is designed around.

Node record layout (48 doubles = 384 bytes):

====== ================= =======
offset field             doubles
====== ================= =======
0      df (present)      19
19     df_new            19
38     velocity_shifted  3
41     velocity          3
44     force             3
47     density           1
====== ================= =======

The in-place (AA-pattern) solver stores a *single* lattice, shrinking
the node record to 29 doubles (232 bytes) and dropping the copy kernel
entirely; :func:`inplace_step_addresses` replays one of its two
alternating phases:

====== ================= =======
offset field             doubles
====== ================= =======
0      df                19
19     velocity_shifted  3
22     velocity          3
25     force             3
28     density           1
====== ================= =======
"""

from __future__ import annotations

import numpy as np

from repro.core.lbm.lattice import E, Q
from repro.errors import MachineModelError

__all__ = [
    "RECORD_DOUBLES",
    "RECORD_BYTES",
    "INPLACE_RECORD_DOUBLES",
    "INPLACE_RECORD_BYTES",
    "global_step_addresses",
    "cube_step_addresses",
    "inplace_step_addresses",
]

_D = 8  # bytes per double

#: Doubles per node record.
RECORD_DOUBLES = 48
#: Bytes per node record.
RECORD_BYTES = RECORD_DOUBLES * _D

#: Doubles per node record in the single-lattice (AA-pattern) layout.
INPLACE_RECORD_DOUBLES = 29
#: Bytes per node record in the single-lattice layout.
INPLACE_RECORD_BYTES = INPLACE_RECORD_DOUBLES * _D

_OFF_DF = 0
_OFF_DF_NEW = 19
_OFF_USTAR = 38
_OFF_U = 41
_OFF_FORCE = 44
_OFF_RHO = 47

# Offsets within the 29-double in-place record.
_IP_OFF_DF = 0
_IP_OFF_USTAR = 19
_IP_OFF_U = 22
_IP_OFF_FORCE = 25
_IP_OFF_RHO = 28


def _interleave(columns: list[np.ndarray]) -> np.ndarray:
    """Stack per-node address columns and flatten in per-node order."""
    return np.stack(columns, axis=1).reshape(-1)


def _step_trace(records: np.ndarray, neighbor_records: list[np.ndarray]) -> np.ndarray:
    """Assemble the four-kernel trace given record indices.

    Parameters
    ----------
    records:
        Record index of every node the thread owns, in visit order.
    neighbor_records:
        Per direction ``i``, the record index of each node's neighbour
        along ``E[i]`` (destination of the streaming push).
    """
    base = records * RECORD_BYTES
    parts: list[np.ndarray] = []

    # kernel 5: collision — read df (19) + u* (3), write df (19)
    cols = [base + (_OFF_DF + i) * _D for i in range(Q)]
    cols += [base + (_OFF_USTAR + c) * _D for c in range(3)]
    cols += [base + (_OFF_DF + i) * _D for i in range(Q)]
    parts.append(_interleave(cols))

    # kernel 6: streaming — read own df[i], write neighbour df_new[i]
    cols = []
    for i in range(Q):
        cols.append(base + (_OFF_DF + i) * _D)
        cols.append(neighbor_records[i] * RECORD_BYTES + (_OFF_DF_NEW + i) * _D)
    parts.append(_interleave(cols))

    # kernel 7: update — read df_new (19) + force (3); write rho/u/u* (7)
    cols = [base + (_OFF_DF_NEW + i) * _D for i in range(Q)]
    cols += [base + (_OFF_FORCE + c) * _D for c in range(3)]
    cols += [base + _OFF_RHO * _D]
    cols += [base + (_OFF_U + c) * _D for c in range(3)]
    cols += [base + (_OFF_USTAR + c) * _D for c in range(3)]
    parts.append(_interleave(cols))

    # kernel 9: copy — read df_new, write df
    cols = []
    for i in range(Q):
        cols.append(base + (_OFF_DF_NEW + i) * _D)
        cols.append(base + (_OFF_DF + i) * _D)
    parts.append(_interleave(cols))

    return np.concatenate(parts)


def global_step_addresses(
    shape: tuple[int, int, int], x_start: int = 0, x_stop: int | None = None
) -> np.ndarray:
    """One thread's addresses for one step on the global AoS layout.

    Parameters
    ----------
    shape:
        Full grid shape ``(Nx, Ny, Nz)``.
    x_start, x_stop:
        The thread's slab ``[x_start, x_stop)`` (defaults to the whole
        grid, i.e. the sequential program).
    """
    nx, ny, nz = shape
    if x_stop is None:
        x_stop = nx
    if not 0 <= x_start < x_stop <= nx:
        raise MachineModelError(f"bad slab [{x_start}, {x_stop}) for Nx={nx}")

    x, y, z = np.meshgrid(
        np.arange(x_start, x_stop), np.arange(ny), np.arange(nz), indexing="ij"
    )
    xf, yf, zf = (a.reshape(-1).astype(np.int64) for a in (x, y, z))
    records = (xf * ny + yf) * nz + zf

    neighbor_records = []
    for i in range(Q):
        ex, ey, ez = (int(c) for c in E[i])
        nrec = (((xf + ex) % nx) * ny + ((yf + ey) % ny)) * nz + ((zf + ez) % nz)
        neighbor_records.append(nrec)
    return _step_trace(records, neighbor_records)


def inplace_step_addresses(
    shape: tuple[int, int, int],
    x_start: int = 0,
    x_stop: int | None = None,
    phase: int = 0,
) -> np.ndarray:
    """One thread's addresses for one step of the in-place AA solver.

    The AA-pattern keeps a single lattice, so the step has no copy
    kernel and no second distribution buffer; each step is one of two
    alternating phases of the 29-double record layout:

    * ``phase=0`` (even): collision reads/writes the node's own ``df``
      slots (the opposite-direction swap stays within the record), then
      the velocity update *gathers* — direction ``i`` of the virtual
      post-stream state lives in slot ``opp(i)`` of the neighbour at
      ``x - e_i``.
    * ``phase=1`` (odd): collision gathers its inputs from the
      neighbours at ``x - e_i``, pushes results to slot ``i`` of the
      neighbours at ``x + e_i``, and the velocity update reads the
      node's own (now naturally laid out) record.
    """
    nx, ny, nz = shape
    if x_stop is None:
        x_stop = nx
    if not 0 <= x_start < x_stop <= nx:
        raise MachineModelError(f"bad slab [{x_start}, {x_stop}) for Nx={nx}")
    if phase not in (0, 1):
        raise MachineModelError(f"AA phase must be 0 or 1, got {phase}")

    x, y, z = np.meshgrid(
        np.arange(x_start, x_stop), np.arange(ny), np.arange(nz), indexing="ij"
    )
    xf, yf, zf = (a.reshape(-1).astype(np.int64) for a in (x, y, z))
    records = (xf * ny + yf) * nz + zf

    def shifted_records(sign: int) -> list[np.ndarray]:
        out = []
        for i in range(Q):
            ex, ey, ez = (sign * int(c) for c in E[i])
            nrec = (((xf + ex) % nx) * ny + ((yf + ey) % ny)) * nz + ((zf + ez) % nz)
            out.append(nrec)
        return out

    base = records * INPLACE_RECORD_BYTES
    parts: list[np.ndarray] = []
    if phase == 0:
        # even collision: read df (19) + u* (3), write df in place (19)
        cols = [base + (_IP_OFF_DF + i) * _D for i in range(Q)]
        cols += [base + (_IP_OFF_USTAR + c) * _D for c in range(3)]
        cols += [base + (_IP_OFF_DF + i) * _D for i in range(Q)]
        parts.append(_interleave(cols))
        # even update: gather df from the x - e_i neighbours + force,
        # write rho/u/u*
        gather = shifted_records(-1)
        cols = [
            gather[i] * INPLACE_RECORD_BYTES + (_IP_OFF_DF + i) * _D for i in range(Q)
        ]
        cols += [base + (_IP_OFF_FORCE + c) * _D for c in range(3)]
        cols += [base + _IP_OFF_RHO * _D]
        cols += [base + (_IP_OFF_U + c) * _D for c in range(3)]
        cols += [base + (_IP_OFF_USTAR + c) * _D for c in range(3)]
        parts.append(_interleave(cols))
    else:
        # odd collision: gather df from x - e_i, read u*, push to x + e_i
        gather = shifted_records(-1)
        push = shifted_records(+1)
        cols = []
        for i in range(Q):
            cols.append(gather[i] * INPLACE_RECORD_BYTES + (_IP_OFF_DF + i) * _D)
            cols.append(push[i] * INPLACE_RECORD_BYTES + (_IP_OFF_DF + i) * _D)
        cols += [base + (_IP_OFF_USTAR + c) * _D for c in range(3)]
        parts.append(_interleave(cols))
        # odd update: the lattice is back in natural layout — local reads
        cols = [base + (_IP_OFF_DF + i) * _D for i in range(Q)]
        cols += [base + (_IP_OFF_FORCE + c) * _D for c in range(3)]
        cols += [base + _IP_OFF_RHO * _D]
        cols += [base + (_IP_OFF_U + c) * _D for c in range(3)]
        cols += [base + (_IP_OFF_USTAR + c) * _D for c in range(3)]
        parts.append(_interleave(cols))
    return np.concatenate(parts)


def cube_step_addresses(
    shape: tuple[int, int, int], cube_size: int, cube_ids: np.ndarray | None = None
) -> np.ndarray:
    """One thread's addresses for one step on the cube AoS layout.

    Records are stored cube-major: record index = ``c * k^3 + local``
    where ``local`` is the C-order index within cube ``c``.  Collision
    and streaming are fused per cube, then loop 3 (update) and loop 5
    (copy) sweep the thread's cubes again — matching Algorithm 4.

    Parameters
    ----------
    shape:
        Full grid shape, divisible by ``cube_size``.
    cube_size:
        Cube edge ``k``.
    cube_ids:
        Linear cube indices owned by the thread (default: all cubes).
    """
    nx, ny, nz = shape
    k = cube_size
    if nx % k or ny % k or nz % k:
        raise MachineModelError(f"grid {shape} not divisible by cube size {k}")
    ncx, ncy, ncz = nx // k, ny // k, nz // k
    num_cubes = ncx * ncy * ncz
    k3 = k * k * k
    if cube_ids is None:
        cube_ids = np.arange(num_cubes, dtype=np.int64)
    cube_ids = np.asarray(cube_ids, dtype=np.int64)

    lx, ly, lz = np.meshgrid(np.arange(k), np.arange(k), np.arange(k), indexing="ij")
    lxf, lyf, lzf = (a.reshape(-1).astype(np.int64) for a in (lx, ly, lz))
    local = (lxf * k + lyf) * k + lzf

    def cube_records(c: int) -> np.ndarray:
        return c * k3 + local

    def neighbor_records_of(c: int) -> list[np.ndarray]:
        ci = c // (ncy * ncz)
        cj = (c // ncz) % ncy
        ck = c % ncz
        out = []
        for i in range(Q):
            ex, ey, ez = (int(v) for v in E[i])
            gx = ci * k + lxf + ex
            gy = cj * k + lyf + ey
            gz = ck * k + lzf + ez
            nci, nlx = (gx // k) % ncx, gx % k
            ncj, nly = (gy // k) % ncy, gy % k
            nck, nlz = (gz // k) % ncz, gz % k
            ncid = (nci * ncy + ncj) * ncz + nck
            out.append(ncid * k3 + (nlx * k + nly) * k + nlz)
        return out

    parts: list[np.ndarray] = []
    # loop 2: collision + streaming fused per cube
    for c in cube_ids.tolist():
        base = cube_records(c) * RECORD_BYTES
        cols = [base + (_OFF_DF + i) * _D for i in range(Q)]
        cols += [base + (_OFF_USTAR + comp) * _D for comp in range(3)]
        cols += [base + (_OFF_DF + i) * _D for i in range(Q)]
        parts.append(_interleave(cols))
        nrecs = neighbor_records_of(c)
        cols = []
        for i in range(Q):
            cols.append(base + (_OFF_DF + i) * _D)
            cols.append(nrecs[i] * RECORD_BYTES + (_OFF_DF_NEW + i) * _D)
        parts.append(_interleave(cols))
    # loop 3: update per cube
    for c in cube_ids.tolist():
        base = cube_records(c) * RECORD_BYTES
        cols = [base + (_OFF_DF_NEW + i) * _D for i in range(Q)]
        cols += [base + (_OFF_FORCE + comp) * _D for comp in range(3)]
        cols += [base + _OFF_RHO * _D]
        cols += [base + (_OFF_U + comp) * _D for comp in range(3)]
        cols += [base + (_OFF_USTAR + comp) * _D for comp in range(3)]
        parts.append(_interleave(cols))
    # loop 5: copy per cube
    for c in cube_ids.tolist():
        base = cube_records(c) * RECORD_BYTES
        cols = []
        for i in range(Q):
            cols.append(base + (_OFF_DF_NEW + i) * _D)
            cols.append(base + (_OFF_DF + i) * _D)
        parts.append(_interleave(cols))
    return np.concatenate(parts)
