"""Per-kernel work characteristics.

Two complementary descriptions of each of the nine kernels:

* **Structural costs** (:data:`KERNEL_WORK`): floating-point operations
  and bytes moved per node, derived from the kernel definitions (19
  populations of 8 bytes, 3 velocity components, the 4x4x4 = 64-node
  influential domain...).  These numbers feed the cache-simulator
  traces and the roofline sanity checks and are layout-independent
  facts about the algorithm.
* **Calibrated scalar costs** (:data:`SCALAR_CYCLES_PER_NODE`): CPU
  cycles per node of the paper's sequential C implementation, derived
  from paper Table I (kernel percentages of the 967 s / 500 step run on
  the 2.9 GHz Abu Dhabi machine with a 124x64x64 grid and 52x52 fiber
  nodes).  The performance model uses these as the absolute time scale
  so that modelled runtimes correspond to the paper's code, not to our
  vectorized NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KernelWork",
    "KERNEL_WORK",
    "SCALAR_CYCLES_PER_NODE",
    "FLUID_KERNELS",
    "FIBER_KERNELS",
    "PAPER_TABLE1_PERCENTAGES",
    "step_scalar_seconds",
    "step_bytes",
]

#: Bytes of one double.
_D = 8


@dataclass(frozen=True)
class KernelWork:
    """Structural per-node cost of one kernel.

    Attributes
    ----------
    unit:
        ``"fluid"`` if the kernel visits every fluid node, ``"fiber"``
        if it visits every fiber node (the two kernel classes of paper
        Section IV-A).
    flops:
        Floating point operations per node.
    bytes_read / bytes_written:
        Data touched per node in the global-array layout.
    cube_bytes_read:
        Bytes read per node in the cube layout, accounting for the
        fusion of collision + streaming in loop 2 of Algorithm 4 (the
        post-collision populations are still cache-resident when the
        cube is streamed, so streaming's re-read of ``df`` is free).
    """

    unit: str
    flops: int
    bytes_read: int
    bytes_written: int
    cube_bytes_read: int | None = None

    @property
    def bytes_total(self) -> int:
        """Read + written bytes per node (global layout)."""
        return self.bytes_read + self.bytes_written

    def cube_bytes_total(self) -> int:
        """Read + written bytes per node (cube layout)."""
        read = self.cube_bytes_read if self.cube_bytes_read is not None else self.bytes_read
        return read + self.bytes_written


#: Structural work of the nine kernels, keyed by paper kernel name.
KERNEL_WORK: dict[str, KernelWork] = {
    # --- fiber kernels (per fiber node) ---
    "compute_bending_force_in_fibers": KernelWork(
        unit="fiber", flops=70, bytes_read=9 * 3 * _D, bytes_written=3 * _D
    ),
    "compute_stretching_force_in_fibers": KernelWork(
        unit="fiber", flops=90, bytes_read=5 * 3 * _D, bytes_written=3 * _D
    ),
    "compute_elastic_force_in_fibers": KernelWork(
        unit="fiber", flops=10, bytes_read=2 * 3 * _D, bytes_written=3 * _D
    ),
    "spread_force_from_fibers_to_fluid": KernelWork(
        # 64-node influential domain, read+write of 3 force components,
        # plus the delta-weight evaluation (12 cosine evaluations).
        unit="fiber",
        flops=64 * 16 + 200,
        bytes_read=64 * 3 * _D + 3 * _D,
        bytes_written=64 * 3 * _D,
    ),
    # --- fluid kernels (per fluid node) ---
    "compute_fluid_collision": KernelWork(
        unit="fluid",
        flops=390,
        bytes_read=19 * _D + 3 * _D,  # df + shifted velocity
        bytes_written=19 * _D,
    ),
    "stream_fluid_velocity_distribution": KernelWork(
        unit="fluid",
        flops=20,
        bytes_read=19 * _D,
        bytes_written=19 * _D,
        cube_bytes_read=0,  # fused with collision: df still in cache
    ),
    "update_fluid_velocity": KernelWork(
        unit="fluid",
        flops=170,
        bytes_read=19 * _D + 3 * _D,  # df_new + force
        bytes_written=7 * _D,  # rho + u + u*
    ),
    "move_fibers": KernelWork(
        unit="fiber",
        flops=64 * 13 + 200,
        bytes_read=64 * 3 * _D,
        bytes_written=6 * _D,
    ),
    "copy_fluid_velocity_distribution": KernelWork(
        unit="fluid", flops=0, bytes_read=19 * _D, bytes_written=19 * _D
    ),
}

#: Fluid-node kernels (the expensive class of paper Table I).
FLUID_KERNELS: tuple[str, ...] = tuple(
    k for k, w in KERNEL_WORK.items() if w.unit == "fluid"
)

#: Fiber-node kernels.
FIBER_KERNELS: tuple[str, ...] = tuple(
    k for k, w in KERNEL_WORK.items() if w.unit == "fiber"
)

#: Paper Table I: percentage of total sequential time per kernel.
PAPER_TABLE1_PERCENTAGES: dict[str, float] = {
    "compute_fluid_collision": 73.2,
    "update_fluid_velocity": 12.6,
    "copy_fluid_velocity_distribution": 5.9,
    "stream_fluid_velocity_distribution": 5.4,
    "spread_force_from_fibers_to_fluid": 1.4,
    "move_fibers": 0.7,
    "compute_bending_force_in_fibers": 0.03,
    "compute_stretching_force_in_fibers": 0.02,
    "compute_elastic_force_in_fibers": 0.005,  # "0.00%" in the paper
}

# Derivation of the calibrated cycle counts (documented, reproducible):
#   total = 967 s for 500 steps  ->  1.934 s/step
#   fluid nodes = 124 * 64 * 64 = 507904; fiber nodes = 52 * 52 = 2704
#   cycles/node = pct/100 * 1.934 s * 2.9e9 Hz / nodes
_STEP_SECONDS = 967.0 / 500.0
_FLUID_NODES = 124 * 64 * 64
_FIBER_NODES = 52 * 52
_GHZ = 2.9e9

#: Cycles per node of the paper's sequential implementation (see above).
SCALAR_CYCLES_PER_NODE: dict[str, float] = {
    name: (
        PAPER_TABLE1_PERCENTAGES[name]
        / 100.0
        * _STEP_SECONDS
        * _GHZ
        / (_FLUID_NODES if KERNEL_WORK[name].unit == "fluid" else _FIBER_NODES)
    )
    for name in KERNEL_WORK
}


def step_scalar_seconds(
    fluid_nodes: int, fiber_nodes: int, ghz: float
) -> dict[str, float]:
    """Modelled per-kernel seconds of one sequential step.

    Uses the Table-I-calibrated cycle counts, scaled to an arbitrary
    problem size and clock rate.
    """
    out: dict[str, float] = {}
    for name, work in KERNEL_WORK.items():
        nodes = fluid_nodes if work.unit == "fluid" else fiber_nodes
        out[name] = SCALAR_CYCLES_PER_NODE[name] * nodes / (ghz * 1e9)
    return out


#: Kernels the single-lattice AA-pattern step does not execute at all:
#: streaming is fused into collision as in-place register/neighbour
#: traffic already accounted to the collision kernel, and the buffer
#: copy has no second buffer to copy.
_INPLACE_ELIDED_KERNELS = (
    "stream_fluid_velocity_distribution",
    "copy_fluid_velocity_distribution",
)


def step_bytes(
    fluid_nodes: int,
    fiber_nodes: int,
    layout: str = "global",
    dtype_bytes: int = _D,
) -> float:
    """Total bytes moved per step for a problem size and data layout.

    ``dtype_bytes`` is the fluid storage element size (8 for float64,
    4 for the float32/mixed policies of :mod:`repro.core.backend`).
    Only the fluid-unit kernels scale with it — their traffic is pure
    lattice/field data — while the fiber kernels keep the float64 cost:
    Lagrangian state stays double precision under every policy, and
    their fluid-field term (the kernel-4 scatter) is ~1.4% of the step.
    """
    if layout not in ("global", "cube", "inplace"):
        raise ValueError(
            f"layout must be 'global', 'cube' or 'inplace', got {layout!r}"
        )
    fluid_scale = float(dtype_bytes) / _D
    total = 0.0
    for name, work in KERNEL_WORK.items():
        if layout == "inplace" and name in _INPLACE_ELIDED_KERNELS:
            continue
        nodes = fluid_nodes if work.unit == "fluid" else fiber_nodes
        per_node = work.bytes_total if layout != "cube" else work.cube_bytes_total()
        if work.unit == "fluid":
            per_node *= fluid_scale
        total += per_node * nodes
    return total
