"""PAPI-style counter facade over the cache simulator.

The paper measures L1/L2 data-cache miss rates with PAPI (Table II).
:class:`SimulatedCounters` provides the same two numbers, computed by
running layout-faithful address traces through the set-associative
cache simulator with the hardware geometry of a
:class:`~repro.machine.spec.MachineSpec`.

Problem sizes are reduced for simulation speed; L2/L3 capacities are
scaled *with* the working set (capacity-limited behaviour is preserved
under joint scaling) while L1 keeps its real size (its behaviour is
dominated by spatial locality within cache lines, which does not scale
with the problem).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine import traces
from repro.machine.cache_sim import CacheHierarchy, SetAssociativeCache, scaled_cache
from repro.machine.calibration import SCALAR_ACCESSES_PER_ARRAY_ACCESS
from repro.machine.spec import MachineSpec

__all__ = ["MissRates", "SimulatedCounters"]


@dataclass(frozen=True)
class MissRates:
    """L1/L2 data-cache miss rates, PAPI accounting."""

    l1: float
    l2: float


class SimulatedCounters:
    """Measure miss rates of a solver layout on a machine.

    Parameters
    ----------
    machine:
        Hardware description (cache geometry).
    reference_nodes:
        The *real* experiment's fluid-node count; the ratio between it
        and the simulated grid sets the cache scaling factor.
    """

    def __init__(self, machine: MachineSpec, reference_nodes: int) -> None:
        self.machine = machine
        self.reference_nodes = reference_nodes

    def _hierarchy(self, sim_nodes: int) -> CacheHierarchy:
        scale = min(1.0, sim_nodes / self.reference_nodes)
        l1 = SetAssociativeCache.from_spec(self.machine.cache(1))
        l2 = scaled_cache(self.machine.cache(2), scale, next_line_prefetch=True)
        levels = [l1, l2]
        try:
            l3 = scaled_cache(self.machine.cache(3), scale, next_line_prefetch=True)
            levels.append(l3)
        except Exception:  # machine without L3
            pass
        return CacheHierarchy(
            levels, scalar_hits_per_access=SCALAR_ACCESSES_PER_ARRAY_ACCESS
        )

    def openmp_miss_rates(
        self,
        shape: tuple[int, int, int],
        num_threads: int = 1,
        thread_id: int = 0,
    ) -> MissRates:
        """Miss rates of one OpenMP thread's slab on the global layout."""
        nx = shape[0]
        from repro.parallel.partition import static_slabs

        slab = static_slabs(nx, num_threads)[thread_id]
        sim_nodes = shape[0] * shape[1] * shape[2]
        hierarchy = self._hierarchy(sim_nodes)
        addrs = traces.global_step_addresses(shape, slab.start, slab.stop)
        hierarchy.access_addresses(addrs)
        return MissRates(hierarchy.miss_rate(1), hierarchy.miss_rate(2))

    def cube_miss_rates(
        self,
        shape: tuple[int, int, int],
        cube_size: int,
        cube_ids: np.ndarray | None = None,
    ) -> MissRates:
        """Miss rates of one cube-solver thread's cube subset."""
        sim_nodes = shape[0] * shape[1] * shape[2]
        hierarchy = self._hierarchy(sim_nodes)
        addrs = traces.cube_step_addresses(shape, cube_size, cube_ids)
        hierarchy.access_addresses(addrs)
        return MissRates(hierarchy.miss_rate(1), hierarchy.miss_rate(2))
