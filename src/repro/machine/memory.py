"""Memory-bandwidth and contention model.

The paper attributes the OpenMP program's scaling collapse to memory:
a large working set with poor locality saturates the shared memory
links as cores are added (Sections IV-B, V, VI-B).  This module gives
the model-level view of that mechanism:

* :func:`effective_bandwidth` — aggregate bandwidth available to ``n``
  cores, with smooth saturation ``B(n) = n * b1 / (1 + n / n_half)``;
* :func:`contention_factor` — the fitted stall-inflation factor
  ``1 + alpha * n**q`` used by the performance model;
* :func:`bandwidth_demand` — a solver's per-second traffic demand, for
  roofline-style saturation diagnostics.
"""

from __future__ import annotations

from repro.errors import MachineModelError
from repro.machine.calibration import ContentionFit
from repro.machine.spec import MachineSpec

__all__ = [
    "effective_bandwidth",
    "contention_factor",
    "bandwidth_demand",
    "saturation_core_count",
]


def effective_bandwidth(machine: MachineSpec, num_threads: int) -> float:
    """Aggregate sustainable bandwidth (GB/s) for ``num_threads`` cores.

    Smooth-saturation form: each core alone sustains
    ``per_core_bandwidth_gbs``; the aggregate approaches
    ``b1 * n_half`` as the memory system saturates.
    """
    if not 1 <= num_threads <= machine.num_cores:
        raise MachineModelError(
            f"thread count {num_threads} outside [1, {machine.num_cores}]"
        )
    b1 = machine.per_core_bandwidth_gbs
    nh = machine.bandwidth_half_point
    return num_threads * b1 / (1.0 + num_threads / nh)


def contention_factor(fit: ContentionFit, num_threads: int) -> float:
    """Memory-stall inflation ``1 + alpha * n**q`` at ``num_threads``."""
    if num_threads < 1:
        raise MachineModelError(f"thread count must be >= 1, got {num_threads}")
    return 1.0 + fit.alpha * num_threads**fit.q


def bandwidth_demand(step_bytes: float, step_seconds: float) -> float:
    """Traffic demand in GB/s of a solver step."""
    if step_seconds <= 0:
        raise MachineModelError("step time must be positive")
    return step_bytes / step_seconds / 1e9


def saturation_core_count(machine: MachineSpec, fraction: float = 0.8) -> int:
    """Smallest core count reaching ``fraction`` of asymptotic bandwidth."""
    if not 0 < fraction < 1:
        raise MachineModelError(f"fraction must be in (0, 1), got {fraction}")
    asymptote = machine.per_core_bandwidth_gbs * machine.bandwidth_half_point
    for n in range(1, machine.num_cores + 1):
        if effective_bandwidth(machine, n) >= fraction * asymptote:
            return n
    return machine.num_cores
