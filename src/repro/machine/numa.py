"""NUMA topology helpers (paper Table IV).

The paper runs every experiment under ``numactl --interleave=all``, so
pages are spread round-robin across all NUMA nodes while threads fill
cores compactly.  This module answers the questions the performance
model asks about that configuration: how many NUMA nodes are active for
a given thread count, what the expected access distance (and therefore
the remote-access slowdown) is, and how much aggregate memory bandwidth
the active nodes expose.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineModelError
from repro.machine.spec import MachineSpec

__all__ = [
    "active_numa_nodes",
    "interleave_distance_factor",
    "remote_access_fraction",
    "distance_table_as_text",
]


def active_numa_nodes(machine: MachineSpec, num_threads: int) -> int:
    """NUMA nodes hosting at least one thread under compact placement."""
    if not 1 <= num_threads <= machine.num_cores:
        raise MachineModelError(
            f"thread count {num_threads} outside [1, {machine.num_cores}]"
        )
    per_node = machine.cores_per_numa_node
    return int(np.ceil(num_threads / per_node))


def interleave_distance_factor(machine: MachineSpec, num_threads: int) -> float:
    """Mean access-latency factor relative to all-local access.

    With ``interleave=all``, a thread's accesses spread uniformly over
    every NUMA node regardless of where the thread runs, so the expected
    distance is the mean of its distance row.  The diagonal of the
    distance table is 10 (= local), so dividing by 10 yields the
    slowdown factor; on thog the factor is about 1.75, matching the
    paper's observation that remote access can cost 2.2x local.
    """
    active = active_numa_nodes(machine, num_threads)
    return machine.mean_numa_distance(active) / 10.0


def remote_access_fraction(machine: MachineSpec, num_threads: int) -> float:
    """Fraction of interleaved accesses that land on a remote node."""
    return 1.0 - 1.0 / machine.num_numa_nodes if machine.num_numa_nodes > 1 else 0.0


def distance_table_as_text(machine: MachineSpec) -> str:
    """Render the NUMA distance matrix like ``numactl --hardware`` does."""
    n = machine.num_numa_nodes
    header = "node " + "  ".join(f"{j:>3d}" for j in range(n))
    lines = [header]
    for i in range(n):
        row = "  ".join(f"{int(machine.numa_distance[i, j]):>3d}" for j in range(n))
        lines.append(f"{i:>3d}: {row}")
    return "\n".join(lines)
