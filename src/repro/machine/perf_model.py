"""Analytic execution-time model for the simulated manycore machine.

This is the layer that stands in for the paper's 32- and 64-core AMD
hosts (see DESIGN.md, "Hardware gate and the substitution we make").
Absolute time comes from the Table-I-calibrated per-kernel cycle counts
(:mod:`repro.machine.workload`); scaling behaviour comes from the
fitted contention curves (:mod:`repro.machine.calibration`), which
encode bandwidth saturation, shared-cache interference and NUMA effects
as a single stall-inflation factor.

The model answers exactly the questions the paper's evaluation asks:

* :meth:`PerformanceModel.sequential_step` — per-kernel breakdown of a
  sequential step (paper Table I and the 967 s headline);
* :meth:`PerformanceModel.strong_scaling` — OpenMP speedup/efficiency
  on 1..32 cores (paper Figure 5);
* :meth:`PerformanceModel.weak_scaling` — OpenMP vs cube execution
  time, fixed per-core work, 1..64 cores (paper Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MachineModelError
from repro.machine import calibration as cal
from repro.machine import workload as wl
from repro.machine.spec import MachineSpec

__all__ = ["StepBreakdown", "ScalingPoint", "PerformanceModel"]


@dataclass(frozen=True)
class StepBreakdown:
    """Per-kernel seconds of one modelled time step."""

    kernel_seconds: dict[str, float]

    @property
    def total_seconds(self) -> float:
        """Sum over kernels."""
        return sum(self.kernel_seconds.values())

    def percentages(self) -> dict[str, float]:
        """Kernel shares of the total, in percent, descending."""
        total = self.total_seconds
        items = sorted(
            self.kernel_seconds.items(), key=lambda kv: kv[1], reverse=True
        )
        return {k: 100.0 * v / total for k, v in items}


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    cores: int
    seconds: float
    speedup: float
    efficiency: float


class PerformanceModel:
    """Execution-time predictions for a :class:`MachineSpec`.

    Parameters
    ----------
    machine:
        The modelled host (presets: ``thog()``, ``abu_dhabi()``).
    """

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    # ------------------------------------------------------------------
    # sequential (Table I)
    # ------------------------------------------------------------------
    def sequential_step(
        self, fluid_shape: tuple[int, int, int], fiber_shape: tuple[int, int]
    ) -> StepBreakdown:
        """Modelled per-kernel seconds of one sequential step."""
        fluid_nodes = fluid_shape[0] * fluid_shape[1] * fluid_shape[2]
        fiber_nodes = fiber_shape[0] * fiber_shape[1]
        seconds = wl.step_scalar_seconds(fluid_nodes, fiber_nodes, self.machine.ghz)
        return StepBreakdown(seconds)

    def sequential_total_seconds(
        self,
        fluid_shape: tuple[int, int, int],
        fiber_shape: tuple[int, int],
        num_steps: int,
    ) -> float:
        """Modelled wall time of a sequential run (paper: 967 s)."""
        if num_steps < 0:
            raise MachineModelError("num_steps must be non-negative")
        return self.sequential_step(fluid_shape, fiber_shape).total_seconds * num_steps

    # ------------------------------------------------------------------
    # scaling curves
    # ------------------------------------------------------------------
    def _fit_for(self, solver: str, weak: bool) -> cal.ContentionFit:
        key = (solver, weak)
        table = {
            ("openmp", False): cal.OPENMP_STRONG_ABU_DHABI,
            ("openmp", True): cal.OPENMP_WEAK_THOG,
            ("cube", True): cal.CUBE_WEAK_THOG,
            # The cube solver's strong-scaling behaviour reuses its weak
            # contention exponents (the paper evaluates it weakly only).
            ("cube", False): cal.CUBE_WEAK_THOG,
        }
        if key not in table:
            raise MachineModelError(
                f"no contention fit for solver={solver!r} weak={weak}"
            )
        return table[key]

    def _check_cores(self, cores: int) -> None:
        if not 1 <= cores <= self.machine.num_cores:
            raise MachineModelError(
                f"core count {cores} outside [1, {self.machine.num_cores}] "
                f"of machine {self.machine.name!r}"
            )

    def strong_scaling(
        self,
        core_counts: list[int],
        fluid_shape: tuple[int, int, int],
        fiber_shape: tuple[int, int],
        solver: str = "openmp",
    ) -> list[ScalingPoint]:
        """Fixed-size scaling (paper Figure 5).

        ``T(n) = T(1) * rel(n) / rel(1)`` where ``rel`` is the fitted
        contention curve and ``T(1)`` the calibrated sequential step
        time for this problem size.
        """
        fit = self._fit_for(solver, weak=False)
        t1 = self.sequential_step(fluid_shape, fiber_shape).total_seconds
        if solver == "cube":
            t1 *= cal.CUBE_SINGLE_CORE_OVERHEAD
        rel1 = fit.relative_time(1, weak=False)
        points = []
        for n in core_counts:
            self._check_cores(n)
            t = t1 * fit.relative_time(n, weak=False) / rel1
            speedup = t1 / t
            points.append(ScalingPoint(n, t, speedup, speedup / n))
        return points

    def weak_scaling(
        self,
        core_counts: list[int],
        fluid_nodes_per_core: int,
        fiber_shape: tuple[int, int],
        solver: str = "openmp",
    ) -> list[ScalingPoint]:
        """Fixed per-core work scaling (paper Figure 8).

        The fiber input stays constant (104 x 104 in the paper) while
        the fluid grid grows with the core count.  Ideal behaviour is a
        flat line; ``efficiency`` below is ``T(1) / T(n)``.
        """
        fit = self._fit_for(solver, weak=True)
        fiber_nodes = fiber_shape[0] * fiber_shape[1]
        seconds = wl.step_scalar_seconds(
            fluid_nodes_per_core, fiber_nodes, self.machine.ghz
        )
        t1 = sum(seconds.values())
        if solver == "cube":
            t1 *= cal.CUBE_SINGLE_CORE_OVERHEAD
        rel1 = fit.relative_time(1, weak=True)
        points = []
        for n in core_counts:
            self._check_cores(n)
            t = t1 * fit.relative_time(n, weak=True) / rel1
            points.append(ScalingPoint(n, t, t1 / t, t1 / t))
        return points

    # ------------------------------------------------------------------
    # precision scaling (float32 Table-II / Figure-8 predictions)
    # ------------------------------------------------------------------
    def precision_time_factor(
        self,
        fluid_shape: tuple[int, int, int],
        fiber_shape: tuple[int, int],
        precision: str = "float64",
        solver: str = "openmp",
        layout: str = "global",
        weak: bool = False,
    ) -> float:
        """Relative step time under a storage precision policy.

        A memory-share model: the fitted contention curves split
        one-core time into a compute share (dtype-independent — the
        vector units do not run faster on these widths for this code's
        flop mix) and a memory-stall share, which scales with the bytes
        actually moved.  :func:`repro.machine.workload.step_bytes`
        provides the byte ratio, so the fiber kernels' permanent-f64
        traffic is accounted for.  Returns a factor <= 1 for float32
        and mixed policies (multiply a float64 prediction by it), and
        exactly 1.0 for float64.
        """
        from repro.core.backend import dtype_bytes

        fluid_nodes = fluid_shape[0] * fluid_shape[1] * fluid_shape[2]
        fiber_nodes = fiber_shape[0] * fiber_shape[1]
        base = wl.step_bytes(fluid_nodes, fiber_nodes, layout)
        scaled = wl.step_bytes(
            fluid_nodes, fiber_nodes, layout, dtype_bytes=dtype_bytes(precision)
        )
        share = self._fit_for(solver, weak).memory_share
        return (1.0 - share) + share * (scaled / base)

    def precision_speedup(
        self,
        fluid_shape: tuple[int, int, int],
        fiber_shape: tuple[int, int],
        precision: str = "float32",
        solver: str = "openmp",
        layout: str = "global",
        weak: bool = False,
    ) -> float:
        """Modelled speedup of ``precision`` over float64 (>= 1.0)."""
        return 1.0 / self.precision_time_factor(
            fluid_shape, fiber_shape, precision, solver=solver, layout=layout, weak=weak
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def memory_share(self, solver: str = "openmp", weak: bool = False) -> float:
        """Modelled memory-stall share of one-core time for a solver."""
        return self._fit_for(solver, weak).memory_share
