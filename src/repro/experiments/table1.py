"""Experiment Table I: sequential kernel profile.

Reproduces the paper's gprof analysis two ways:

1. **Measured** — run our sequential solver with the
   :class:`~repro.profiling.FlatProfile` timer on a scaled-down version
   of the paper's input and report each kernel's share of total time.
2. **Modelled** — the machine model's per-kernel breakdown for the
   paper-sized input (124 x 64 x 64 grid, 52 x 52 fibers, 2.9 GHz),
   whose absolute scale reproduces the paper's 967 s / 500 steps.

Both are returned next to the paper's published percentages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Simulation
from repro.experiments.workloads import PROFILING_WORKLOAD, scaled_profiling_config
from repro.machine import PerformanceModel, abu_dhabi
from repro.machine.workload import PAPER_TABLE1_PERCENTAGES
from repro.profiling.gprof import FlatProfile
from repro.profiling.report import render_table

__all__ = ["Table1Row", "run_table1", "render_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One kernel's row: paper vs model vs our measurement."""

    kernel: str
    paper_percent: float
    model_percent: float
    measured_percent: float
    measured_seconds: float


def run_table1(scale: int = 4, num_steps: int = 10) -> tuple[list[Table1Row], dict]:
    """Run the Table I experiment.

    Parameters
    ----------
    scale:
        Grid-shrink factor for the real measured run.
    num_steps:
        Measured steps (the percentages stabilize quickly).

    Returns
    -------
    (rows, meta):
        Rows sorted by paper percentage; ``meta`` holds the modelled
        967-second reproduction and the measured configuration.
    """
    # modelled breakdown at paper scale
    model = PerformanceModel(abu_dhabi())
    breakdown = model.sequential_step(
        PROFILING_WORKLOAD.fluid_shape, PROFILING_WORKLOAD.fiber_shape
    )
    model_pct = breakdown.percentages()
    model_total = model.sequential_total_seconds(
        PROFILING_WORKLOAD.fluid_shape,
        PROFILING_WORKLOAD.fiber_shape,
        PROFILING_WORKLOAD.num_steps,
    )

    # measured breakdown at reduced scale
    config = scaled_profiling_config(scale=scale)
    profile = FlatProfile()
    with Simulation(config) as sim:
        sim.solver.kernel_timer = profile
        sim.run(num_steps)
    measured_pct = profile.percentages()

    rows = []
    for kernel, paper in sorted(
        PAPER_TABLE1_PERCENTAGES.items(), key=lambda kv: kv[1], reverse=True
    ):
        rows.append(
            Table1Row(
                kernel=kernel,
                paper_percent=paper,
                model_percent=model_pct.get(kernel, 0.0),
                measured_percent=measured_pct.get(kernel, 0.0),
                measured_seconds=profile.seconds.get(kernel, 0.0),
            )
        )
    meta = {
        "model_total_seconds": model_total,
        "paper_total_seconds": 967.0,
        "measured_fluid_shape": config.fluid_shape,
        "measured_steps": num_steps,
        "measured_total_seconds": profile.total_seconds,
    }
    return rows, meta


def render_table1(rows: list[Table1Row], meta: dict) -> str:
    """Paper-style text rendering of the Table I reproduction."""
    table = render_table(
        ["Kernel", "Paper %", "Model %", "Measured %"],
        [
            [r.kernel, f"{r.paper_percent:.2f}", f"{r.model_percent:.2f}", f"{r.measured_percent:.2f}"]
            for r in rows
        ],
        title=(
            "Table I: sequential LBM-IB kernel profile "
            f"(model total for paper input: {meta['model_total_seconds']:.0f} s, "
            f"paper: {meta['paper_total_seconds']:.0f} s)"
        ),
    )
    footer = (
        f"\nmeasured on {meta['measured_fluid_shape']} grid, "
        f"{meta['measured_steps']} steps, {meta['measured_total_seconds']:.3f} s total "
        "(vectorized NumPy kernels shift shares toward the gather/scatter-bound "
        "fiber kernels relative to the paper's scalar C code)"
    )
    return table + footer
