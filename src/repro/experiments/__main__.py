"""Command-line reproduction report: ``python -m repro.experiments``.

Prints every table and figure of the paper's evaluation section in one
pass (the same drivers the benchmark suite uses), so the whole
reproduction can be eyeballed without pytest.

Options::

    python -m repro.experiments             # everything
    python -m repro.experiments table1 fig8 # a subset
    python -m repro.experiments --list      # available artifact names
"""

from __future__ import annotations

import argparse
import sys


def _table1() -> str:
    from repro.experiments.table1 import render_table1, run_table1

    rows, meta = run_table1(scale=4, num_steps=5)
    return render_table1(rows, meta)


def _table2() -> str:
    from repro.experiments.table2 import render_table2, run_table2

    return render_table2(run_table2())


def _table3() -> str:
    from repro.experiments.table34 import render_table3

    return render_table3()


def _table4() -> str:
    from repro.experiments.table34 import render_table4

    return render_table4()


def _fig5() -> str:
    from repro.experiments.fig5 import render_fig5, run_fig5

    return render_fig5(run_fig5())


def _fig8() -> str:
    from repro.experiments.fig8 import render_fig8, run_fig8

    return render_fig8(run_fig8())


def _fused() -> str:
    from repro.experiments.bench_fused import render_bench_fused, run_bench_fused

    return render_bench_fused(run_bench_fused(scale=4, steps=5, warmup=2))


def _inplace() -> str:
    from repro.experiments.bench_inplace import (
        render_bench_inplace,
        run_bench_inplace,
    )

    return render_bench_inplace(run_bench_inplace(scale=4, steps=5, warmup=2))


def _batch() -> str:
    from repro.experiments.bench_batch import render_bench_batch, run_bench_batch

    return render_bench_batch(run_bench_batch(steps=5, warmup=2, batch_sizes=(1, 4)))


def _precision() -> str:
    from repro.experiments.bench_precision import (
        render_bench_precision,
        run_bench_precision,
    )

    return render_bench_precision(run_bench_precision(scale=4, steps=5, warmup=2))


def _tune() -> str:
    from repro.experiments.bench_tune import render_bench_tune, run_bench_tune

    return render_bench_tune(
        run_bench_tune(scale=4, steps=2, warmup=1, repeats=2, budget_seconds=5.0)
    )


#: Artifact name -> renderer.
ARTIFACTS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig5": _fig5,
    "fig8": _fig8,
    "fused": _fused,
    "inplace": _inplace,
    "batch": _batch,
    "precision": _precision,
    "tune": _tune,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="ARTIFACT",
        help=f"subset to print (default: all of {', '.join(ARTIFACTS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list artifact names and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(ARTIFACTS))
        return 0

    names = args.artifacts or list(ARTIFACTS)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        parser.error(f"unknown artifact(s): {', '.join(unknown)}")

    for i, name in enumerate(names):
        if i:
            print()
        print(ARTIFACTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
