"""Workload definitions of the paper's evaluation, plus scaled variants.

The paper's inputs:

* **Profiling input** (Sections III-D, IV-B): fluid grid 124 x 64 x 64,
  one immersed 2D sheet of 52 x 52 fiber nodes; 500 steps sequential,
  200 steps for the OpenMP scaling runs.
* **Weak-scaling input** (Section VI-B): 128^3 fluid nodes *per core*
  (so the two-core run uses 256 x 128 x 128 and so on), fixed 104 x 104
  fiber nodes.

Running the paper-sized grids through interpreted Python is not
practical, so each workload also provides a ``scaled`` variant that
preserves the shape ratios while shrinking the node counts; the
machine model extrapolates measured behaviour back to paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig, StructureConfig

__all__ = [
    "PaperWorkload",
    "PROFILING_WORKLOAD",
    "WEAK_SCALING_FIBER_SHAPE",
    "WEAK_SCALING_NODES_PER_CORE",
    "weak_scaling_fluid_shape",
    "scaled_profiling_config",
]


@dataclass(frozen=True)
class PaperWorkload:
    """One of the paper's experiment inputs."""

    name: str
    fluid_shape: tuple[int, int, int]
    fiber_shape: tuple[int, int]
    num_steps: int


#: The Table I / Figure 5 input.
PROFILING_WORKLOAD = PaperWorkload(
    name="profiling",
    fluid_shape=(124, 64, 64),
    fiber_shape=(52, 52),
    num_steps=500,
)

#: Figure 8: fiber input fixed at 104 x 104 nodes.
WEAK_SCALING_FIBER_SHAPE: tuple[int, int] = (104, 104)

#: Figure 8: fluid nodes per core.
WEAK_SCALING_NODES_PER_CORE: int = 128**3


def weak_scaling_fluid_shape(num_cores: int) -> tuple[int, int, int]:
    """The paper's grid-growth rule for the weak-scaling experiment.

    1 core: 128^3; doubling cores doubles the grid along one axis in
    turn (x, then y, then z): 2 cores -> 256x128x128, 4 -> 512x128x128
    (as stated in the paper), 8 -> 256x256x256 scaled similarly.
    """
    if num_cores < 1 or num_cores & (num_cores - 1):
        raise ValueError(f"core count must be a power of two, got {num_cores}")
    shape = [128, 128, 128]
    axis = 0
    n = num_cores
    while n > 1:
        shape[axis] *= 2
        axis = (axis + 1) % 3
        n //= 2
    return tuple(shape)


def scaled_profiling_config(
    scale: int = 4,
    solver: str = "sequential",
    num_threads: int = 1,
    cube_size: int = 4,
) -> SimulationConfig:
    """A shrunken version of the profiling workload for real execution.

    ``scale`` divides every grid axis; the fiber sheet shrinks with the
    grid so that the fiber-to-fluid density matches the paper's setup.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    fluid_shape = (max(8, 124 // scale), max(8, 64 // scale), max(8, 64 // scale))
    if solver == "cube":
        fluid_shape = tuple((n // cube_size) * cube_size for n in fluid_shape)
    fibers = max(4, 52 // scale)
    return SimulationConfig(
        fluid_shape=fluid_shape,
        tau=0.8,
        structure=StructureConfig(
            kind="flat_sheet",
            num_fibers=fibers,
            nodes_per_fiber=fibers,
            stretch_coefficient=1.0e-2,
            bend_coefficient=1.0e-4,
        ),
        solver=solver,
        num_threads=num_threads,
        cube_size=cube_size,
    )
