"""Experiment Figure 8: weak scalability, OpenMP vs cube-based, on thog.

Each core owns 128^3 fluid nodes (the grid doubles with the core
count); the fiber input is fixed at 104 x 104 nodes.  The paper
reports the OpenMP execution time growing by +25% (2->4 cores), +36%
(4->8), +22% per doubling (8->32) and +42% (32->64), while the
cube-based implementation grows by only +3% (1->2), +13% per doubling
(2->32) and +18% (32->64); at 64 cores the cube version outperforms
OpenMP by 53%.

The curves come from the machine model's weak-scaling predictor; this
driver reports both solvers' times, per-doubling growth rates (model vs
paper), and the OpenMP/cube ratio per core count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.workloads import (
    WEAK_SCALING_FIBER_SHAPE,
    WEAK_SCALING_NODES_PER_CORE,
    weak_scaling_fluid_shape,
)
from repro.machine import PerformanceModel, thog
from repro.machine.workload import step_bytes
from repro.profiling.report import render_table

__all__ = [
    "Fig8Row",
    "PAPER_FIG8_OPENMP_GROWTH",
    "PAPER_FIG8_CUBE_GROWTH",
    "run_fig8",
    "render_fig8",
]

#: Paper-stated per-doubling growth of OpenMP execution time, keyed by
#: the core count the doubling arrives at.
PAPER_FIG8_OPENMP_GROWTH: dict[int, float] = {
    4: 1.25,
    8: 1.36,
    16: 1.22,
    32: 1.22,
    64: 1.42,
}

#: Paper-stated per-doubling growth of the cube-based implementation.
PAPER_FIG8_CUBE_GROWTH: dict[int, float] = {
    2: 1.03,
    4: 1.13,
    8: 1.13,
    16: 1.13,
    32: 1.13,
    64: 1.18,
}


@dataclass(frozen=True)
class Fig8Row:
    """One core count of the weak-scaling comparison."""

    cores: int
    fluid_shape: tuple[int, int, int]
    openmp_seconds: float
    cube_seconds: float
    openmp_growth: float | None
    cube_growth: float | None
    paper_openmp_growth: float | None
    paper_cube_growth: float | None
    #: First-order estimate of the single-lattice (AA-pattern) solver on
    #: the OpenMP schedule: the fluid step is memory-bound, so its time
    #: scales with bytes moved — ``openmp_seconds`` times the
    #: ``step_bytes`` ratio of the in-place layout (no streaming write
    #: pass, no buffer copy) to the two-lattice global layout.
    inplace_seconds: float = 0.0

    @property
    def openmp_over_cube(self) -> float:
        """How much slower OpenMP is than cube at this core count."""
        return self.openmp_seconds / self.cube_seconds

    @property
    def openmp_over_inplace(self) -> float:
        """Estimated speedup of the in-place lattice over OpenMP."""
        return self.openmp_seconds / self.inplace_seconds


def run_fig8(core_counts: list[int] | None = None) -> list[Fig8Row]:
    """Model the Figure 8 weak-scaling comparison."""
    if core_counts is None:
        core_counts = [1, 2, 4, 8, 16, 32, 64]
    model = PerformanceModel(thog())
    omp = model.weak_scaling(
        core_counts, WEAK_SCALING_NODES_PER_CORE, WEAK_SCALING_FIBER_SHAPE, "openmp"
    )
    cube = model.weak_scaling(
        core_counts, WEAK_SCALING_NODES_PER_CORE, WEAK_SCALING_FIBER_SHAPE, "cube"
    )
    fiber_nodes = WEAK_SCALING_FIBER_SHAPE[0] * WEAK_SCALING_FIBER_SHAPE[1]
    rows: list[Fig8Row] = []
    for i, n in enumerate(core_counts):
        shape = weak_scaling_fluid_shape(n)
        fluid_nodes = shape[0] * shape[1] * shape[2]
        traffic_ratio = step_bytes(fluid_nodes, fiber_nodes, "inplace") / step_bytes(
            fluid_nodes, fiber_nodes, "global"
        )
        rows.append(
            Fig8Row(
                cores=n,
                fluid_shape=shape,
                openmp_seconds=omp[i].seconds,
                cube_seconds=cube[i].seconds,
                inplace_seconds=omp[i].seconds * traffic_ratio,
                openmp_growth=(
                    omp[i].seconds / omp[i - 1].seconds if i else None
                ),
                cube_growth=(cube[i].seconds / cube[i - 1].seconds if i else None),
                paper_openmp_growth=PAPER_FIG8_OPENMP_GROWTH.get(n),
                paper_cube_growth=PAPER_FIG8_CUBE_GROWTH.get(n),
            )
        )
    return rows


def render_fig8(rows: list[Fig8Row]) -> str:
    """Paper-style text rendering of the Figure 8 reproduction."""

    def growth(g: float | None) -> str:
        return "-" if g is None else f"+{100 * (g - 1):.0f}%"

    table = render_table(
        [
            "Cores",
            "Grid",
            "OpenMP s/step",
            "Cube s/step",
            "In-place s/step (est)",
            "OMP growth (model)",
            "OMP growth (paper)",
            "Cube growth (model)",
            "Cube growth (paper)",
            "OMP/Cube",
        ],
        [
            [
                r.cores,
                "x".join(str(d) for d in r.fluid_shape),
                f"{r.openmp_seconds:.2f}",
                f"{r.cube_seconds:.2f}",
                f"{r.inplace_seconds:.2f}",
                growth(r.openmp_growth),
                growth(r.paper_openmp_growth),
                growth(r.cube_growth),
                growth(r.paper_cube_growth),
                f"{r.openmp_over_cube:.2f}x",
            ]
            for r in rows
        ],
        title="Figure 8: weak scalability on thog (model vs paper growth rates)",
    )
    last = rows[-1]
    return table + (
        f"\ncube-based outperforms OpenMP by "
        f"{100 * (last.openmp_over_cube - 1):.0f}% at {last.cores} cores "
        "(paper: 53%)\n"
        "in-place AA lattice (memory-traffic estimate) beats OpenMP by "
        f"{100 * (last.openmp_over_inplace - 1):.0f}% at {last.cores} cores"
    )
