"""Experiment Figure 5: OpenMP strong scaling on the 32-core machine.

The paper runs the profiling input (124 x 64 x 64 grid, 52 x 52 fibers,
200 steps) on 1..32 cores and plots speedup against the ideal line;
parallel efficiency is 75% at 8 cores, 56% at 16, and 38% at 32.

Here the speedup curve comes from the machine model (the hardware
substitution documented in DESIGN.md); the model was calibrated against
exactly these three efficiency anchors, and the experiment reports
model vs paper per core count, plus the ideal line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.workloads import PROFILING_WORKLOAD
from repro.machine import PerformanceModel, abu_dhabi
from repro.profiling.report import render_table

__all__ = ["Fig5Row", "PAPER_FIG5_EFFICIENCY", "run_fig5", "render_fig5"]

#: The efficiencies the paper states in the text (Figure 5 narrative).
PAPER_FIG5_EFFICIENCY: dict[int, float] = {1: 1.0, 8: 0.75, 16: 0.56, 32: 0.38}


@dataclass(frozen=True)
class Fig5Row:
    """One core count of the strong-scaling curve."""

    cores: int
    ideal_speedup: float
    model_speedup: float
    model_efficiency: float
    paper_efficiency: float | None
    model_seconds_per_step: float


def run_fig5(core_counts: list[int] | None = None) -> list[Fig5Row]:
    """Model the Figure 5 speedup curve."""
    if core_counts is None:
        core_counts = [1, 2, 4, 8, 16, 32]
    model = PerformanceModel(abu_dhabi())
    points = model.strong_scaling(
        core_counts,
        PROFILING_WORKLOAD.fluid_shape,
        PROFILING_WORKLOAD.fiber_shape,
        solver="openmp",
    )
    rows = []
    for p in points:
        rows.append(
            Fig5Row(
                cores=p.cores,
                ideal_speedup=float(p.cores),
                model_speedup=p.speedup,
                model_efficiency=p.efficiency,
                paper_efficiency=PAPER_FIG5_EFFICIENCY.get(p.cores),
                model_seconds_per_step=p.seconds,
            )
        )
    return rows


def render_fig5(rows: list[Fig5Row]) -> str:
    """Paper-style text rendering of the Figure 5 reproduction."""
    return render_table(
        ["Cores", "Ideal speedup", "Model speedup", "Model efficiency", "Paper efficiency", "Model s/step"],
        [
            [
                r.cores,
                f"{r.ideal_speedup:.0f}",
                f"{r.model_speedup:.2f}",
                f"{100 * r.model_efficiency:.1f}%",
                "-" if r.paper_efficiency is None else f"{100 * r.paper_efficiency:.0f}%",
                f"{r.model_seconds_per_step:.3f}",
            ]
            for r in rows
        ],
        title="Figure 5: OpenMP LBM-IB strong scaling (32-core AMD, model vs paper)",
    )
