"""Autotuner benchmark: auto-tuned vs hand-picked configurations.

Measures every candidate of the tuning space for the Table-I profiling
workload (the exhaustive "hand-picked" sweep a careful human would
run), then lets the :class:`~repro.tuning.autotuner.Autotuner` choose
with its budgeted top-N probe, and records how close the automatic
decision lands:

* ``auto_vs_best`` — auto-tuned step time over the best exhaustively
  measured candidate (the acceptance bar is <= 1.05);
* ``worst_vs_auto`` — worst candidate over the auto-tuned choice (the
  bar is >= 1.3: tuning must matter);
* per-candidate prediction-vs-measured error, raw and after the
  ``model_scale`` recalibration the probe round derives.

``make bench-tune`` writes ``BENCH_tune.json``; ``python -m
repro.experiments tune`` prints the table; the CI smoke job runs a
tiny grid with a few-second probe budget and asserts the error summary
finite.
"""

from __future__ import annotations

import math
import statistics

from repro.experiments.workloads import scaled_profiling_config
from repro.tuning.autotuner import Autotuner
from repro.tuning.cache import DecisionCache
from repro.tuning.predict import predict_ranking
from repro.tuning.probe import probe_candidates
from repro.tuning.space import TuningWorkload, candidate_space

__all__ = ["autotune_addendum", "render_bench_tune", "run_bench_tune"]


def autotune_addendum(
    scale: int = 2,
    steps: int = 3,
    warmup: int = 1,
    repeats: int = 2,
    batch_size: int = 1,
    precision: str = "float64",
    budget_seconds: float | None = 10.0,
    fluid_shape: tuple[int, int, int] | None = None,
) -> str:
    """The ``--autotune`` block shared by every ``make bench-*`` CLI.

    Runs the full autotuner loop (predict, budgeted probe, decide) for
    the bench's workload and renders the ranking next to the bench's
    own hand-picked numbers.  Uses an in-memory decision cache so a
    bench run never pollutes the persistent one.
    """
    from dataclasses import replace

    from repro.config import StructureConfig

    base = scaled_profiling_config(scale=scale)
    if fluid_shape is not None:
        base = replace(
            base,
            fluid_shape=fluid_shape,
            structure=StructureConfig(kind="none"),
        )
    base = replace(base, precision=precision)
    tuner = Autotuner(
        cache=DecisionCache(path=None),
        probe_steps=steps,
        probe_warmup=warmup,
        probe_repeats=repeats,
        budget_seconds=budget_seconds,
    )
    report = tuner.tune(base, batch_size=batch_size)
    decision = report.decision
    lines = [
        "autotune (model-guided ranking, budgeted top-N probe):",
        f"  workload {report.workload.key()}",
        f"  {'candidate':<32} {'pred ms':>9} {'meas ms':>9} {'err':>7}",
    ]
    for label, pred_ms, meas_ms, error, best in report.as_rows():
        meas = f"{meas_ms:>9.4f}" if meas_ms != "" else f"{'-':>9}"
        err = f"{error:>+7.2f}" if error != "" else f"{'-':>7}"
        mark = "  <- tuned" if best else ""
        lines.append(f"  {label:<32} {pred_ms:>9.4f} {meas} {err}{mark}")
    lines.append(
        f"  tuned: {decision.candidate.label()} "
        f"({decision.measured_seconds * 1e3:.4f} ms/step, "
        f"model_scale {decision.model_scale:.3g})"
    )
    return "\n".join(lines)


def run_bench_tune(
    scale: int = 2,
    steps: int = 3,
    warmup: int = 1,
    repeats: int = 3,
    batch_size: int = 4,
    precision: str = "float32",
    budget_seconds: float | None = None,
    cache_path: str | None = None,
) -> dict:
    """The complete ``BENCH_tune.json`` record.

    ``scale=2`` is the Table-I profiling grid (62 x 32 x 32);
    ``precision="float32"`` requests the float32 contract so the
    precision axis (float32 vs mixed) participates in the search.
    The exhaustive sweep shares the probe stage's interleaved min-of-R
    discipline, so the "hand-picked" numbers and the tuner's probes
    are measured identically.
    """
    from dataclasses import replace

    base = replace(scaled_profiling_config(scale=scale), precision=precision)
    workload = TuningWorkload.from_config(base, batch_size=batch_size)
    candidates = candidate_space(workload)
    predictions = predict_ranking(workload, candidates)
    predicted = {p.candidate.label(): p.seconds for p in predictions}

    # Exhaustive hand-picked sweep: measure *every* candidate.
    sweep = probe_candidates(
        base, candidates, steps=steps, warmup_steps=warmup, repeats=repeats
    )
    measured = {r.candidate.label(): r.seconds for r in sweep}

    # The automatic path: fresh cache, budgeted top-N probe.
    tuner = Autotuner(
        cache=DecisionCache(path=cache_path),
        probe_steps=steps,
        probe_warmup=warmup,
        probe_repeats=repeats,
        budget_seconds=budget_seconds,
    )
    report = tuner.tune(base, batch_size=batch_size, force=True)
    decision = report.decision
    auto_label = decision.candidate.label()

    # Judge the auto decision on the exhaustive sweep's own numbers so
    # the comparison is apples-to-apples (same rounds, same machine
    # moment); fall back to the tuner's probe if the sweep skipped it.
    auto_seconds = measured.get(auto_label, decision.measured_seconds)
    best_label, best_seconds = min(measured.items(), key=lambda kv: kv[1])
    worst_label, worst_seconds = max(measured.items(), key=lambda kv: kv[1])

    scale_factor = decision.model_scale
    rows = []
    errors = []
    for label in sorted(measured, key=measured.get):
        pred = predicted[label]
        meas = measured[label]
        error = (pred - meas) / meas
        recal = (pred * scale_factor - meas) / meas
        errors.append(error)
        rows.append(
            {
                "label": label,
                "predicted_seconds": pred,
                "measured_seconds": meas,
                "prediction_error": error,
                "recalibrated_error": recal,
                "auto": label == auto_label,
            }
        )

    return {
        "workload": {
            "scale": scale,
            "fluid_shape": list(base.fluid_shape),
            "key": workload.key(),
            "batch_size": batch_size,
            "precision": precision,
            "steps": steps,
            "warmup": warmup,
            "repeats": repeats,
        },
        "candidates": rows,
        "decision": decision.to_dict(),
        "auto": {"label": auto_label, "seconds": auto_seconds},
        "best": {"label": best_label, "seconds": best_seconds},
        "worst": {"label": worst_label, "seconds": worst_seconds},
        "auto_vs_best": auto_seconds / best_seconds,
        "worst_vs_auto": worst_seconds / auto_seconds,
        "model_scale": scale_factor,
        "prediction_error_summary": {
            "median_abs": statistics.median(abs(e) for e in errors),
            "max_abs": max(abs(e) for e in errors),
            "finite": all(math.isfinite(e) for e in errors),
        },
    }


def render_bench_tune(result: dict) -> str:
    """Text table of a :func:`run_bench_tune` record."""
    w = result["workload"]
    shape = "x".join(str(n) for n in w["fluid_shape"])
    lines = [
        "Workload-adaptive autotuner (model-guided search + measured probes)",
        f"  workload: {w['key']} (grid {shape}, batch {w['batch_size']}, "
        f"{w['steps']} steps x {w['repeats']} interleaved rounds)",
        "",
        f"  {'candidate':<32} {'pred ms':>9} {'meas ms':>9} {'err':>7} "
        f"{'recal':>7}  pick",
    ]
    for row in result["candidates"]:
        pick = "auto" if row["auto"] else ""
        if row["label"] == result["best"]["label"]:
            pick = (pick + " best").strip()
        lines.append(
            f"  {row['label']:<32} {row['predicted_seconds'] * 1e3:>9.4f} "
            f"{row['measured_seconds'] * 1e3:>9.4f} "
            f"{row['prediction_error']:>+7.2f} "
            f"{row['recalibrated_error']:>+7.2f}  {pick}"
        )
    summary = result["prediction_error_summary"]
    lines += [
        "",
        f"  auto decision : {result['auto']['label']} "
        f"({result['auto']['seconds'] * 1e3:.4f} ms/step)",
        f"  auto_vs_best  : {result['auto_vs_best']:.3f}x "
        "(acceptance <= 1.05)",
        f"  worst_vs_auto : {result['worst_vs_auto']:.3f}x "
        "(acceptance >= 1.3)",
        f"  model_scale   : {result['model_scale']:.3g} "
        f"(median |err| {summary['median_abs']:.2f}, "
        f"max |err| {summary['max_abs']:.2f})",
    ]
    return "\n".join(lines)
