"""Memory-aware fusion benchmark: the fused hot path vs the sequential
reference.

Not one of the paper's artifacts — this measures the library's own
``variant="fused"`` solver (fused collide-and-stream, two-lattice swap,
zero-allocation arena, bincount scatter, shared delta stencils) against
the kernel-by-kernel sequential program on the Table-I profiling
workload.  Three measurements:

* whole-step and per-kernel wall time for both variants;
* tracemalloc allocation behaviour of a steady-state step, measured
  twice: on the FSI workload (where the IB coupling inherently
  allocates — marker stencils change every step and ``bincount``
  allocates its output) and fluid-only, where the fused path's
  high-water mark stays below a single scalar field — i.e. the fluid
  hot path never allocates an array;
* the kernel-4 scatter primitive in isolation: ``np.bincount`` over
  raveled stencil indices vs the ``np.add.at`` it replaced, including
  the bit-equality check that makes the swap safe.

``python -m repro.experiments fused`` prints the table;
``make bench-fused`` additionally writes ``BENCH_fused.json``.
"""

from __future__ import annotations

import time
import tracemalloc
from collections import defaultdict
from dataclasses import replace

import numpy as np

from repro.api import Simulation
from repro.config import StructureConfig
from repro.experiments.workloads import scaled_profiling_config

__all__ = ["run_bench_fused", "render_bench_fused"]


def _measure_variant(
    solver: str,
    scale: int,
    steps: int,
    warmup: int,
    fluid_only: bool = False,
    precision: str = "float64",
) -> dict:
    """Wall time, per-kernel split and allocation profile of one variant."""
    config = scaled_profiling_config(scale=scale, solver=solver)
    if precision != "float64":
        config = replace(config, precision=precision)
    if fluid_only:
        config = replace(config, structure=StructureConfig(kind="none"))
    sim = Simulation(config)
    per_kernel: dict[str, float] = defaultdict(float)
    try:
        sim.run(warmup)

        sim.solver.kernel_timer = lambda name, sec: per_kernel.__setitem__(
            name, per_kernel[name] + sec
        )
        start = time.perf_counter()
        sim.run(steps)
        wall = time.perf_counter() - start

        # Separate allocation pass so tracemalloc's overhead cannot
        # pollute the timing above.
        sim.solver.kernel_timer = None
        tracemalloc.start()
        tracemalloc.reset_peak()
        sim.run(steps)
        retained, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    finally:
        sim.close()

    from repro.core.backend import dtype_bytes

    nx, ny, nz = config.fluid_shape
    return {
        "solver": solver,
        "fluid_only": fluid_only,
        "precision": config.precision,
        "fluid_shape": list(config.fluid_shape),
        "step_seconds": wall / steps,
        "per_kernel_seconds": {
            name: total / steps
            for name, total in sorted(per_kernel.items(), key=lambda kv: -kv[1])
        },
        "alloc_peak_bytes": int(peak),
        "alloc_retained_bytes": int(retained),
        "scalar_field_bytes": nx * ny * nz * dtype_bytes(config.precision),
    }


def _measure_scatter(scale: int, repeats: int) -> dict:
    """``np.add.at`` vs the bincount scatter on the workload's stencil.

    Both implementations are forced explicitly (``method=``) so the
    size-based dispatch of :func:`~repro.core.ib.spreading.scatter_method`
    cannot make the two timings measure the same code; the dispatcher's
    pick for this stencil is reported as ``chosen_method``.
    """
    from repro.core.ib.spreading import (
        flatten_stencil,
        scatter_flat,
        scatter_method,
    )

    config = scaled_profiling_config(scale=scale)
    structure = config.build_structure()
    delta = config.build_delta()
    sheet = structure.sheets[0]
    grid_shape = config.fluid_shape

    positions = sheet.positions[sheet.active]
    indices, weights = delta.stencil(positions, grid_shape=grid_shape)
    flat_idx, flat_w = flatten_stencil(indices, weights, grid_shape)
    values = np.random.default_rng(0).standard_normal((positions.shape[0], 3))
    num_nodes = int(np.prod(grid_shape))

    from repro.core.backend import backend_for

    backend = backend_for(config.precision)
    target_a = backend.zeros((3,) + grid_shape)
    target_b = np.zeros_like(target_a)
    scatter_flat(flat_idx, flat_w, values, target_a, method="add_at")
    scatter_flat(flat_idx, flat_w, values, target_b, method="bincount")
    max_delta = float(np.abs(target_a - target_b).max())

    start = time.perf_counter()
    for _ in range(repeats):
        scatter_flat(flat_idx, flat_w, values, target_a, method="add_at")
    add_at_seconds = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        scatter_flat(flat_idx, flat_w, values, target_b, method="bincount")
    bincount_seconds = (time.perf_counter() - start) / repeats

    return {
        "stencil_points": int(flat_idx.shape[0]),
        "stencil_support": int(flat_idx.shape[1]),
        "add_at_seconds": add_at_seconds,
        "bincount_seconds": bincount_seconds,
        "speedup": add_at_seconds / bincount_seconds,
        "max_abs_delta": max_delta,
        "chosen_method": scatter_method(
            num_nodes, flat_idx.size, target_a.dtype.itemsize
        ),
    }


def run_bench_fused(
    scale: int = 2, steps: int = 10, warmup: int = 3, scatter_repeats: int = 5
) -> dict:
    """The complete ``BENCH_fused.json`` record.

    ``scale=2`` is the Table-I profiling grid (62 x 32 x 32); CI smoke
    runs pass a larger ``scale`` for a tiny grid.
    """
    sequential = _measure_variant("sequential", scale, steps, warmup)
    fused = _measure_variant("fused", scale, steps, warmup)
    return {
        "workload": {
            "scale": scale,
            "fluid_shape": sequential["fluid_shape"],
            "steps": steps,
            "warmup": warmup,
        },
        "sequential": sequential,
        "fused": fused,
        "whole_step_speedup": sequential["step_seconds"] / fused["step_seconds"],
        # Same grid without the immersed sheet: isolates the fluid hot
        # path, whose fused variant allocates nothing at steady state.
        # (With markers, fresh stencil arrays per step are inherent —
        # the node positions move.)
        "fluid_only": {
            "sequential": _measure_variant(
                "sequential", scale, steps, warmup, fluid_only=True
            ),
            "fused": _measure_variant("fused", scale, steps, warmup, fluid_only=True),
        },
        "scatter": _measure_scatter(scale, scatter_repeats),
    }


def render_bench_fused(result: dict) -> str:
    """Text table of a :func:`run_bench_fused` record."""
    seq, fus = result["sequential"], result["fused"]
    shape = "x".join(str(n) for n in result["workload"]["fluid_shape"])
    lines = [
        "Memory-aware fused kernels (variant='fused') vs sequential",
        f"  workload: Table-I profile, grid {shape}, "
        f"{result['workload']['steps']} timed steps",
        "",
        f"  {'variant':<12} {'ms/step':>9} {'alloc peak':>12} {'retained':>10}",
    ]
    for rec in (seq, fus):
        lines.append(
            f"  {rec['solver']:<12} {rec['step_seconds'] * 1e3:>9.2f} "
            f"{rec['alloc_peak_bytes']:>10d} B {rec['alloc_retained_bytes']:>8d} B"
        )
    lines.append(f"  whole-step speedup: {result['whole_step_speedup']:.2f}x")
    lines.append("")
    lines.append(
        "  fluid-only allocation profile (no markers; isolates the fluid "
        "hot path):"
    )
    for rec in (result["fluid_only"]["sequential"], result["fluid_only"]["fused"]):
        lines.append(
            f"  {rec['solver']:<12} {rec['step_seconds'] * 1e3:>9.2f} "
            f"{rec['alloc_peak_bytes']:>10d} B {rec['alloc_retained_bytes']:>8d} B"
        )
    lines.append(
        f"  (one scalar field = {fus['scalar_field_bytes']} B; a fused "
        "alloc peak below that means zero array allocations per step)"
    )
    lines.append("")
    lines.append("  per-kernel ms/step:")
    names = list(seq["per_kernel_seconds"]) + [
        n for n in fus["per_kernel_seconds"] if n not in seq["per_kernel_seconds"]
    ]
    for name in names:
        a = seq["per_kernel_seconds"].get(name)
        b = fus["per_kernel_seconds"].get(name)
        fmt = lambda v: f"{v * 1e3:8.3f}" if v is not None else "       -"
        lines.append(f"    {name:<38} seq {fmt(a)}   fused {fmt(b)}")
    sc = result["scatter"]
    lines.append("")
    lines.append(
        f"  kernel-4 scatter ({sc['stencil_points']} nodes x "
        f"{sc['stencil_support']} stencil): np.add.at "
        f"{sc['add_at_seconds'] * 1e3:.3f} ms -> bincount "
        f"{sc['bincount_seconds'] * 1e3:.3f} ms "
        f"({sc['speedup']:.1f}x, max |delta| = {sc['max_abs_delta']:.1e}, "
        f"dispatch picks {sc['chosen_method']})"
    )
    return "\n".join(lines)
