"""Batched-execution benchmark: one vectorized batch vs a solo loop.

Not one of the paper's artifacts — this measures the library's own
``variant="batched"`` subsystem (:mod:`repro.batch`): B independent
simulations stacked along a leading batch axis so every fluid kernel is
one numpy call for the whole batch, plus the continuous-batching
scheduler on top.  Three measurements:

* **fluid-only throughput** for each batch size B: a batch of B
  small-grid simulations advanced together vs the baseline of looping
  B ``variant="fused"`` simulations round-robin — same initial states,
  same step count, and a final bit-equality check (``max_abs_delta``
  must be exactly 0.0: batching is a pure throughput transformation);
* **FSI throughput** at the largest B, where the per-slot IB coupling
  bounds the achievable speedup (Amdahl: only the fluid half batches);
* the **scheduler** end-to-end: ``2 * B`` submitted jobs through a
  ``max_batch=B`` :class:`~repro.batch.BatchScheduler`, exercising
  continuous slot refill at full occupancy.

``python -m repro.experiments batch`` prints the table;
``make bench-batch`` additionally writes ``BENCH_batch.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import Simulation
from repro.batch import BatchedFluidGrid, BatchedLBMIBSolver, BatchScheduler
from repro.config import SimulationConfig, StructureConfig
from repro.verify.oracle import _seeded_initial_fluid

__all__ = ["run_bench_batch", "render_bench_batch"]

#: Relaxation time of every benchmark config (the profiling workload's).
_TAU = 0.8


def _config(
    shape: tuple[int, int, int], fibers: int = 0, solver: str = "fused"
) -> SimulationConfig:
    """A small-grid benchmark config, fluid-only unless ``fibers`` > 0."""
    structure = (
        StructureConfig(
            kind="flat_sheet",
            num_fibers=fibers,
            nodes_per_fiber=fibers,
            stretch_coefficient=1.0e-2,
            bend_coefficient=1.0e-4,
        )
        if fibers
        else StructureConfig(kind="none")
    )
    return SimulationConfig(
        fluid_shape=shape, tau=_TAU, structure=structure, solver=solver
    )


def _measure_batch(
    config: SimulationConfig, batch: int, steps: int, warmup: int
) -> dict:
    """Time B solo fused runs (round-robin) vs one B-slot batched run.

    Both sides start from the same per-slot seeded initial states and
    advance ``warmup + steps`` steps; only the last ``steps`` are timed.
    The returned ``max_abs_delta`` is the largest element difference
    between any batched slot and its solo run at the end — exactly 0.0,
    because the batched kernels are bit-identical to the solo ones.
    """
    fluids = [_seeded_initial_fluid(config, seed) for seed in range(batch)]

    # --- baseline: loop B independent fused simulations ---
    sims = [
        Simulation(
            config,
            initial_fluid=fluids[slot].copy(),
            initial_structure=config.build_structure(),
        )
        for slot in range(batch)
    ]
    try:
        for sim in sims:
            sim.run(warmup)
        start = time.perf_counter()
        for _ in range(steps):
            for sim in sims:
                sim.run(1)
        solo_wall = time.perf_counter() - start
        solo_density = [sim.fluid.density.copy() for sim in sims]
    finally:
        for sim in sims:
            sim.close()

    # --- batched: one vectorized solver over B slots ---
    grid = BatchedFluidGrid(
        config.fluid_shape,
        batch,
        tau=config.effective_tau,
        collision_operator=config.collision_operator,
    )
    solver = BatchedLBMIBSolver(
        grid,
        delta=config.build_delta(),
        boundaries=config.build_boundaries(),
        dt=config.dt,
        external_force=config.external_force,
    )
    for slot in range(batch):
        solver.load_slot(slot, fluids[slot], config.build_structure())
    solver.run(warmup)
    start = time.perf_counter()
    solver.run(steps)
    batched_wall = time.perf_counter() - start

    max_delta = max(
        float(np.abs(grid.density[slot] - solo_density[slot]).max())
        for slot in range(batch)
    )
    sim_steps = batch * steps
    return {
        "solo_step_seconds": solo_wall / sim_steps,
        "batched_step_seconds": batched_wall / sim_steps,
        "speedup": solo_wall / batched_wall,
        "solo_sim_steps_per_second": sim_steps / solo_wall,
        "batched_sim_steps_per_second": sim_steps / batched_wall,
        "solo_sims_per_second": batch / solo_wall,
        "batched_sims_per_second": batch / batched_wall,
        "max_abs_delta": max_delta,
    }


def _measure_scheduler(
    config: SimulationConfig, batch: int, steps: int
) -> dict:
    """End-to-end continuous batching: 2B jobs through max_batch=B.

    Half the jobs start queued, so every completion triggers a slot
    refill — the batch runs at full occupancy until the queue drains.
    """
    scheduler = BatchScheduler(max_batch=batch, check_finite_every=0)
    jobs = 2 * batch
    for seed in range(jobs):
        scheduler.submit(
            config,
            num_steps=steps,
            initial_fluid=_seeded_initial_fluid(config, seed),
        )
    start = time.perf_counter()
    results = scheduler.run()
    wall = time.perf_counter() - start
    sim_steps = sum(r.steps_completed for r in results.values())
    completed = sum(1 for r in results.values() if r.status == "completed")
    return {
        "wall_seconds": wall,
        "sim_steps_per_second": sim_steps / wall,
        "sims_per_second": jobs / wall,
        "jobs": jobs,
        "completed": completed,
    }


def run_bench_batch(
    shape: tuple[int, int, int] = (8, 8, 8),
    steps: int = 20,
    warmup: int = 3,
    batch_sizes: tuple[int, ...] = (1, 4, 16),
    fsi_fibers: int = 4,
) -> dict:
    """The complete ``BENCH_batch.json`` record.

    The headline number is the fluid-only ``speedup`` at the largest
    batch size: aggregate simulation steps per second of one batched
    sweep vs looping the fused solver over the same B simulations.
    """
    fluid_config = _config(shape)
    fsi_config = _config(shape, fibers=fsi_fibers)
    b_max = max(batch_sizes)

    fluid_only = {
        f"b{b}": _measure_batch(fluid_config, b, steps, warmup)
        for b in batch_sizes
    }
    fsi = {f"b{b_max}": _measure_batch(fsi_config, b_max, steps, warmup)}
    scheduler = _measure_scheduler(fluid_config, b_max, steps)

    return {
        "workload": {
            "fluid_shape": list(shape),
            "steps": steps,
            "warmup": warmup,
            "batch_sizes": list(batch_sizes),
            "fsi_fibers": fsi_fibers,
            "scheduler_jobs": scheduler["jobs"],
        },
        "fluid_only": fluid_only,
        "fsi": fsi,
        "scheduler": scheduler,
        "headline_speedup": fluid_only[f"b{b_max}"]["speedup"],
    }


def render_bench_batch(result: dict) -> str:
    """Text table of a :func:`run_bench_batch` record."""
    wl = result["workload"]
    shape = "x".join(str(n) for n in wl["fluid_shape"])
    lines = [
        "Batched execution (variant='batched') vs looping the fused solver",
        f"  workload: fluid-only grid {shape}, {wl['steps']} timed steps "
        f"per simulation",
        "",
        f"  {'B':>3} {'solo ms/step':>13} {'batched ms/step':>16} "
        f"{'speedup':>8} {'sims/s':>8}",
    ]
    for b in wl["batch_sizes"]:
        rec = result["fluid_only"][f"b{b}"]
        lines.append(
            f"  {b:>3} {rec['solo_step_seconds'] * 1e3:>13.3f} "
            f"{rec['batched_step_seconds'] * 1e3:>16.3f} "
            f"{rec['speedup']:>7.2f}x {rec['batched_sims_per_second']:>8.2f}"
        )
    b_max = max(wl["batch_sizes"])
    fsi = result["fsi"][f"b{b_max}"]
    lines.append("")
    lines.append(
        f"  FSI (flat sheet, {wl['fsi_fibers']}x{wl['fsi_fibers']} nodes) "
        f"at B={b_max}: {fsi['speedup']:.2f}x "
        f"(per-slot IB coupling bounds the batchable fraction)"
    )
    sched = result["scheduler"]
    lines.append(
        f"  scheduler: {sched['jobs']} jobs through max_batch={b_max} with "
        f"continuous refill -> {sched['sim_steps_per_second']:.0f} "
        f"sim-steps/s, {sched['sims_per_second']:.2f} sims/s"
    )
    lines.append(
        f"  bit-equality: max |batched - solo| = "
        f"{result['fluid_only'][f'b{b_max}']['max_abs_delta']:.1e} "
        "(every slot matches its solo run exactly)"
    )
    lines.append(f"  headline speedup (B={b_max}): "
                 f"{result['headline_speedup']:.2f}x")
    return "\n".join(lines)
