"""In-place AA-pattern benchmark: the single-lattice solver vs fused.

Not one of the paper's artifacts — this measures the library's own
``variant="inplace"`` solver (single-lattice AA-pattern streaming: even
steps collide in place with an opposite-direction register swap, odd
steps pull-swap their streaming reads, no ``df_new`` buffer and no copy
kernel) against the two-lattice fused hot path it derives from, on the
Table-I profiling workload.  Three measurements:

* whole-step and per-kernel wall time for both variants;
* tracemalloc allocation behaviour of a steady-state step (fluid-only:
  the in-place path must match the fused path's zero-array-allocation
  property);
* the **lattice memory footprint** — the bytes held by distribution
  buffers, which is the quantity the AA-pattern exists to halve: the
  fused variant keeps ``df`` + ``df_new`` (two lattices), the in-place
  variant keeps one.

``python -m repro.experiments inplace`` prints the table;
``make bench-inplace`` additionally writes ``BENCH_inplace.json``.
"""

from __future__ import annotations

from repro.core.lbm.fields import FluidGrid
from repro.experiments.bench_fused import _measure_variant
from repro.experiments.workloads import scaled_profiling_config

__all__ = ["run_bench_inplace", "render_bench_inplace"]


def _lattice_bytes(solver: str, scale: int) -> int:
    """Bytes held by the distribution buffers of one variant's grid."""
    config = scaled_profiling_config(scale=scale, solver=solver)
    fluid = FluidGrid(
        config.fluid_shape,
        tau=config.effective_tau,
        collision_operator=config.collision_operator,
        single_lattice=solver == "inplace",
    )
    total = fluid.df.nbytes
    if fluid.df_new is not None:
        total += fluid.df_new.nbytes
    return total


def run_bench_inplace(scale: int = 2, steps: int = 10, warmup: int = 3) -> dict:
    """The complete ``BENCH_inplace.json`` record.

    ``scale=2`` is the Table-I profiling grid (62 x 32 x 32); CI smoke
    runs pass a larger ``scale`` for a tiny grid.
    """
    fused = _measure_variant("fused", scale, steps, warmup)
    inplace = _measure_variant("inplace", scale, steps, warmup)
    fused_lattice = _lattice_bytes("fused", scale)
    inplace_lattice = _lattice_bytes("inplace", scale)
    return {
        "workload": {
            "scale": scale,
            "fluid_shape": fused["fluid_shape"],
            "steps": steps,
            "warmup": warmup,
        },
        "fused": fused,
        "inplace": inplace,
        "whole_step_speedup": fused["step_seconds"] / inplace["step_seconds"],
        "fused_lattice_bytes": fused_lattice,
        "inplace_lattice_bytes": inplace_lattice,
        # The headline: distribution-buffer footprint of the two-lattice
        # layout over the single lattice.  Structurally 2.0 — gated at
        # >= 1.8 so any reintroduced shadow buffer fails loudly.
        "lattice_peak_ratio": fused_lattice / inplace_lattice,
        # Same grid without the immersed sheet: isolates the fluid hot
        # path, whose in-place variant must allocate nothing at steady
        # state (like the fused path it replaces).
        "fluid_only": {
            "fused": _measure_variant("fused", scale, steps, warmup, fluid_only=True),
            "inplace": _measure_variant(
                "inplace", scale, steps, warmup, fluid_only=True
            ),
        },
    }


def render_bench_inplace(result: dict) -> str:
    """Text table of a :func:`run_bench_inplace` record."""
    fus, inp = result["fused"], result["inplace"]
    shape = "x".join(str(n) for n in result["workload"]["fluid_shape"])
    lines = [
        "Single-lattice AA-pattern (variant='inplace') vs fused",
        f"  workload: Table-I profile, grid {shape}, "
        f"{result['workload']['steps']} timed steps",
        "",
        f"  {'variant':<12} {'ms/step':>9} {'alloc peak':>12} {'lattice':>12}",
    ]
    for rec, lattice in (
        (fus, result["fused_lattice_bytes"]),
        (inp, result["inplace_lattice_bytes"]),
    ):
        lines.append(
            f"  {rec['solver']:<12} {rec['step_seconds'] * 1e3:>9.2f} "
            f"{rec['alloc_peak_bytes']:>10d} B {lattice:>10d} B"
        )
    lines.append(
        f"  lattice footprint ratio (fused/inplace): "
        f"{result['lattice_peak_ratio']:.2f}x (two lattices -> one)"
    )
    lines.append(
        f"  whole-step speedup (fused/inplace): "
        f"{result['whole_step_speedup']:.2f}x"
    )
    lines.append("")
    lines.append(
        "  fluid-only allocation profile (no markers; isolates the fluid "
        "hot path):"
    )
    for rec in (result["fluid_only"]["fused"], result["fluid_only"]["inplace"]):
        lines.append(
            f"  {rec['solver']:<12} {rec['step_seconds'] * 1e3:>9.2f} "
            f"{rec['alloc_peak_bytes']:>10d} B"
        )
    lines.append(
        f"  (one scalar field = {inp['scalar_field_bytes']} B; an alloc "
        "peak below that means zero array allocations per step)"
    )
    lines.append("")
    lines.append("  per-kernel ms/step:")
    names = list(fus["per_kernel_seconds"]) + [
        n for n in inp["per_kernel_seconds"] if n not in fus["per_kernel_seconds"]
    ]
    for name in names:
        a = fus["per_kernel_seconds"].get(name)
        b = inp["per_kernel_seconds"].get(name)
        fmt = lambda v: f"{v * 1e3:8.3f}" if v is not None else "       -"
        lines.append(f"    {name:<38} fused {fmt(a)}   inplace {fmt(b)}")
    return "\n".join(lines)
