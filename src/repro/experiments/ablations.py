"""Ablation studies of the cube-based design choices.

DESIGN.md calls out the knobs the paper's Section V introduces; each
gets a measured sweep on a reduced input (real wall time of our
implementation, single machine) so their *relative* effects are
observable:

* ``cube_size_sweep`` — cube edge ``k`` (working-set size vs per-cube
  overhead);
* ``distribution_sweep`` — block / cyclic / block-cyclic ``cube2thread``
  against the lock-contention and imbalance counters;
* ``lock_overhead`` — owner locks on vs off (the writes are
  element-disjoint, so the numerics stay identical);
* ``barrier_schedule`` — the 3-barrier schedule's synchronization cost
  from the instrumented barriers;
* ``delta_kernel_sweep`` — 2-/3-/4-point delta support (influential
  domain 8 vs 27 vs 64 nodes) against spreading/interpolation cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.api import Simulation
from repro.config import SimulationConfig, StructureConfig
from repro.profiling.report import render_table

__all__ = [
    "AblationResult",
    "cube_size_sweep",
    "distribution_sweep",
    "lock_overhead",
    "delta_kernel_sweep",
    "render_results",
]


@dataclass(frozen=True)
class AblationResult:
    """One ablation configuration's outcome."""

    label: str
    seconds: float
    extra: dict[str, float]


def _base_config(**overrides) -> SimulationConfig:
    defaults = dict(
        fluid_shape=(16, 16, 16),
        tau=0.8,
        structure=StructureConfig(
            kind="flat_sheet", num_fibers=8, nodes_per_fiber=8,
            stretch_coefficient=1e-2, bend_coefficient=1e-4,
        ),
        solver="cube",
        num_threads=2,
        cube_size=4,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _run(config: SimulationConfig, steps: int) -> tuple[float, Simulation]:
    sim = Simulation(config)
    try:
        start = time.perf_counter()
        sim.run(steps)
        elapsed = time.perf_counter() - start
        return elapsed, sim
    finally:
        sim.close()


def cube_size_sweep(
    cube_sizes: tuple[int, ...] = (2, 4, 8), steps: int = 4
) -> list[AblationResult]:
    """Wall time vs cube edge ``k`` (per-cube working set vs overhead)."""
    results = []
    for k in cube_sizes:
        config = _base_config(cube_size=k)
        elapsed, sim = _run(config, steps)
        cubes = sim.solver.cubes
        results.append(
            AblationResult(
                label=f"k={k}",
                seconds=elapsed,
                extra={
                    "num_cubes": float(cubes.num_cubes),
                    "cube_working_set_kb": cubes.cube_nbytes / 1024.0,
                },
            )
        )
    return results


def distribution_sweep(steps: int = 4) -> list[AblationResult]:
    """block / cyclic / block-cyclic cube distribution comparison."""
    results = []
    for method in ("block", "cyclic", "block_cyclic"):
        config = _base_config(cube_method=method)
        elapsed, sim = _run(config, steps)
        solver = sim.solver
        results.append(
            AblationResult(
                label=method,
                seconds=elapsed,
                extra={
                    "lock_contentions": float(solver.locks.total_contentions()),
                    "lock_acquisitions": float(solver.locks.total_acquisitions()),
                    "load_imbalance_pct": 100.0
                    * float(
                        np.ptp(solver.cube_dist.load_per_thread())
                        / max(1, solver.cube_dist.load_per_thread().max())
                    ),
                },
            )
        )
    return results


def lock_overhead(steps: int = 4) -> list[AblationResult]:
    """Owner locks on vs off (numerics identical, overhead differs)."""
    results = []
    for use_locks in (True, False):
        config = _base_config()
        sim = Simulation(config)
        try:
            sim.solver.use_locks = use_locks
            start = time.perf_counter()
            sim.run(steps)
            elapsed = time.perf_counter() - start
            results.append(
                AblationResult(
                    label="locks on" if use_locks else "locks off",
                    seconds=elapsed,
                    extra={
                        "acquisitions": float(sim.solver.locks.total_acquisitions())
                    },
                )
            )
        finally:
            sim.close()
    return results


def delta_kernel_sweep(steps: int = 4) -> list[AblationResult]:
    """2-/3-/4-point delta kernels: influential-domain size vs cost."""
    results = []
    for kind, support in (("linear", 2), ("3point", 3), ("cosine", 4)):
        config = _base_config(solver="sequential", num_threads=1, delta_kind=kind)
        elapsed, sim = _run(config, steps)
        results.append(
            AblationResult(
                label=f"{kind} (support {support})",
                seconds=elapsed,
                extra={"influential_nodes": float(support**3)},
            )
        )
    return results


def render_results(title: str, results: list[AblationResult]) -> str:
    """Text table of an ablation sweep."""
    extra_keys = sorted({k for r in results for k in r.extra})
    return render_table(
        ["Configuration", "Seconds"] + extra_keys,
        [
            [r.label, f"{r.seconds:.3f}"] + [f"{r.extra.get(k, 0):.3g}" for k in extra_keys]
            for r in results
        ],
        title=title,
    )
