"""Experiment drivers regenerating every table and figure of the paper.

========  ==========================================  =====================
Artifact  Content                                     Module
========  ==========================================  =====================
Table I   sequential kernel profile                   ``table1``
Table II  cache miss rates + load imbalance           ``table2``
Table III machine description (thog)                  ``table34``
Table IV  NUMA distance matrix                        ``table34``
Figure 5  OpenMP strong scaling (32 cores)            ``fig5``
Figure 8  weak scaling, OpenMP vs cube (64 cores)     ``fig8``
(extra)   design-choice ablations                     ``ablations``
========  ==========================================  =====================

``workloads`` defines the paper's inputs and their scaled variants.
Each driver returns structured rows plus a paper-style text rendering;
the ``benchmarks/`` suite calls these drivers and prints the tables.
"""

from repro.experiments import workloads

__all__ = ["workloads"]
