"""Experiments Table III and Table IV: the thog machine description.

Table III is the hardware inventory; Table IV is the NUMA distance
matrix.  Both are inputs to the machine model rather than measurements,
so "reproducing" them means rendering the presets in the paper's format
and checking the derived quantities the paper calls out (remote access
up to 2.2x local, 8 cores per NUMA node, ...).
"""

from __future__ import annotations

import numpy as np

from repro.machine.numa import distance_table_as_text, interleave_distance_factor
from repro.machine.spec import MachineSpec, thog
from repro.profiling.report import render_table

__all__ = ["render_table3", "render_table4", "table3_rows", "max_remote_ratio"]


def table3_rows(machine: MachineSpec | None = None) -> list[list[str]]:
    """Table III rows for a machine (defaults to thog)."""
    m = machine or thog()
    l1 = m.cache(1)
    l2 = m.cache(2)
    l3 = m.cache(3)
    return [
        ["Processor type", f"{m.processor} {m.ghz} GHz"],
        ["Cores per processor", str(m.cores_per_socket)],
        ["L1 cache", f"{l1.size_bytes // 1024} KB per core"],
        [
            "L2 unified cache",
            f"{m.cores_per_socket // l2.shared_by} x {l2.size_bytes // (1024 * 1024)} MB, "
            f"each shared by {l2.shared_by} cores",
        ],
        [
            "L3 unified cache",
            f"{m.cores_per_socket // l3.shared_by} x {l3.size_bytes // (1024 * 1024)} MB, "
            f"each shared by {l3.shared_by} cores",
        ],
        ["Number of processors", str(m.num_sockets)],
        ["Number of NUMA nodes", str(m.num_numa_nodes)],
        ["Cores per NUMA node", str(m.cores_per_numa_node)],
        ["Memory per NUMA node", f"{m.memory_per_numa_gb:.0f} GB"],
    ]


def render_table3(machine: MachineSpec | None = None) -> str:
    """Paper-style rendering of Table III."""
    return render_table(
        ["Attribute", "Value"],
        table3_rows(machine),
        title="Table III: the experimental 64-core computer system",
    )


def max_remote_ratio(machine: MachineSpec | None = None) -> float:
    """Worst remote/local access-distance ratio (paper: 2.2x on thog)."""
    m = machine or thog()
    d = np.asarray(m.numa_distance)
    return float(d.max() / np.diag(d).min())


def render_table4(machine: MachineSpec | None = None) -> str:
    """Paper-style rendering of Table IV plus derived observations."""
    m = machine or thog()
    text = distance_table_as_text(m)
    ratio = max_remote_ratio(m)
    factor = interleave_distance_factor(m, m.num_cores)
    return (
        "Table IV: node distances between NUMA nodes (numactl --hardware)\n"
        + text
        + f"\nworst remote/local ratio: {ratio:.1f}x (paper: 2.2x)"
        + f"\nmean access factor under interleave=all: {factor:.2f}x local"
    )
