"""Experiment Table II: cache miss rates and load imbalance vs cores.

Three data sources stand in for the paper's OmpP + PAPI measurements:

* **Simulated miss rates** — the set-associative cache simulator (with
  next-line prefetching) runs one OpenMP thread's slab trace through
  the Abu Dhabi cache geometry per core count; the cube layout's rates
  are computed too — the locality contrast behind Section V.  The
  simulated grid keeps the paper's z extent (so the z-row reuse
  distances land in the same cache level as at paper scale) while L2/L3
  capacities scale with the node-count ratio.
* **Structural load imbalance** — computed from the *paper-sized*
  partitions our solvers actually produce: x-slabs of the 124-plane
  grid weighted by the fluid kernels' Table-I share, plus the 52-fiber
  distribution weighted by the fiber kernels' share.  This captures the
  partition component of imbalance; the paper's larger values at 16-32
  cores additionally include memory-contention jitter that only exists
  on real contended hardware.
* **Paper values** — Table II as published.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.workloads import PROFILING_WORKLOAD
from repro.machine.counters import SimulatedCounters
from repro.machine.spec import abu_dhabi
from repro.machine.workload import KERNEL_WORK, SCALAR_CYCLES_PER_NODE
from repro.parallel.distribution import FiberDistribution
from repro.parallel.partition import partition_sizes, static_slabs
from repro.profiling.report import render_table

__all__ = [
    "Table2Row",
    "PAPER_TABLE2",
    "structural_imbalance",
    "run_table2",
    "render_table2",
]

#: Paper Table II: cores -> (L1 miss %, L2 miss %, load imbalance %).
PAPER_TABLE2: dict[int, tuple[float, float, float]] = {
    1: (1.76, 26.1, 0.0),
    2: (1.75, 26.1, 1.8),
    4: (1.75, 26.1, 1.4),
    8: (1.75, 26.2, 5.1),
    16: (1.74, 27.1, 11.0),
    32: (1.76, 27.6, 13.0),
}


@dataclass(frozen=True)
class Table2Row:
    """One core count's metrics: paper vs simulation/derivation."""

    cores: int
    paper_l1: float
    paper_l2: float
    paper_imbalance: float
    sim_l1: float
    sim_l2: float
    structural_imbalance: float
    cube_l2: float  # the locality contrast the cube algorithm exploits


def structural_imbalance(
    num_threads: int,
    fluid_shape: tuple[int, int, int] | None = None,
    fiber_shape: tuple[int, int] | None = None,
) -> float:
    """Partition-derived load imbalance of the OpenMP program.

    Per-thread work combines the x-slab node counts (weighted by each
    fluid kernel's calibrated cycles) and the fiber distribution
    (weighted by the fiber kernels' cycles); the result is
    ``(max - mean) / max`` — OmpP's whole-program metric, restricted to
    its deterministic partition component.
    """
    fluid_shape = fluid_shape or PROFILING_WORKLOAD.fluid_shape
    fiber_shape = fiber_shape or PROFILING_WORKLOAD.fiber_shape
    nx, ny, nz = fluid_shape
    plane_nodes = ny * nz
    fluid_cycles_per_node = sum(
        SCALAR_CYCLES_PER_NODE[k] for k, w in KERNEL_WORK.items() if w.unit == "fluid"
    )
    fiber_cycles_per_node = sum(
        SCALAR_CYCLES_PER_NODE[k] for k, w in KERNEL_WORK.items() if w.unit == "fiber"
    )

    slab_nodes = partition_sizes(static_slabs(nx, num_threads)) * plane_nodes
    work = slab_nodes.astype(float) * fluid_cycles_per_node

    fibers = FiberDistribution(fiber_shape[0], num_threads)
    fiber_nodes = fibers.load_per_thread() * fiber_shape[1]
    work += fiber_nodes.astype(float) * fiber_cycles_per_node

    peak = work.max()
    if peak <= 0:
        return 0.0
    return float((peak - work.mean()) / peak)


def run_table2(
    core_counts: list[int] | None = None,
    sim_shape: tuple[int, int, int] = (32, 16, 64),
    cube_size: int = 4,
) -> list[Table2Row]:
    """Run the Table II experiment.

    Parameters
    ----------
    core_counts:
        Defaults to the paper's 1..32 powers of two.
    sim_shape:
        Reduced grid driven through the cache simulator (keep the last
        axis at the paper's 64 so the z-row reuse behaves identically).
    cube_size:
        Cube edge used for the cube-layout contrast column.
    """
    if core_counts is None:
        core_counts = [1, 2, 4, 8, 16, 32]
    machine = abu_dhabi()
    reference_nodes = int(np.prod(PROFILING_WORKLOAD.fluid_shape))
    counters = SimulatedCounters(machine, reference_nodes)

    cube_miss = counters.cube_miss_rates(sim_shape, cube_size)
    rows = []
    for n in core_counts:
        miss = counters.openmp_miss_rates(sim_shape, num_threads=n, thread_id=0)
        paper = PAPER_TABLE2.get(n, (float("nan"),) * 3)
        rows.append(
            Table2Row(
                cores=n,
                paper_l1=paper[0],
                paper_l2=paper[1],
                paper_imbalance=paper[2],
                sim_l1=100 * miss.l1,
                sim_l2=100 * miss.l2,
                structural_imbalance=100 * structural_imbalance(n),
                cube_l2=100 * cube_miss.l2,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """Paper-style text rendering of the Table II reproduction."""
    table = render_table(
        [
            "Cores",
            "L1 paper",
            "L1 sim",
            "L2 paper",
            "L2 sim",
            "L2 sim (cube)",
            "Imb paper",
            "Imb partition",
        ],
        [
            [
                r.cores,
                f"{r.paper_l1:.2f}%",
                f"{r.sim_l1:.2f}%",
                f"{r.paper_l2:.1f}%",
                f"{r.sim_l2:.1f}%",
                f"{r.cube_l2:.1f}%",
                f"{r.paper_imbalance:.1f}%",
                f"{r.structural_imbalance:.1f}%",
            ]
            for r in rows
        ],
        title="Table II: OpenMP cache behaviour and load imbalance",
    )
    return table + (
        "\nsim L2 runs above the paper's PAPI numbers (only next-line "
        "prefetch is modelled); trends match: L1 low and flat, L2 roughly "
        "flat with a slight rise, cube layout substantially lower."
    )
