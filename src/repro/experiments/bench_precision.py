"""Precision-policy benchmark: float32/mixed storage vs float64.

Not one of the paper's artifacts — this measures the library's own
array-backend precision policies (:mod:`repro.core.backend`) on the two
single-core memory-aware hot paths, ``variant="fused"`` and
``variant="inplace"``, over the Table-I profiling workload.  The LBM
step is memory-bound (paper Table II: collision alone moves 73% of the
step's traffic), so halving the storage width should buy a substantial
fraction of 2x; the record pins:

* whole-step wall time of both variants at all three policies
  (``float64``, ``float32``, ``mixed``) and the float32/mixed speedups
  over the float64 baseline;
* the distribution-lattice footprint per policy (structurally halved
  at 4-byte storage);
* the analytic prediction of the machine model's memory-share scaling
  (:meth:`repro.machine.perf_model.PerformanceModel.precision_speedup`)
  next to the measured number, Table-II/Figure-8 style.

``python -m repro.experiments precision`` prints the table;
``make bench-precision`` additionally writes ``BENCH_precision.json``.
"""

from __future__ import annotations

from repro.core.backend import PRECISIONS, resolve_precision
from repro.core.lbm.fields import FluidGrid
from repro.experiments.bench_fused import _measure_variant
from repro.experiments.workloads import scaled_profiling_config

__all__ = ["run_bench_precision", "render_bench_precision"]

_VARIANTS = ("fused", "inplace")


def _lattice_bytes(solver: str, scale: int, precision: str) -> int:
    """Bytes held by one variant's distribution buffers at a policy."""
    config = scaled_profiling_config(scale=scale, solver=solver)
    fluid = FluidGrid(
        config.fluid_shape,
        tau=config.effective_tau,
        collision_operator=config.collision_operator,
        single_lattice=solver == "inplace",
        precision=precision,
    )
    total = fluid.df.nbytes
    if fluid.df_new is not None:
        total += fluid.df_new.nbytes
    return total


def _modelled_speedups(fluid_shape, fiber_shape) -> dict:
    """Memory-share predictions of the float32/mixed step-time gain."""
    from repro.machine.perf_model import PerformanceModel
    from repro.machine.spec import abu_dhabi

    model = PerformanceModel(abu_dhabi())
    return {
        name: model.precision_speedup(
            tuple(fluid_shape), fiber_shape, precision=name
        )
        for name in PRECISIONS
        if name != "float64"
    }


def run_bench_precision(scale: int = 2, steps: int = 10, warmup: int = 3) -> dict:
    """The complete ``BENCH_precision.json`` record.

    ``scale=2`` is the Table-I profiling grid (62 x 32 x 32); CI smoke
    runs pass a larger ``scale`` for a tiny grid.
    """
    records: dict[str, dict[str, dict]] = {v: {} for v in _VARIANTS}
    for variant in _VARIANTS:
        for name in PRECISIONS:
            records[variant][name] = _measure_variant(
                variant, scale, steps, warmup, precision=name
            )

    config = scaled_profiling_config(scale=scale)
    sc = config.structure
    result: dict = {
        "workload": {
            "scale": scale,
            "fluid_shape": records["fused"]["float64"]["fluid_shape"],
            "steps": steps,
            "warmup": warmup,
        },
        "fused": records["fused"],
        "inplace": records["inplace"],
        "lattice_bytes": {
            name: {
                variant: _lattice_bytes(variant, scale, name)
                for variant in _VARIANTS
            }
            for name in PRECISIONS
        },
        "modelled": _modelled_speedups(
            config.fluid_shape, (sc.num_fibers, sc.nodes_per_fiber)
        ),
    }
    for variant in _VARIANTS:
        base = records[variant]["float64"]["step_seconds"]
        for name in PRECISIONS:
            if name == "float64":
                continue
            result[f"{name}_{variant}_speedup"] = (
                base / records[variant][name]["step_seconds"]
            )
    return result


def render_bench_precision(result: dict) -> str:
    """Text table of a :func:`run_bench_precision` record."""
    shape = "x".join(str(n) for n in result["workload"]["fluid_shape"])
    lines = [
        "Array-backend precision policies (float32/mixed vs float64)",
        f"  workload: Table-I profile, grid {shape}, "
        f"{result['workload']['steps']} timed steps",
        "",
        f"  {'variant':<10} {'policy':<9} {'ms/step':>9} {'speedup':>8} "
        f"{'lattice':>12} {'storage':>8}",
    ]
    for variant in _VARIANTS:
        for name in PRECISIONS:
            rec = result[variant][name]
            speed = (
                "1.00x"
                if name == "float64"
                else f"{result[f'{name}_{variant}_speedup']:.2f}x"
            )
            lattice = result["lattice_bytes"][name][variant]
            storage = resolve_precision(name).storage_itemsize
            lines.append(
                f"  {variant:<10} {name:<9} {rec['step_seconds'] * 1e3:>9.2f} "
                f"{speed:>8} {lattice:>10d} B {storage:>6d} B"
            )
    lines.append("")
    lines.append("  memory-share model predictions (abu_dhabi, global layout):")
    for name, speed in result["modelled"].items():
        lines.append(f"    {name:<9} predicted {speed:.2f}x")
    lines.append(
        "  (measured float32 gains above the prediction reflect numpy's "
        "wider SIMD lanes at 4-byte elements on top of the traffic halving;"
    )
    lines.append(
        "  the mixed policy keeps float64 arithmetic in the hot loops and "
        "pays cast traffic on every store — it buys the float32 footprint "
        "and float64 reductions, not step time)"
    )
    return "\n".join(lines)
