"""Validated configuration objects for the high-level API.

:class:`SimulationConfig` describes an entire LBM-IB run — fluid grid,
immersed structure, boundary conditions, solver variant — as plain
data.  :func:`build_simulation_parts` turns a config into the concrete
state and solver objects; most users go through
:class:`repro.api.Simulation` instead of calling it directly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Literal

from repro.constants import DT, tau_from_viscosity
from repro.errors import ConfigurationError

__all__ = [
    "StructureConfig",
    "BoundaryConfig",
    "SimulationConfig",
]

_AXES = {"x": 0, "y": 1, "z": 2}


@dataclass(frozen=True)
class StructureConfig:
    """Immersed-structure description.

    Parameters
    ----------
    kind:
        ``"none"`` (fluid only), ``"flat_sheet"`` (paper Figures 4/7),
        or ``"circular_plate"`` (paper Figure 1).
    num_fibers / nodes_per_fiber:
        Node-array dimensions (paper notation: a 52x52-node sheet).
    stretch_coefficient / bend_coefficient:
        Elasticity parameters ``k_s`` and ``k_b``.
    tether_coefficient:
        Stiffness of the fastening springs (circular plate only).
    normal_axis:
        Axis the sheet is perpendicular to (0 = across the flow).
    """

    kind: Literal["none", "flat_sheet", "circular_plate", "parallel_sheets"] = "flat_sheet"
    num_fibers: int = 16
    nodes_per_fiber: int = 16
    num_sheets: int = 3
    stretch_coefficient: float = 1.0e-2
    bend_coefficient: float = 1.0e-4
    tether_coefficient: float = 1.0e-1
    normal_axis: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("none", "flat_sheet", "circular_plate", "parallel_sheets"):
            raise ConfigurationError(f"unknown structure kind {self.kind!r}")
        if self.kind == "parallel_sheets" and self.num_sheets < 1:
            raise ConfigurationError("num_sheets must be positive")
        if self.kind != "none" and (self.num_fibers < 1 or self.nodes_per_fiber < 1):
            raise ConfigurationError("structure needs positive node counts")
        if self.normal_axis not in (0, 1, 2):
            raise ConfigurationError(f"normal_axis must be 0/1/2, got {self.normal_axis}")

    def to_dict(self) -> dict:
        """JSON-safe plain-dict form (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StructureConfig":
        """Rebuild from :meth:`to_dict` output (validation re-runs)."""
        return cls(**data)


@dataclass(frozen=True)
class BoundaryConfig:
    """One face boundary condition.

    ``kind`` is ``"periodic"``, ``"bounce_back"`` (optionally moving via
    ``wall_velocity``), or ``"outflow"``; ``axis`` may be given as
    ``0``/``1``/``2`` or ``"x"``/``"y"``/``"z"``.
    """

    kind: Literal["periodic", "bounce_back", "outflow"]
    axis: int | str
    side: Literal["low", "high"]
    wall_velocity: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def resolved_axis(self) -> int:
        """Axis as an integer."""
        if isinstance(self.axis, str):
            try:
                return _AXES[self.axis]
            except KeyError:
                raise ConfigurationError(f"unknown axis name {self.axis!r}") from None
        if self.axis not in (0, 1, 2):
            raise ConfigurationError(f"axis must be 0/1/2 or x/y/z, got {self.axis}")
        return self.axis

    def to_dict(self) -> dict:
        """JSON-safe plain-dict form (see :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "axis": self.axis,
            "side": self.side,
            "wall_velocity": list(self.wall_velocity),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BoundaryConfig":
        """Rebuild from :meth:`to_dict` output (validation re-runs)."""
        data = dict(data)
        data["wall_velocity"] = tuple(data.get("wall_velocity", (0.0, 0.0, 0.0)))
        return cls(**data)

    def build(self):
        """Instantiate the matching :class:`~repro.core.lbm.boundaries.Boundary`."""
        from repro.core.lbm import boundaries as b

        axis = self.resolved_axis()
        if self.kind == "periodic":
            return b.PeriodicBoundary(axis, self.side)
        if self.kind == "bounce_back":
            return b.BounceBackWall(axis, self.side, wall_velocity=self.wall_velocity)
        if self.kind == "outflow":
            return b.OutflowBoundary(axis, self.side)
        raise ConfigurationError(f"unknown boundary kind {self.kind!r}")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of an LBM-IB simulation.

    Parameters
    ----------
    fluid_shape:
        Fluid grid dimensions ``(Nx, Ny, Nz)``.
    tau:
        BGK relaxation time; alternatively give ``viscosity``.
    viscosity:
        Kinematic viscosity in lattice units (overrides ``tau``).
    structure:
        Immersed-structure description.
    boundaries:
        Face boundary conditions (unlisted faces stay periodic).
    solver:
        ``"sequential"``, ``"openmp"``, ``"cube"`` (the paper's three
        programs), ``"fused"`` (single-core memory-aware fused kernels
        with a zero-allocation hot path), ``"inplace"`` (single-lattice
        AA-pattern streaming: the fused kernels without ``df_new``,
        halving the lattice footprint), ``"async_cube"``
        (task-scheduled, barrier-free), ``"distributed"``
        (message-passing rank slabs), ``"hybrid"`` (distributed
        ranks with cube-centric local layout), or ``"batched"``
        (the fused kernels over a leading batch axis; a single
        simulation runs as a batch of one, many compatible ones run
        through :class:`repro.batch.scheduler.BatchScheduler`).
    num_threads:
        Team size for the parallel solvers (rank count for the
        distributed variants).
    cube_size:
        Cube edge ``k`` for the cube solver (grid must divide evenly).
    cube_method / fiber_method:
        Distribution functions for cubes and fibers.
    delta_kind:
        ``"cosine"`` (paper default, 4-point), ``"3point"``, ``"linear"``.
    collision_operator:
        ``"bgk"`` (the paper's single-relaxation-time operator) or
        ``"trt"`` (two-relaxation-time with magic number 3/16; same
        viscosity, exact halfway bounce-back walls).
    external_force:
        Optional constant body-force density driving the flow.
    precision:
        Array precision policy: ``"float64"`` (default, bit-exact
        against the golden baselines), ``"float32"`` (single-precision
        storage and arithmetic, roughly half the memory traffic), or
        ``"mixed"`` (float32 field storage with float64 accumulation in
        the collision moments and IB transfer reductions).  See
        :mod:`repro.core.backend`.
    dt:
        Time step (1 in lattice units).
    barrier_timeout:
        Watchdog deadline (seconds) for every barrier crossing, worker
        fork-join, and communicator wait in the parallel solvers.
        ``None`` (the default) waits forever, the classic HPC
        behaviour; a finite value turns a stalled or dead peer into a
        typed :class:`~repro.errors.BarrierTimeoutError` /
        :class:`~repro.errors.CommTimeoutError` naming the missing
        threads or ranks.
    """

    fluid_shape: tuple[int, int, int] = (32, 32, 32)
    tau: float = 0.8
    viscosity: float | None = None
    structure: StructureConfig = field(default_factory=StructureConfig)
    boundaries: tuple[BoundaryConfig, ...] = ()
    solver: Literal[
        "sequential",
        "fused",
        "inplace",
        "batched",
        "openmp",
        "cube",
        "async_cube",
        "distributed",
        "hybrid",
    ] = "sequential"
    num_threads: int = 1
    cube_size: int = 4
    cube_method: str = "block"
    fiber_method: str = "block"
    delta_kind: Literal["cosine", "3point", "linear"] = "cosine"
    collision_operator: Literal["bgk", "trt"] = "bgk"
    external_force: tuple[float, float, float] | None = None
    precision: Literal["float64", "float32", "mixed"] = "float64"
    dt: float = DT
    barrier_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.barrier_timeout is not None and self.barrier_timeout <= 0:
            raise ConfigurationError(
                f"barrier_timeout must be positive or None, got {self.barrier_timeout}"
            )
        if len(self.fluid_shape) != 3 or any(n < 1 for n in self.fluid_shape):
            raise ConfigurationError(
                f"fluid_shape must be three positive ints, got {self.fluid_shape}"
            )
        if self.solver not in (
            "sequential",
            "fused",
            "inplace",
            "batched",
            "openmp",
            "cube",
            "async_cube",
            "distributed",
            "hybrid",
        ):
            raise ConfigurationError(f"unknown solver {self.solver!r}")
        if self.num_threads < 1:
            raise ConfigurationError(
                f"num_threads must be positive, got {self.num_threads}"
            )
        if self.solver in ("cube", "async_cube", "hybrid"):
            for n in self.fluid_shape:
                if n % self.cube_size:
                    raise ConfigurationError(
                        f"fluid_shape {self.fluid_shape} not divisible by "
                        f"cube_size {self.cube_size}"
                    )
        if self.delta_kind not in ("cosine", "3point", "linear"):
            raise ConfigurationError(f"unknown delta kind {self.delta_kind!r}")
        if self.collision_operator not in ("bgk", "trt"):
            raise ConfigurationError(
                f"unknown collision operator {self.collision_operator!r}"
            )
        if self.precision not in ("float64", "float32", "mixed"):
            raise ConfigurationError(f"unknown precision {self.precision!r}")
        seen = set()
        for bc in self.boundaries:
            key = (bc.resolved_axis(), bc.side)
            if key in seen:
                raise ConfigurationError(f"duplicate boundary on face {key}")
            seen.add(key)

    @property
    def effective_tau(self) -> float:
        """The relaxation time actually used (viscosity wins if given)."""
        if self.viscosity is not None:
            return tau_from_viscosity(self.viscosity)
        return self.tau

    def estimated_state_bytes(self) -> int:
        """First-order resident-state estimate for admission control.

        Uses the :mod:`repro.machine` bytes-per-node model: 48 stored
        values per two-lattice fluid node (29 for the single-lattice
        in-place variant) at the configured precision, plus the
        structure's node arrays (position, force, velocity — 12 doubles
        per IB node; structure state stays float64 under every policy).
        A deliberate lower bound on a real process footprint — used to
        *compare* jobs against a budget, not to size hardware.
        """
        from repro.machine.cache_sim import record_bytes

        nx, ny, nz = self.fluid_shape
        values = 29 if self.solver == "inplace" else 48
        fluid = nx * ny * nz * record_bytes(values, self.precision)
        sc = self.structure
        if sc.kind == "none":
            return fluid
        fibers = sc.num_fibers * (sc.num_sheets if sc.kind == "parallel_sheets" else 1)
        return fluid + fibers * sc.nodes_per_fiber * 12 * 8

    def build_delta(self):
        """Instantiate the configured delta kernel."""
        from repro.core.ib import delta as d

        return {
            "cosine": d.CosineDelta,
            "3point": d.ThreePointDelta,
            "linear": d.LinearDelta,
        }[self.delta_kind]()

    def build_structure(self):
        """Instantiate the configured immersed structure (or ``None``)."""
        from repro.core.ib import geometry

        sc = self.structure
        if sc.kind == "none":
            return None
        if sc.kind == "parallel_sheets":
            return geometry.parallel_sheets(
                self.fluid_shape,
                num_sheets=sc.num_sheets,
                num_fibers=sc.num_fibers,
                nodes_per_fiber=sc.nodes_per_fiber,
                stretch_coefficient=sc.stretch_coefficient,
                bend_coefficient=sc.bend_coefficient,
                normal_axis=sc.normal_axis,
            )
        if sc.kind == "flat_sheet":
            return geometry.flat_sheet(
                self.fluid_shape,
                num_fibers=sc.num_fibers,
                nodes_per_fiber=sc.nodes_per_fiber,
                stretch_coefficient=sc.stretch_coefficient,
                bend_coefficient=sc.bend_coefficient,
                normal_axis=sc.normal_axis,
            )
        return geometry.circular_plate(
            self.fluid_shape,
            num_fibers=sc.num_fibers,
            nodes_per_fiber=sc.nodes_per_fiber,
            stretch_coefficient=sc.stretch_coefficient,
            bend_coefficient=sc.bend_coefficient,
            tether_coefficient=sc.tether_coefficient,
            normal_axis=sc.normal_axis,
        )

    def build_boundaries(self) -> list:
        """Instantiate the configured boundary conditions."""
        return [bc.build() for bc in self.boundaries]

    # ------------------------------------------------------------------
    # serialisation (queue manifests, saved experiments)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe plain-dict form of the complete configuration.

        Round-trips exactly through :meth:`from_dict`; used by the
        batch scheduler's persisted queue manifest so a killed
        scheduler process can resubmit every job on resume.
        """
        return {
            "fluid_shape": list(self.fluid_shape),
            "tau": self.tau,
            "viscosity": self.viscosity,
            "structure": self.structure.to_dict(),
            "boundaries": [bc.to_dict() for bc in self.boundaries],
            "solver": self.solver,
            "num_threads": self.num_threads,
            "cube_size": self.cube_size,
            "cube_method": self.cube_method,
            "fiber_method": self.fiber_method,
            "delta_kind": self.delta_kind,
            "collision_operator": self.collision_operator,
            "external_force": (
                None if self.external_force is None else list(self.external_force)
            ),
            "precision": self.precision,
            "dt": self.dt,
            "barrier_timeout": self.barrier_timeout,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output (validation re-runs)."""
        data = dict(data)
        data["fluid_shape"] = tuple(data["fluid_shape"])
        data["structure"] = StructureConfig.from_dict(data["structure"])
        data["boundaries"] = tuple(
            BoundaryConfig.from_dict(bc) for bc in data.get("boundaries", ())
        )
        if data.get("external_force") is not None:
            data["external_force"] = tuple(data["external_force"])
        # Manifests written before the precision policy existed are
        # float64 by construction.
        data.setdefault("precision", "float64")
        return cls(**data)
