"""Exception hierarchy for the LBM-IB library.

All library-raised exceptions derive from :class:`LBMIBError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class LBMIBError(Exception):
    """Base class for all errors raised by the LBM-IB library."""


class ConfigurationError(LBMIBError, ValueError):
    """An invalid simulation, machine, or solver configuration was supplied."""


class PartitionError(LBMIBError, ValueError):
    """A domain decomposition request cannot be satisfied.

    Raised, for example, when a fluid grid is not divisible into the
    requested cube size, or when a thread mesh cannot be factorized for
    the requested thread count.
    """


class StabilityError(LBMIBError, RuntimeError):
    """The numerical simulation became unstable (NaN/Inf or runaway values)."""


class CheckpointError(LBMIBError, RuntimeError):
    """A checkpoint file could not be written or restored."""


class MachineModelError(LBMIBError, ValueError):
    """The simulated-machine model was queried with inconsistent inputs."""


class WorkerError(LBMIBError, RuntimeError):
    """An exception raised inside a worker thread, with its thread ID."""

    def __init__(self, tid: int, original: BaseException) -> None:
        super().__init__(f"worker thread {tid} failed: {original!r}")
        self.tid = tid
        self.original = original


class BarrierTimeoutError(LBMIBError, TimeoutError):
    """A barrier (or fork-join) deadline expired before all parties arrived.

    Carries a stall report: which threads made it to the rendezvous and
    which never arrived, so a hung parallel run fails with an actionable
    message instead of deadlocking forever.
    """

    def __init__(
        self,
        name: str,
        timeout: float,
        arrived: list[str] | None = None,
        missing: list[str] | None = None,
    ) -> None:
        self.name = name
        self.timeout = timeout
        self.arrived = list(arrived or [])
        self.missing = list(missing or [])
        report = f"barrier {name!r} timed out after {timeout:g}s"
        if self.arrived:
            report += f"; arrived: {', '.join(self.arrived)}"
        if self.missing:
            report += f"; never arrived: {', '.join(self.missing)}"
        elif not self.arrived:
            report += "; no thread reached the rendezvous"
        super().__init__(report)


class CommTimeoutError(LBMIBError, TimeoutError):
    """A communicator operation (recv/barrier/allreduce) missed its deadline.

    Carries the waiting rank, the operation, and — for point-to-point
    receives — the expected source rank and message tag.
    """

    def __init__(
        self,
        rank: int,
        op: str,
        timeout: float,
        src: int | None = None,
        tag: int | None = None,
        missing: list[int] | None = None,
    ) -> None:
        self.rank = rank
        self.op = op
        self.timeout = timeout
        self.src = src
        self.tag = tag
        self.missing = list(missing or [])
        msg = f"rank {rank} timed out after {timeout:g}s in {op}"
        if src is not None:
            msg += f" waiting for tag {tag} from rank {src}"
        if self.missing:
            msg += f"; ranks never arrived: {self.missing}"
        msg += " (a peer rank has likely died or stalled)"
        super().__init__(msg)


class InvariantError(LBMIBError, RuntimeError):
    """A physics invariant failed (see :mod:`repro.verify.invariants`).

    Carries structured localization — which invariant, at which step,
    on which thread, in which cube — so a violation inside a worker
    thread surfaces with enough context to reproduce it, instead of a
    generic worker failure.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        step: int | None = None,
        field: str | None = None,
        value: float | None = None,
        limit: float | None = None,
        tid: int | None = None,
        cube: tuple[int, int, int] | None = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.step = step
        self.field = field
        self.value = value
        self.limit = limit
        self.tid = tid
        self.cube = tuple(cube) if cube is not None else None
        super().__init__(message)

    def attach_context(
        self,
        tid: int | None = None,
        cube: tuple[int, int, int] | None = None,
    ) -> "InvariantError":
        """Fill in thread/cube context not known at raise time."""
        if tid is not None and self.tid is None:
            self.tid = tid
        if cube is not None and self.cube is None:
            self.cube = tuple(cube)
        return self

    def __str__(self) -> str:
        parts = [f"invariant {self.invariant!r} violated: {self.message}"]
        context = []
        if self.step is not None:
            context.append(f"step={self.step}")
        if self.field is not None:
            context.append(f"field={self.field}")
        if self.value is not None:
            context.append(f"value={self.value:.6g}")
        if self.limit is not None:
            context.append(f"limit={self.limit:.6g}")
        if self.tid is not None:
            context.append(f"thread={self.tid}")
        if self.cube is not None:
            context.append(f"cube={self.cube}")
        if context:
            parts.append(f"[{', '.join(context)}]")
        return " ".join(parts)


class ServiceError(LBMIBError, RuntimeError):
    """Base class for simulation-service failures (see :mod:`repro.service`)."""


class AdmissionError(ServiceError):
    """The service rejected a job at submission time.

    ``retryable`` distinguishes transient pressure (queue full, memory
    budget exhausted — resubmit after ``retry_after_seconds``) from
    permanent rejection (a single job larger than the whole budget, an
    unknown tenant).
    """

    def __init__(
        self,
        message: str,
        retry_after_seconds: float | None = None,
        retryable: bool = False,
    ) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds
        self.retryable = retryable


class QueueFullError(AdmissionError):
    """A tenant's queue hit its depth cap; retry after the hint."""

    def __init__(self, tenant: str, depth: int, retry_after_seconds: float) -> None:
        super().__init__(
            f"tenant {tenant!r} queue full ({depth} pending); "
            f"retry after {retry_after_seconds:g}s",
            retry_after_seconds=retry_after_seconds,
            retryable=True,
        )
        self.tenant = tenant
        self.depth = depth


class MemoryBudgetError(AdmissionError):
    """Admitting the job would exceed the service memory budget."""

    def __init__(
        self,
        requested_bytes: int,
        available_bytes: int,
        budget_bytes: int,
        retry_after_seconds: float | None = None,
    ) -> None:
        retryable = requested_bytes <= budget_bytes
        message = (
            f"job needs {requested_bytes} bytes but only {available_bytes} of "
            f"the {budget_bytes}-byte budget is free"
        )
        if not retryable:
            message = (
                f"job needs {requested_bytes} bytes, more than the whole "
                f"{budget_bytes}-byte budget; it can never be admitted"
            )
            retry_after_seconds = None
        super().__init__(
            message, retry_after_seconds=retry_after_seconds, retryable=retryable
        )
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        self.budget_bytes = budget_bytes


class FaultInjectedError(LBMIBError, RuntimeError):
    """Base class for failures raised deliberately by the fault injector."""


class WorkerKilledError(FaultInjectedError):
    """A worker thread was killed by an injected ``kill_worker`` fault."""

    def __init__(self, tid: int, step: int) -> None:
        super().__init__(f"worker thread {tid} killed by fault injection at step {step}")
        self.tid = tid
        self.step = step
