"""Exception hierarchy for the LBM-IB library.

All library-raised exceptions derive from :class:`LBMIBError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class LBMIBError(Exception):
    """Base class for all errors raised by the LBM-IB library."""


class ConfigurationError(LBMIBError, ValueError):
    """An invalid simulation, machine, or solver configuration was supplied."""


class PartitionError(LBMIBError, ValueError):
    """A domain decomposition request cannot be satisfied.

    Raised, for example, when a fluid grid is not divisible into the
    requested cube size, or when a thread mesh cannot be factorized for
    the requested thread count.
    """


class StabilityError(LBMIBError, RuntimeError):
    """The numerical simulation became unstable (NaN/Inf or runaway values)."""


class CheckpointError(LBMIBError, RuntimeError):
    """A checkpoint file could not be written or restored."""


class MachineModelError(LBMIBError, ValueError):
    """The simulated-machine model was queried with inconsistent inputs."""
