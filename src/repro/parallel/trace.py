"""Execution tracing for the parallel solvers.

Both parallel solvers record, per kernel and per thread, the amount of
work done (node counts) and the wall time spent.  The trace is the raw
material for:

* the OmpP-style load-imbalance metric of paper Table II
  (:mod:`repro.profiling.ompp`), and
* the analytic machine model, which replaces measured seconds with
  modelled seconds but keeps the *work* numbers from the real
  partitions (:mod:`repro.machine.perf_model`).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["KernelEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class KernelEvent:
    """One thread's execution of one kernel in one time step."""

    step: int
    kernel: str
    tid: int
    seconds: float
    work_items: int


class ExecutionTrace:
    """Thread-safe accumulation of :class:`KernelEvent` records."""

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self._events: list[KernelEvent] = []
        self._lock = threading.Lock()

    def record(
        self, step: int, kernel: str, tid: int, seconds: float, work_items: int
    ) -> None:
        """Append one event (thread-safe)."""
        with self._lock:
            self._events.append(
                KernelEvent(step, kernel, tid, seconds, work_items)
            )

    @property
    def events(self) -> list[KernelEvent]:
        """Snapshot of the recorded events."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------
    def seconds_by_kernel(self) -> dict[str, float]:
        """Total thread-seconds per kernel."""
        out: dict[str, float] = defaultdict(float)
        for ev in self.events:
            out[ev.kernel] += ev.seconds
        return dict(out)

    def seconds_by_thread(self) -> np.ndarray:
        """Total busy seconds per thread, shape ``(num_threads,)``."""
        out = np.zeros(self.num_threads)
        for ev in self.events:
            out[ev.tid] += ev.seconds
        return out

    def work_by_thread(self, kernel: str | None = None) -> np.ndarray:
        """Total work items per thread (optionally for one kernel)."""
        out = np.zeros(self.num_threads, dtype=np.int64)
        for ev in self.events:
            if kernel is None or ev.kernel == kernel:
                out[ev.tid] += ev.work_items
        return out

    def load_imbalance(self, kernel: str | None = None) -> float:
        """Relative load imbalance ``(max - mean) / max`` of per-thread work.

        0 means perfectly balanced; the paper's Table II reports this
        ratio relative to the whole program (``kernel=None``).
        """
        work = self.work_by_thread(kernel).astype(float)
        peak = work.max()
        if peak <= 0:
            return 0.0
        return float((peak - work.mean()) / peak)

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self._events.clear()
