"""Parallel LBM-IB solvers and their substrate.

* :class:`~repro.parallel.openmp_solver.OpenMPLBMIBSolver` — the
  OpenMP-style program of paper Section IV: slab decomposition, one
  fork-join parallel region per kernel.
* :class:`~repro.parallel.cube_solver.CubeLBMIBSolver` — the
  cube-centric program of paper Section V: cube-blocked data layout,
  persistent SPMD threads, five loop nests and three barriers per step,
  owner locks for cross-cube writes.
* :class:`~repro.parallel.async_cube_solver.AsyncCubeLBMIBSolver` — the
  paper's future-work prototype: the same cube numerics driven by a
  dependency-based dynamic task scheduler instead of global barriers.

Supporting modules: ``partition`` (slabs), ``cubes`` (cube storage),
``thread_mesh`` + ``distribution`` (``cube2thread``/``fiber2thread``),
``barrier``/``locks`` (instrumented synchronization), ``executor``
(fork-join pool and SPMD launch), ``trace`` (per-kernel event records).
"""

from repro.parallel.async_cube_solver import AsyncCubeLBMIBSolver
from repro.parallel.cube_solver import CubeLBMIBSolver
from repro.parallel.cubes import CubeGrid
from repro.parallel.distribution import CubeDistribution, FiberDistribution
from repro.parallel.openmp_solver import OpenMPLBMIBSolver
from repro.parallel.thread_mesh import ThreadMesh

__all__ = [
    "AsyncCubeLBMIBSolver",
    "CubeLBMIBSolver",
    "CubeGrid",
    "CubeDistribution",
    "FiberDistribution",
    "OpenMPLBMIBSolver",
    "ThreadMesh",
]
