"""The cube-centric multithreaded LBM-IB solver (paper Algorithm 4).

Each of the ``n`` threads executes the whole time-stepping loop itself
(Pthreads style, launched once), processing only the cubes assigned to
it by ``cube2thread`` and the fibers assigned by ``fiber2thread``.
Every time step runs five loop nests separated by exactly three global
barriers::

    1st loop (fibers): kernels 1-4  (forces + spreading, owner locks)
    2nd loop (cubes):  kernels 5-6  (collision + streaming, owner locks)
    --- barrier ---                  (df_new complete everywhere)
    3rd loop (cubes):  boundaries + kernel 7 (update velocity)
    --- barrier ---                  (velocity complete everywhere)
    4th loop (fibers): kernel 8     (move fibers)
    5th loop (cubes):  kernel 9     (copy df_new -> df, zero force)
    --- barrier ---                  (step complete)

The schedule is race-free because the elastic force enters the fluid
update only in kernel 7 (velocity-shift forcing; see
:mod:`repro.core.coupling`): collision never reads the force field, so
loops 1 and 2 may overlap across threads.  Cross-cube writes (force
spreading into influential domains, streaming spills into face/edge/
corner neighbours) are protected by the owner thread's private lock,
exactly as the paper prescribes.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.constants import DT, DTYPE
from repro.core import coupling as _coupling
from repro.core.ib import forces as _forces
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.ib.spreading import flatten_stencil
from repro.core.lbm import collision as _collision
from repro.core.lbm import macroscopic as _macroscopic
from repro.core.lbm.boundaries import Boundary, BounceBackWall, OutflowBoundary, PeriodicBoundary, validate_boundaries
from repro.core.lbm.lattice import E, OPPOSITE, Q, W
from repro.errors import ConfigurationError
from repro.parallel.barrier import InstrumentedBarrier
from repro.parallel.cubes import CubeGrid
from repro.parallel.distribution import CubeDistribution, FiberDistribution
from repro.parallel.executor import run_spmd
from repro.parallel.locks import OwnerLocks
from repro.parallel.thread_mesh import ThreadMesh
from repro.parallel.trace import ExecutionTrace

__all__ = ["CubeLBMIBSolver"]


def _streaming_plan(k: int):
    """Per-direction copy plan for cube streaming.

    For every direction, lists ``(src_slices, dst_slices, cube_offset)``
    triples decomposing the periodic shift into the within-cube part and
    the spills into neighbour cubes (up to 8 destination cubes for a
    diagonal direction).
    """
    plan = []
    for i in range(Q):
        combos = [((), (), ())]
        for axis in range(3):
            e = int(E[i, axis])
            options = []
            if e == 0:
                options.append((slice(0, k), slice(0, k), 0))
            elif e == 1:
                options.append((slice(0, k - 1), slice(1, k), 0))  # stay
                options.append((slice(k - 1, k), slice(0, 1), 1))  # spill
            else:  # e == -1
                options.append((slice(1, k), slice(0, k - 1), 0))  # stay
                options.append((slice(0, 1), slice(k - 1, k), -1))  # spill
            combos = [
                (src + (o[0],), dst + (o[1],), off + (o[2],))
                for (src, dst, off) in combos
                for o in options
            ]
        entries = []
        for src, dst, off in combos:
            if any(s.start >= s.stop for s in src):
                continue  # empty stay part (k == 1)
            entries.append((src, dst, off))
        plan.append(entries)
    return plan


class CubeLBMIBSolver:
    """Cube-based parallel LBM-IB solver with persistent SPMD threads.

    Parameters
    ----------
    cubes:
        Cube-blocked fluid state (build with
        :meth:`CubeGrid.from_fluid_grid` for an arbitrary initial
        condition).
    structure:
        Immersed structure, or ``None`` for fluid-only runs.
    num_threads:
        Thread count; laid out as a near-cubic ``P x Q x R`` mesh.
    cube_method / fiber_method:
        Distribution functions (``"block"``, ``"cyclic"``,
        ``"block_cyclic"``).
    boundaries:
        Face boundary conditions.  Bounce-back (fixed or moving wall)
        is supported for any cube size; outflow needs ``cube_size >= 2``
        (it reads the adjacent interior layer of the same cube).
    use_locks:
        Acquire owner locks around cross-cube writes (paper behaviour).
        May be disabled for the lock-overhead ablation study: the write
        regions are element-disjoint, so the numerics are unaffected.
    trace:
        Record per-kernel per-thread events (on by default).
    """

    def __init__(
        self,
        cubes: CubeGrid,
        structure: ImmersedStructure | None,
        num_threads: int,
        cube_method: str = "block",
        fiber_method: str = "block",
        delta: DeltaKernel | None = None,
        boundaries: Sequence[Boundary] = (),
        dt: float = DT,
        use_locks: bool = True,
        trace: bool = True,
        external_force: tuple[float, float, float] | None = None,
        fault_hook=None,
        barrier_timeout: float | None = None,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be positive, got {num_threads}")
        self.cubes = cubes
        self.structure = structure
        self.num_threads = num_threads
        self.delta = delta if delta is not None else default_delta()
        self.boundaries = list(boundaries)
        validate_boundaries(self.boundaries)
        for b in self.boundaries:
            if isinstance(b, OutflowBoundary) and cubes.cube_size < 2:
                raise ConfigurationError(
                    "outflow boundaries need cube_size >= 2 in the cube solver"
                )
            if not isinstance(b, (PeriodicBoundary, BounceBackWall, OutflowBoundary)):
                raise ConfigurationError(
                    f"unsupported boundary type for the cube solver: {type(b).__name__}"
                )
        self.dt = dt
        self.use_locks = use_locks
        self.time_step = 0
        self.external_force = external_force
        self.fault_hook = fault_hook
        self.barrier_timeout = barrier_timeout
        if external_force is not None:
            f = np.asarray(external_force, dtype=DTYPE)
            cubes.force[...] = f[None, :, None, None, None]

        self.mesh = ThreadMesh.for_threads(num_threads)
        self.cube_dist = CubeDistribution(
            cubes.cube_counts, self.mesh, method=cube_method
        )
        self._owner_table = self.cube_dist.owner_table()
        self._owner_flat = self._owner_table.ravel()
        self._owned_cubes: list[np.ndarray] = [
            np.nonzero(self._owner_flat == tid)[0] for tid in range(num_threads)
        ]
        self._fiber_dist: list[FiberDistribution] = []
        if structure is not None:
            self._fiber_dist = [
                FiberDistribution(s.num_fibers, num_threads, method=fiber_method)
                for s in structure.sheets
            ]
        self.locks = OwnerLocks(num_threads)
        self.barriers = {
            name: InstrumentedBarrier(num_threads, name, timeout=barrier_timeout)
            for name in ("after_stream", "after_update", "after_step")
        }
        self.trace: ExecutionTrace | None = (
            ExecutionTrace(num_threads) if trace else None
        )
        #: Optional span tracer (repro.observe); None = telemetry off.
        #: When attached, every cube loop additionally emits per-cube
        #: spans (cat="cube") nested inside the kernel span, and every
        #: barrier crossing emits a wait span (cat="barrier").
        self.tracer = None
        self._plan = _streaming_plan(cubes.cube_size)
        k = cubes.cube_size
        self._k3 = k * k * k

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _record(self, step: int, kernel: str, tid: int, start: float, work: int) -> None:
        end = time.perf_counter()
        if self.trace is not None:
            self.trace.record(step, kernel, tid, end - start, work)
        if self.tracer is not None:
            self.tracer.record(kernel, tid, start, end - start, step=step)

    def _cube_pass(self, kernel: str, tid: int, step: int, cubes, body) -> None:
        """Run ``body(c)`` over ``cubes``, tracing each cube when enabled."""
        tracer = self.tracer
        if tracer is None:
            for c in cubes:
                body(c)
            return
        for c in cubes:
            start = time.perf_counter()
            body(c)
            tracer.record(
                kernel, tid, start, time.perf_counter() - start,
                step=step, cube=int(c), cat="cube",
            )

    def _wait(self, name: str, tid: int, step: int) -> None:
        """Cross the named barrier, tracing the wait when enabled."""
        tracer = self.tracer
        if tracer is None:
            self.barriers[name].wait()
            return
        start = time.perf_counter()
        self.barriers[name].wait()
        tracer.record(
            "barrier:" + name, tid, start, time.perf_counter() - start,
            step=step, cat="barrier",
        )

    def _fiber_rows(self, sheet_index: int, tid: int) -> np.ndarray:
        return self._fiber_dist[sheet_index].fibers_of(tid)

    def _locked(self, owner: int):
        if self.use_locks:
            return self.locks.owning(owner)
        import contextlib

        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    # loop 1: fiber forces + spreading
    # ------------------------------------------------------------------
    def _fiber_forces_and_spread(self, si: int, rows: np.ndarray) -> int:
        """Kernels 1-4 for a subset of one sheet's fibers.

        Returns the number of fiber nodes processed.  Cross-cube force
        writes are grouped by owner and guarded by the owner locks.
        """
        structure = self.structure
        assert structure is not None
        cubes = self.cubes
        force_flat = cubes.force.reshape(cubes.num_cubes, 3, self._k3)
        sheet = structure.sheets[si]
        if rows.size == 0:
            return 0
        _forces.compute_bending_force(sheet, rows=rows)
        _forces.compute_stretching_force(sheet, rows=rows)
        _forces.compute_elastic_force(sheet, rows=rows)
        work = rows.size * sheet.nodes_per_fiber

        node_mask = np.zeros_like(sheet.active)
        node_mask[rows] = True
        node_mask &= sheet.active
        positions = sheet.positions[node_mask]
        values = sheet.elastic_force[node_mask] * sheet.area_element
        if positions.size == 0:
            return work
        indices, weights = self.delta.stencil(positions, grid_shape=cubes.shape)
        flat_idx, flat_w = flatten_stencil(indices, weights, cubes.shape)
        cube_idx, local_idx = cubes.locate_flat(flat_idx.ravel())
        contrib = (flat_w[:, :, None] * values[:, None, :]).reshape(-1, 3)
        owners = self._owner_flat[cube_idx]
        order = np.argsort(owners, kind="stable")
        cube_idx = cube_idx[order]
        local_idx = local_idx[order]
        contrib = contrib[order]
        owners = owners[order]
        bounds = np.searchsorted(
            owners, np.arange(self.num_threads + 1), side="left"
        )
        for owner in range(self.num_threads):
            lo, hi = bounds[owner], bounds[owner + 1]
            if lo == hi:
                continue
            with self._locked(owner):
                for comp in range(3):
                    np.add.at(
                        force_flat[:, comp, :],
                        (cube_idx[lo:hi], local_idx[lo:hi]),
                        contrib[lo:hi, comp],
                    )
        return work

    def _loop1_fibers(self, tid: int, step: int) -> None:
        structure = self.structure
        assert structure is not None
        start = time.perf_counter()
        work = 0
        for si in range(len(structure.sheets)):
            rows = self._fiber_rows(si, tid)
            work += self._fiber_forces_and_spread(si, rows)
        self._record(step, "fiber_forces_and_spread", tid, start, work)

    # ------------------------------------------------------------------
    # loop 2: collision + streaming per owned cube
    # ------------------------------------------------------------------
    def _collide_cube(self, c: int) -> None:
        """Kernel 5 on one cube (no neighbour access)."""
        cubes = self.cubes
        df = cubes.df[c]
        density = _macroscopic.compute_density(df)
        _collision.collide(
            df,
            density,
            cubes.velocity_shifted[c],
            cubes.tau,
            operator=cubes.collision_operator,
            magic_lambda=cubes.trt_magic,
        )

    def _stream_cube(self, c: int) -> None:
        """Kernel 6 on one cube: in-cube shifts plus neighbour spills.

        Every destination cube's owner lock is acquired around the
        write, per the paper's mutual-exclusion rule.
        """
        cubes = self.cubes
        coords = cubes.cube_coords(int(c))
        df = cubes.df[c]
        for i in range(Q):
            for src, dst, off in self._plan[i]:
                target = (
                    int(c) if off == (0, 0, 0) else cubes.neighbor_cube(coords, off)
                )
                owner = int(self._owner_flat[target])
                with self._locked(owner):
                    cubes.df_new[target][(i,) + dst] = df[(i,) + src]

    def stream_targets(self, c: int) -> set[int]:
        """Linear indices of every cube ``c``'s streaming writes touch."""
        cubes = self.cubes
        coords = cubes.cube_coords(int(c))
        targets = {int(c)}
        for i in range(Q):
            for _, _, off in self._plan[i]:
                if off != (0, 0, 0):
                    targets.add(cubes.neighbor_cube(coords, off))
        return targets

    def _loop2_cubes(self, tid: int, step: int) -> None:
        start = time.perf_counter()
        owned = self._owned_cubes[tid]
        self._cube_pass("compute_fluid_collision", tid, step, owned, self._collide_cube)
        self._record(step, "compute_fluid_collision", tid, start, owned.size * self._k3)
        mid = time.perf_counter()

        self._cube_pass(
            "stream_fluid_velocity_distribution", tid, step, owned, self._stream_cube
        )
        self._record(
            step,
            "stream_fluid_velocity_distribution",
            tid,
            mid,
            owned.size * self._k3,
        )

    # ------------------------------------------------------------------
    # loop 3: boundaries + velocity update per owned cube
    # ------------------------------------------------------------------
    def _apply_boundaries_cube(self, c: int, coords: tuple[int, int, int]) -> None:
        cubes = self.cubes
        k = cubes.cube_size
        ncounts = cubes.cube_counts
        for b in self.boundaries:
            if isinstance(b, PeriodicBoundary):
                continue
            face_cube = 0 if b.side == "low" else ncounts[b.axis] - 1
            if coords[b.axis] != face_cube:
                continue
            layer = 0 if b.side == "low" else k - 1
            idx: list = [slice(None)] * 3
            idx[b.axis] = layer
            idx_t = tuple(idx)
            if isinstance(b, BounceBackWall):
                u_w = np.asarray(b.wall_velocity, dtype=DTYPE)
                moving = bool(np.any(u_w != 0.0))
                for i in b.incoming_directions():
                    value = cubes.df[c][(int(OPPOSITE[i]),) + idx_t]
                    if moving:
                        value = value + 6.0 * W[i] * b.wall_density * float(E[i] @ u_w)
                    cubes.df_new[c][(int(i),) + idx_t] = value
            elif isinstance(b, OutflowBoundary):
                interior = list(idx)
                interior[b.axis] = 1 if b.side == "low" else k - 2
                interior_t = tuple(interior)
                for i in b.incoming_directions():
                    cubes.df_new[c][(int(i),) + idx_t] = cubes.df_new[c][
                        (int(i),) + interior_t
                    ]

    def _update_cube(self, c: int) -> None:
        """Boundary repair + kernel 7 on one cube."""
        cubes = self.cubes
        if self.boundaries:
            self._apply_boundaries_cube(int(c), cubes.cube_coords(int(c)))
        _coupling.shifted_velocities(
            cubes.df_new[c],
            cubes.force[c],
            cubes.tau_odd,
            out_velocity=cubes.velocity[c],
            out_velocity_shifted=cubes.velocity_shifted[c],
            out_density=cubes.density[c],
        )

    def _loop3_cubes(self, tid: int, step: int) -> None:
        start = time.perf_counter()
        owned = self._owned_cubes[tid]
        self._cube_pass("update_fluid_velocity", tid, step, owned, self._update_cube)
        self._record(step, "update_fluid_velocity", tid, start, owned.size * self._k3)

    # ------------------------------------------------------------------
    # loop 4: move fibers
    # ------------------------------------------------------------------
    def _move_fiber_rows(self, si: int, rows: np.ndarray) -> int:
        """Kernel 8 for a subset of one sheet's fibers (cube-gathered)."""
        structure = self.structure
        assert structure is not None
        cubes = self.cubes
        vel_flat = cubes.velocity.reshape(cubes.num_cubes, 3, self._k3)
        sheet = structure.sheets[si]
        if rows.size == 0:
            return 0
        node_mask = np.zeros_like(sheet.active)
        node_mask[rows] = True
        node_mask &= sheet.active
        positions = sheet.positions[node_mask]
        if positions.size == 0:
            return rows.size * sheet.nodes_per_fiber
        indices, weights = self.delta.stencil(positions, grid_shape=cubes.shape)
        flat_idx, flat_w = flatten_stencil(indices, weights, cubes.shape)
        cube_idx, local_idx = cubes.locate_flat(flat_idx.ravel())
        n, s3 = flat_idx.shape
        gathered = vel_flat[cube_idx, :, local_idx].reshape(n, s3, 3)
        velocities = np.einsum("nsa,ns->na", gathered, flat_w)
        sheet.velocity[node_mask] = velocities
        sheet.positions[node_mask] += self.dt * velocities
        return rows.size * sheet.nodes_per_fiber

    def _loop4_fibers(self, tid: int, step: int) -> None:
        structure = self.structure
        assert structure is not None
        start = time.perf_counter()
        work = 0
        for si in range(len(structure.sheets)):
            rows = self._fiber_rows(si, tid)
            work += self._move_fiber_rows(si, rows)
        self._record(step, "move_fibers", tid, start, work)

    # ------------------------------------------------------------------
    # loop 5: copy buffers + reset force
    # ------------------------------------------------------------------
    def _copy_cube(self, c: int) -> None:
        """Kernel 9 + force reset on one cube."""
        cubes = self.cubes
        cubes.df[c] = cubes.df_new[c]
        if self.external_force is None:
            cubes.force[c] = 0.0
        else:
            cubes.force[c] = np.asarray(self.external_force, dtype=DTYPE)[
                :, None, None, None
            ]

    def _loop5_cubes(self, tid: int, step: int) -> None:
        start = time.perf_counter()
        owned = self._owned_cubes[tid]
        self._cube_pass(
            "copy_fluid_velocity_distribution", tid, step, owned, self._copy_cube
        )
        self._record(
            step, "copy_fluid_velocity_distribution", tid, start, owned.size * self._k3
        )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _thread_entry(self, tid: int, num_steps: int) -> None:
        try:
            for local_step in range(num_steps):
                step = self.time_step + local_step
                if self.fault_hook is not None:
                    self.fault_hook(tid, step)
                if self.structure is not None:
                    self._loop1_fibers(tid, step)
                self._loop2_cubes(tid, step)
                self._wait("after_stream", tid, step)
                self._loop3_cubes(tid, step)
                self._wait("after_update", tid, step)
                if self.structure is not None:
                    self._loop4_fibers(tid, step)
                self._loop5_cubes(tid, step)
                self._wait("after_step", tid, step)
        except BaseException:
            # A dying worker must not strand its peers at the next
            # rendezvous: break every barrier so they fail fast with a
            # typed stall report instead of deadlocking.
            for barrier in self.barriers.values():
                barrier.abort()
            raise

    def run(self, num_steps: int) -> None:
        """Launch the SPMD team once and advance ``num_steps`` steps.

        Worker failures surface as :class:`~repro.errors.WorkerError`
        (root cause first, barrier-stall collateral suppressed); the
        per-step watchdog is the barrier deadline configured via
        ``barrier_timeout``.
        """
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        if num_steps == 0:
            return
        for barrier in self.barriers.values():
            if barrier.aborted:
                barrier.reset()
        run_spmd(self.num_threads, lambda tid: self._thread_entry(tid, num_steps))
        self.time_step += num_steps
