"""Dependency-driven cube solver (the paper's future-work prototype).

The paper's conclusion proposes "removing the global synchronizations
by using dynamic task scheduling".  This solver realizes that idea for
the intra-step synchronization: instead of Algorithm 4's three global
barriers, each time step is expressed as a task graph over cubes and
fiber blocks, and worker threads pull whatever task is *ready* —

========================  ===========================================
Task                      becomes ready when
========================  ===========================================
``spread(sheet, rows)``   at step start (kernels 1-4)
``collide+stream(c)``     at step start (kernel 5 never reads the
                          force field under velocity-shift forcing,
                          so it can overlap with spreading)
``update(c)``             every cube that streams *into* ``c`` has
                          finished, and all spreading is done
                          (kernel 7 reads ``df_new`` and ``force``)
``move(sheet, rows)``     every ``update`` is done (interpolation may
                          read any cube's velocity)
``copy(c)``               ``update(c)`` is done
========================  ===========================================

Only the end of the whole step joins the workers; cubes deep in a
thread's partition no longer wait for stragglers at two intermediate
global barriers.  Numerical results remain identical to the sequential
solver — enforced by the test suite.

The task schedule degrades gracefully: with dependency counters built
from :meth:`CubeLBMIBSolver.stream_targets`, small cube grids whose
neighbour sets wrap onto themselves are handled exactly.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.parallel.cube_solver import CubeLBMIBSolver
from repro.parallel.executor import run_spmd

__all__ = ["AsyncCubeLBMIBSolver"]

#: Span names of the task-graph units (Algorithm-1 kernel vocabulary).
_TASK_KERNELS = {
    "spread": "fiber_forces_and_spread",
    "stream": "collide_stream",
    "update": "update_fluid_velocity",
    "move": "move_fibers",
    "copy": "copy_fluid_velocity_distribution",
}


class AsyncCubeLBMIBSolver(CubeLBMIBSolver):
    """Cube solver driven by a ready-task queue instead of barriers.

    Accepts exactly the same configuration as
    :class:`~repro.parallel.cube_solver.CubeLBMIBSolver`; only the
    execution schedule differs.  ``tasks_executed`` counts dispatched
    tasks (for schedule inspection in tests and ablations).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Static dependency structure: which cubes receive each cube's
        # streaming writes, and the inverse in-degree for update tasks.
        self._targets: list[list[int]] = [
            sorted(self.stream_targets(c)) for c in range(self.cubes.num_cubes)
        ]
        indegree = np.zeros(self.cubes.num_cubes, dtype=np.int64)
        for targets in self._targets:
            for t in targets:
                indegree[t] += 1
        self._stream_indegree = indegree
        self.tasks_executed = 0

    # ------------------------------------------------------------------
    def _fiber_blocks(self) -> list[tuple[int, np.ndarray]]:
        """(sheet index, fiber rows) work units, one per sheet per thread."""
        blocks: list[tuple[int, np.ndarray]] = []
        if self.structure is None:
            return blocks
        for si in range(len(self.structure.sheets)):
            for tid in range(self.num_threads):
                rows = self._fiber_rows(si, tid)
                if rows.size:
                    blocks.append((si, rows))
        return blocks

    def _run_step_taskgraph(self) -> None:
        """Execute one time step as a dependency-driven task graph."""
        num_cubes = self.cubes.num_cubes
        fiber_blocks = self._fiber_blocks()

        state_lock = threading.Lock()
        ready: deque = deque()
        has_work = threading.Condition(state_lock)

        stream_remaining = self._stream_indegree.copy()
        spread_remaining = len(fiber_blocks)
        update_remaining = num_cubes
        update_enqueued = np.zeros(num_cubes, dtype=bool)
        outstanding = (
            2 * len(fiber_blocks)  # spread + move per block
            + 3 * num_cubes  # collide+stream, update, copy per cube
        )

        # seed: all spreading blocks and all collide+stream tasks
        for bi in range(len(fiber_blocks)):
            ready.append(("spread", bi))
        for c in range(num_cubes):
            ready.append(("stream", c))

        def maybe_enqueue_updates_locked() -> None:
            if spread_remaining:
                return
            for c in np.nonzero((stream_remaining == 0) & ~update_enqueued)[0]:
                update_enqueued[c] = True
                ready.append(("update", int(c)))
                has_work.notify_all()

        def complete(task) -> None:
            nonlocal spread_remaining, update_remaining, outstanding
            kind, payload = task
            with state_lock:
                outstanding -= 1
                if kind == "spread":
                    spread_remaining -= 1
                    maybe_enqueue_updates_locked()
                elif kind == "stream":
                    for t in self._targets[payload]:
                        stream_remaining[t] -= 1
                    maybe_enqueue_updates_locked()
                elif kind == "update":
                    update_remaining -= 1
                    ready.append(("copy", payload))
                    if update_remaining == 0:
                        for bi in range(len(fiber_blocks)):
                            ready.append(("move", bi))
                has_work.notify_all()

        failed = False

        def worker(tid: int) -> None:
            nonlocal outstanding, failed
            try:
                if self.fault_hook is not None:
                    self.fault_hook(tid, self.time_step)
                while True:
                    with state_lock:
                        while not ready:
                            if outstanding == 0 or failed:
                                return
                            has_work.wait()
                        if failed:
                            return
                        task = ready.popleft()
                    kind, payload = task
                    tracer = self.tracer
                    start = time.perf_counter() if tracer is not None else 0.0
                    if kind == "spread":
                        si, rows = fiber_blocks[payload]
                        self._fiber_forces_and_spread(si, rows)
                    elif kind == "stream":
                        self._collide_cube(payload)
                        self._stream_cube(payload)
                    elif kind == "update":
                        self._update_cube(payload)
                    elif kind == "move":
                        si, rows = fiber_blocks[payload]
                        self._move_fiber_rows(si, rows)
                    elif kind == "copy":
                        self._copy_cube(payload)
                    if tracer is not None:
                        tracer.record(
                            _TASK_KERNELS[kind],
                            tid,
                            start,
                            time.perf_counter() - start,
                            step=self.time_step,
                            cube=payload if kind in ("stream", "update", "copy") else -1,
                            cat="task",
                        )
                    with state_lock:
                        self.tasks_executed += 1
                    complete(task)
            except BaseException:
                # Wake every peer parked on the work condition; they see
                # the failed flag and exit instead of deadlocking on a
                # task count that can no longer reach zero.
                with state_lock:
                    failed = True
                    has_work.notify_all()
                raise

        run_spmd(self.num_threads, worker)

    # ------------------------------------------------------------------
    def run(self, num_steps: int) -> None:
        """Advance ``num_steps`` steps, one task graph per step."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for _ in range(num_steps):
            self._run_step_taskgraph()
            self.time_step += 1
