"""Cube-centric fluid storage (paper Section V-A).

The cube-based algorithm divides the ``Nx x Ny x Nz`` fluid grid into a
3D array of ``k x k x k`` sub-grids ("cubes"), each stored in its own
contiguous memory block — a much smaller working set and better locality
than the global-array layout.  A grid of ``Nx x Ny x Nz`` nodes becomes
``Nx/k x Ny/k x Nz/k`` cubes.

:class:`CubeGrid` owns, per cube, the same field set as
:class:`~repro.core.lbm.fields.FluidGrid` (two distribution buffers,
density, physical and shifted velocity, force), plus converters to and
from the global layout (used for initialization and verification) and
index arithmetic for locating arbitrary global nodes — the operation
force spreading and velocity interpolation need to address influential
domains that straddle cube boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DTYPE, Q
from repro.core.lbm.fields import FluidGrid
from repro.errors import PartitionError

__all__ = ["CubeGrid"]


@dataclass
class CubeGrid:
    """Cube-blocked storage of the fluid state.

    Parameters
    ----------
    shape:
        Global grid dimensions ``(Nx, Ny, Nz)``; each must be divisible
        by ``cube_size``.
    cube_size:
        Edge length ``k`` of a cube.
    tau:
        BGK relaxation time (carried along for the kernels).

    Attributes
    ----------
    df, df_new:
        Distributions, shape ``(num_cubes, 19, k, k, k)`` — cube-major,
        so ``df[c]`` is one cube's contiguous block.
    density:
        ``(num_cubes, k, k, k)``.
    velocity, velocity_shifted, force:
        ``(num_cubes, 3, k, k, k)``.
    """

    shape: tuple[int, int, int]
    cube_size: int
    tau: float = 1.0
    #: Collision operator used by kernel 5 (mirrors FluidGrid).
    collision_operator: str = "bgk"
    #: TRT magic number (mirrors FluidGrid).
    trt_magic: float = 3.0 / 16.0
    df: np.ndarray = field(init=False, repr=False)
    df_new: np.ndarray = field(init=False, repr=False)
    density: np.ndarray = field(init=False, repr=False)
    velocity: np.ndarray = field(init=False, repr=False)
    velocity_shifted: np.ndarray = field(init=False, repr=False)
    force: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        nx, ny, nz = (int(n) for n in self.shape)
        k = int(self.cube_size)
        if k < 1:
            raise PartitionError(f"cube_size must be positive, got {k}")
        if nx % k or ny % k or nz % k:
            raise PartitionError(
                f"grid {self.shape} is not divisible into cubes of size {k}"
            )
        self.shape = (nx, ny, nz)
        self.cube_size = k
        self.cube_counts = (nx // k, ny // k, nz // k)
        n_cubes = self.num_cubes
        self.df = np.zeros((n_cubes, Q, k, k, k), dtype=DTYPE)
        self.df_new = np.zeros((n_cubes, Q, k, k, k), dtype=DTYPE)
        self.density = np.ones((n_cubes, k, k, k), dtype=DTYPE)
        self.velocity = np.zeros((n_cubes, 3, k, k, k), dtype=DTYPE)
        self.velocity_shifted = np.zeros((n_cubes, 3, k, k, k), dtype=DTYPE)
        self.force = np.zeros((n_cubes, 3, k, k, k), dtype=DTYPE)

    # ------------------------------------------------------------------
    # index arithmetic
    # ------------------------------------------------------------------
    @property
    def tau_odd(self) -> float:
        """Odd-moment relaxation time (mirrors FluidGrid.tau_odd)."""
        if self.collision_operator == "trt":
            return self.trt_magic / (self.tau - 0.5) + 0.5
        return self.tau

    @property
    def num_cubes(self) -> int:
        """Total cube count."""
        ncx, ncy, ncz = self.cube_counts
        return ncx * ncy * ncz

    def cube_linear(self, ci, cj, ck):
        """Linear cube index of cube coordinates; vectorized."""
        ncx, ncy, ncz = self.cube_counts
        return (np.asarray(ci) * ncy + np.asarray(cj)) * ncz + np.asarray(ck)

    def cube_coords(self, c: int) -> tuple[int, int, int]:
        """Cube coordinates of a linear cube index."""
        ncx, ncy, ncz = self.cube_counts
        ck = c % ncz
        cj = (c // ncz) % ncy
        ci = c // (ncy * ncz)
        return (ci, cj, ck)

    def neighbor_cube(self, coords: tuple[int, int, int], offset: tuple[int, int, int]) -> int:
        """Linear index of the periodic neighbour cube at ``coords + offset``."""
        ncx, ncy, ncz = self.cube_counts
        ci = (coords[0] + offset[0]) % ncx
        cj = (coords[1] + offset[1]) % ncy
        ck = (coords[2] + offset[2]) % ncz
        return int(self.cube_linear(ci, cj, ck))

    def locate_flat(self, flat_global: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split raveled global node indices into (cube, within-cube) indices.

        Parameters
        ----------
        flat_global:
            C-order raveled indices into the ``(Nx, Ny, Nz)`` grid.

        Returns
        -------
        (cube_linear, local_flat):
            ``cube_linear`` indexes the cube-major arrays; ``local_flat``
            is the C-order raveled index into the cube's ``k^3`` block.
        """
        nx, ny, nz = self.shape
        k = self.cube_size
        flat_global = np.asarray(flat_global, dtype=np.int64)
        x = flat_global // (ny * nz)
        rem = flat_global % (ny * nz)
        y = rem // nz
        z = rem % nz
        ci, lx = x // k, x % k
        cj, ly = y // k, y % k
        ck, lz = z // k, z % k
        cube = self.cube_linear(ci, cj, ck)
        local = (lx * k + ly) * k + lz
        return cube, local

    # ------------------------------------------------------------------
    # layout conversion
    # ------------------------------------------------------------------
    def _to_cubes(self, global_field: np.ndarray) -> np.ndarray:
        """Global ``(C, Nx, Ny, Nz)`` (or ``(Nx,Ny,Nz)``) -> cube-major copy."""
        nx, ny, nz = self.shape
        k = self.cube_size
        ncx, ncy, ncz = self.cube_counts
        if global_field.ndim == 3:
            blocked = global_field.reshape(ncx, k, ncy, k, ncz, k)
            return np.ascontiguousarray(
                blocked.transpose(0, 2, 4, 1, 3, 5).reshape(self.num_cubes, k, k, k)
            )
        comp = global_field.shape[0]
        blocked = global_field.reshape(comp, ncx, k, ncy, k, ncz, k)
        return np.ascontiguousarray(
            blocked.transpose(1, 3, 5, 0, 2, 4, 6).reshape(
                self.num_cubes, comp, k, k, k
            )
        )

    def _to_global(self, cube_field: np.ndarray) -> np.ndarray:
        """Cube-major field -> global-layout copy (inverse of ``_to_cubes``)."""
        nx, ny, nz = self.shape
        k = self.cube_size
        ncx, ncy, ncz = self.cube_counts
        if cube_field.ndim == 4:  # (num_cubes, k, k, k)
            blocked = cube_field.reshape(ncx, ncy, ncz, k, k, k)
            return np.ascontiguousarray(
                blocked.transpose(0, 3, 1, 4, 2, 5).reshape(nx, ny, nz)
            )
        comp = cube_field.shape[1]
        blocked = cube_field.reshape(ncx, ncy, ncz, comp, k, k, k)
        return np.ascontiguousarray(
            blocked.transpose(3, 0, 4, 1, 5, 2, 6).reshape(comp, nx, ny, nz)
        )

    @classmethod
    def from_fluid_grid(cls, fluid: FluidGrid, cube_size: int) -> "CubeGrid":
        """Build cube-blocked storage holding the same state as ``fluid``."""
        cg = cls(
            fluid.shape,
            cube_size,
            tau=fluid.tau,
            collision_operator=fluid.collision_operator,
            trt_magic=fluid.trt_magic,
        )
        cg.df[...] = cg._to_cubes(fluid.df)
        cg.df_new[...] = cg._to_cubes(fluid.df_new)
        cg.density[...] = cg._to_cubes(fluid.density)
        cg.velocity[...] = cg._to_cubes(fluid.velocity)
        cg.velocity_shifted[...] = cg._to_cubes(fluid.velocity_shifted)
        cg.force[...] = cg._to_cubes(fluid.force)
        return cg

    def to_fluid_grid(self) -> FluidGrid:
        """Gather the cube-blocked state back into a global-layout grid."""
        fluid = FluidGrid(
            self.shape,
            tau=self.tau,
            collision_operator=self.collision_operator,
            trt_magic=self.trt_magic,
        )
        fluid.df[...] = self._to_global(self.df)
        fluid.df_new[...] = self._to_global(self.df_new)
        fluid.density[...] = self._to_global(self.density)
        fluid.velocity[...] = self._to_global(self.velocity)
        fluid.velocity_shifted[...] = self._to_global(self.velocity_shifted)
        fluid.force[...] = self._to_global(self.force)
        return fluid

    # ------------------------------------------------------------------
    @property
    def cube_nbytes(self) -> int:
        """Bytes of one cube's full field set (the per-cube working set)."""
        k3 = self.cube_size**3
        itemsize = np.dtype(DTYPE).itemsize
        # df + df_new + density + velocity + velocity_shifted + force
        return (Q + Q + 1 + 3 + 3 + 3) * k3 * itemsize
