"""Slab partitioning for the OpenMP-style solver (paper Algorithm 2).

The OpenMP implementation divides the 3D fluid grid into contiguous
segments of 2D y-z surfaces along the x axis ("static scheduling"), one
segment per thread.  Fiber loops are split the same way over fibers.
This module computes those 1D range partitions and the per-thread work
counts consumed by the load-imbalance metric of paper Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError

__all__ = ["Slab", "static_slabs", "chunked_ranges", "partition_sizes"]


@dataclass(frozen=True)
class Slab:
    """A contiguous index range ``[start, stop)`` along one axis."""

    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of indices in the slab."""
        return self.stop - self.start

    def indices(self) -> np.ndarray:
        """The slab's indices as an array."""
        return np.arange(self.start, self.stop, dtype=np.int64)


def static_slabs(extent: int, num_threads: int) -> list[Slab]:
    """OpenMP static schedule: split ``extent`` into ``num_threads`` slabs.

    Sizes differ by at most one; threads past the extent get empty
    slabs (a 2-node grid on 4 threads leaves two threads idle, exactly
    like OpenMP static scheduling would).
    """
    if extent < 1:
        raise PartitionError(f"extent must be positive, got {extent}")
    if num_threads < 1:
        raise PartitionError(f"num_threads must be positive, got {num_threads}")
    base = extent // num_threads
    rem = extent % num_threads
    slabs: list[Slab] = []
    start = 0
    for tid in range(num_threads):
        size = base + (1 if tid < rem else 0)
        slabs.append(Slab(start, start + size))
        start += size
    return slabs


def chunked_ranges(extent: int, chunk: int) -> list[Slab]:
    """Split ``extent`` into chunks of ``chunk`` (dynamic-schedule units)."""
    if chunk < 1:
        raise PartitionError(f"chunk must be positive, got {chunk}")
    return [Slab(s, min(s + chunk, extent)) for s in range(0, extent, chunk)]


def partition_sizes(slabs: list[Slab]) -> np.ndarray:
    """Per-slab sizes; input to the load-imbalance metric."""
    return np.asarray([s.size for s in slabs], dtype=np.int64)
