"""Per-thread owner locks (paper Section V-A).

"Every thread has a private lock to protect its subset of cubes... If a
cube can be modified by different threads, all the threads will try to
acquire the cube's owner lock (which is unique across all the threads)
before reading or writing the cube."

:class:`OwnerLocks` realizes that scheme: one lock per thread, looked up
through the cube-owner table.  Acquisition counts and contention events
(acquisitions that had to wait) are recorded for the performance model.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["LockStats", "OwnerLocks"]


@dataclass
class LockStats:
    """Counters for one owner lock."""

    acquisitions: int = 0
    contentions: int = 0


class OwnerLocks:
    """One private lock per thread, indexed by owner thread ID."""

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        self._locks = [threading.Lock() for _ in range(num_threads)]
        self._stats = [LockStats() for _ in range(num_threads)]
        self._stats_lock = threading.Lock()

    @contextmanager
    def owning(self, owner_tid: int):
        """Context manager holding ``owner_tid``'s private lock.

        A non-blocking first attempt detects contention (another thread
        currently holds the lock) before falling back to a blocking
        acquire; the event counters feed the lock-overhead term of the
        machine model.
        """
        lock = self._locks[owner_tid]
        contended = not lock.acquire(blocking=False)
        if contended:
            lock.acquire()
        try:
            with self._stats_lock:
                st = self._stats[owner_tid]
                st.acquisitions += 1
                if contended:
                    st.contentions += 1
            yield
        finally:
            lock.release()

    def stats(self, owner_tid: int) -> LockStats:
        """Counters of ``owner_tid``'s lock."""
        return self._stats[owner_tid]

    def total_acquisitions(self) -> int:
        """Sum of acquisitions over all owner locks."""
        return sum(s.acquisitions for s in self._stats)

    def total_contentions(self) -> int:
        """Sum of contended acquisitions over all owner locks."""
        return sum(s.contentions for s in self._stats)

    def reset_stats(self) -> None:
        """Zero all counters."""
        with self._stats_lock:
            self._stats = [LockStats() for _ in range(self.num_threads)]
