"""3D thread-mesh factorization (paper Section V-A).

The cube-based algorithm lays the ``n`` threads out in a 3D mesh so that
``n = P x Q x R``; cube ``(cx, cy, cz)`` is then mapped to thread
``(cx', cy', cz')`` coordinates by the distribution function.  This
module factorizes a thread count into a near-balanced ``(P, Q, R)``
triple (paper Figure 6 uses ``2 x 2 x 2`` for 8 threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError

__all__ = ["ThreadMesh", "factorize_3d"]


def factorize_3d(n: int) -> tuple[int, int, int]:
    """Near-cubic factorization ``n = P * Q * R`` with ``P >= Q >= R``.

    Chooses the factor triple minimizing ``P - R`` (the spread), i.e. the
    most cube-like mesh, which minimizes the surface-to-volume ratio of
    each thread's cube subset.
    """
    if n < 1:
        raise PartitionError(f"thread count must be positive, got {n}")
    best: tuple[int, int, int] | None = None
    for r in range(1, int(round(n ** (1.0 / 3.0))) + 2):
        if n % r:
            continue
        m = n // r
        for q in range(r, int(m**0.5) + 1):
            if m % q:
                continue
            p = m // q
            if p < q:
                continue
            cand = (p, q, r)
            if best is None or (cand[0] - cand[2]) < (best[0] - best[2]):
                best = cand
    if best is None:  # n is prime and r=1 always divides, so unreachable
        raise PartitionError(f"cannot factorize thread count {n}")  # pragma: no cover
    return best


@dataclass(frozen=True)
class ThreadMesh:
    """A ``P x Q x R`` layout of thread IDs.

    Thread ``(i, j, k)`` has the linear ID ``(i * Q + j) * R + k``; the
    linearization is only a naming convention — what matters is that the
    mapping is a bijection between mesh coordinates and ``0..n-1``.
    """

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        p, q, r = self.dims
        if p < 1 or q < 1 or r < 1:
            raise PartitionError(f"thread mesh dims must be positive, got {self.dims}")

    @classmethod
    def for_threads(cls, n: int) -> "ThreadMesh":
        """Near-cubic mesh for ``n`` threads."""
        return cls(factorize_3d(n))

    @property
    def num_threads(self) -> int:
        """Total number of threads ``P * Q * R``."""
        p, q, r = self.dims
        return p * q * r

    def linear_id(self, coords: tuple[int, int, int]) -> int:
        """Linear thread ID of mesh coordinates ``(i, j, k)``."""
        i, j, k = coords
        p, q, r = self.dims
        if not (0 <= i < p and 0 <= j < q and 0 <= k < r):
            raise PartitionError(f"coords {coords} outside mesh {self.dims}")
        return (i * q + j) * r + k

    def coords(self, tid: int) -> tuple[int, int, int]:
        """Mesh coordinates of linear thread ID ``tid``."""
        p, q, r = self.dims
        if not 0 <= tid < self.num_threads:
            raise PartitionError(f"thread id {tid} outside mesh of {self.num_threads}")
        k = tid % r
        j = (tid // r) % q
        i = tid // (q * r)
        return (i, j, k)
