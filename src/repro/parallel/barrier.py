"""Instrumented global barrier (``thread_barrier_wait`` of Algorithm 4).

Wraps :class:`threading.Barrier` and records, per crossing, how long
each thread waited.  The wait-time spread is the direct measurement of
load imbalance that feeds both the OmpP-style profile (paper Table II)
and the analytic performance model's synchronization-overhead term.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["BarrierStats", "InstrumentedBarrier"]


@dataclass
class BarrierStats:
    """Aggregated barrier statistics.

    Attributes
    ----------
    crossings:
        Number of completed barrier episodes (all threads arrived).
    total_wait_seconds:
        Sum over all threads and crossings of the time spent waiting.
    max_wait_seconds:
        Longest single wait observed.
    """

    crossings: int = 0
    total_wait_seconds: float = 0.0
    max_wait_seconds: float = 0.0

    def record(self, waited: float) -> None:
        """Fold one thread's wait time into the stats."""
        self.total_wait_seconds += waited
        self.max_wait_seconds = max(self.max_wait_seconds, waited)


class InstrumentedBarrier:
    """A reusable barrier that measures per-thread wait times.

    Parameters
    ----------
    parties:
        Number of threads that must arrive before any may proceed.
    name:
        Label used in traces (e.g. ``"after_stream"``).
    """

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"parties must be positive, got {parties}")
        self.parties = parties
        self.name = name
        self._barrier = threading.Barrier(parties)
        self._lock = threading.Lock()
        self.stats = BarrierStats()

    def wait(self) -> int:
        """Block until all parties arrive; returns the arrival index.

        Thread-safe; each call's wait duration is added to ``stats``.
        """
        start = time.perf_counter()
        index = self._barrier.wait()
        waited = time.perf_counter() - start
        with self._lock:
            self.stats.record(waited)
            if index == 0:
                self.stats.crossings += 1
        return index

    def reset_stats(self) -> None:
        """Zero the accumulated statistics."""
        with self._lock:
            self.stats = BarrierStats()
