"""Instrumented global barrier (``thread_barrier_wait`` of Algorithm 4).

Wraps :class:`threading.Barrier` and records, per crossing, how long
each thread waited.  The wait-time spread is the direct measurement of
load imbalance that feeds both the OmpP-style profile (paper Table II)
and the analytic performance model's synchronization-overhead term.

The barrier is also the library's first line of defence against
deadlock: every :meth:`InstrumentedBarrier.wait` accepts a deadline
(per-call or set at construction), and a missed deadline raises a typed
:class:`~repro.errors.BarrierTimeoutError` carrying a stall report —
which threads reached the rendezvous and which never arrived — instead
of blocking forever.  :meth:`abort` lets a dying worker release its
peers immediately so a worker death surfaces as an exception, not a
hang.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import BarrierTimeoutError

__all__ = ["BarrierStats", "InstrumentedBarrier"]


@dataclass
class BarrierStats:
    """Aggregated barrier statistics.

    Attributes
    ----------
    crossings:
        Number of completed barrier episodes (all threads arrived).
    total_wait_seconds:
        Sum over all threads and crossings of the time spent waiting.
    max_wait_seconds:
        Longest single wait observed.
    """

    crossings: int = 0
    total_wait_seconds: float = 0.0
    max_wait_seconds: float = 0.0

    def record(self, waited: float) -> None:
        """Fold one thread's wait time into the stats."""
        self.total_wait_seconds += waited
        self.max_wait_seconds = max(self.max_wait_seconds, waited)


class InstrumentedBarrier:
    """A reusable barrier that measures per-thread wait times.

    Parameters
    ----------
    parties:
        Number of threads that must arrive before any may proceed.
    name:
        Label used in traces (e.g. ``"after_stream"``).
    timeout:
        Default deadline in seconds for every :meth:`wait`; ``None``
        blocks forever (the pre-watchdog behaviour).
    """

    def __init__(
        self, parties: int, name: str = "barrier", timeout: float | None = None
    ) -> None:
        if parties < 1:
            raise ValueError(f"parties must be positive, got {parties}")
        self.parties = parties
        self.name = name
        self.timeout = timeout
        self._barrier = threading.Barrier(parties, action=self._on_release)
        self._lock = threading.Lock()
        # Threads currently blocked in this episode, and every thread
        # ever seen at this barrier (the roster).  The roster lets a
        # stall report name the threads that never arrived, not just
        # count them.
        self._arrived: list[str] = []
        self._roster: set[str] = set()
        self._aborted = False
        self.stats = BarrierStats()

    def _on_release(self) -> None:
        # Runs in exactly one thread while all parties are still inside
        # wait(); no new arrivals are possible until release.
        with self._lock:
            self._arrived.clear()

    def _stall_report(self) -> tuple[list[str], list[str]]:
        with self._lock:
            arrived = list(self._arrived)
            missing = sorted(self._roster - set(arrived))
        return arrived, missing

    def wait(self, timeout: float | None = None) -> int:
        """Block until all parties arrive; returns the arrival index.

        Thread-safe; each call's wait duration is added to ``stats``.
        A deadline (``timeout`` here, or the constructor default) that
        expires — or a peer calling :meth:`abort` — raises
        :class:`~repro.errors.BarrierTimeoutError` with a stall report.
        """
        deadline = self.timeout if timeout is None else timeout
        me = threading.current_thread().name
        with self._lock:
            self._arrived.append(me)
            self._roster.add(me)
        start = time.perf_counter()
        try:
            index = self._barrier.wait(deadline)
        except threading.BrokenBarrierError:
            arrived, missing = self._stall_report()
            with self._lock:
                if me in self._arrived:
                    self._arrived.remove(me)
            raise BarrierTimeoutError(
                self.name,
                0.0 if deadline is None else deadline,
                arrived=arrived,
                missing=missing,
            ) from None
        waited = time.perf_counter() - start
        with self._lock:
            self.stats.record(waited)
            if index == 0:
                self.stats.crossings += 1
        return index

    def abort(self) -> None:
        """Break the barrier: every current and future ``wait`` raises.

        Called by a worker that is about to die so its peers fail fast
        with a stall report instead of waiting out the full deadline.
        """
        self._aborted = True
        self._barrier.abort()

    @property
    def aborted(self) -> bool:
        """Whether :meth:`abort` has been called."""
        return self._aborted

    def reset(self) -> None:
        """Restore a broken/aborted barrier for reuse."""
        self._barrier.reset()
        self._aborted = False
        with self._lock:
            self._arrived.clear()

    def reset_stats(self) -> None:
        """Zero the accumulated statistics."""
        with self._lock:
            self.stats = BarrierStats()
