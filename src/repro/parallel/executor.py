"""Thread-team execution substrate.

Two styles, matching the two parallel programs of the paper:

* :class:`WorkerPool` — a persistent team with a fork-join ``dispatch``
  primitive, the analogue of OpenMP parallel regions (Algorithm 2/3):
  the master publishes a function, every worker runs it with its thread
  ID, and the master waits for all workers to finish.
* :func:`run_spmd` — launch a function once per thread and join, the
  analogue of the Pthreads ``create_thread(Thread_entry_fn, ...)`` loop
  in Algorithm 4 (each thread then iterates over all time steps itself,
  synchronizing only through barriers and locks).

Worker exceptions are captured and re-raised in the caller with the
originating thread ID attached.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["WorkerPool", "run_spmd", "WorkerError"]


class WorkerError(RuntimeError):
    """An exception raised inside a worker thread, with its thread ID."""

    def __init__(self, tid: int, original: BaseException) -> None:
        super().__init__(f"worker thread {tid} failed: {original!r}")
        self.tid = tid
        self.original = original


def run_spmd(num_threads: int, fn: Callable[[int], None]) -> None:
    """Run ``fn(tid)`` on ``num_threads`` fresh threads and join them all.

    The Pthreads-style entry point of Algorithm 4: every thread executes
    the whole time-stepping loop itself.  The first worker exception is
    re-raised as :class:`WorkerError` after all threads have exited.
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    errors: list[WorkerError] = []
    errors_lock = threading.Lock()

    def entry(tid: int) -> None:
        try:
            fn(tid)
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            with errors_lock:
                errors.append(WorkerError(tid, exc))

    threads = [
        threading.Thread(target=entry, args=(tid,), name=f"lbmib-worker-{tid}")
        for tid in range(num_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class WorkerPool:
    """A persistent pool with OpenMP-style fork-join dispatch.

    Usage::

        with WorkerPool(8) as pool:
            pool.dispatch(lambda tid: do_work(tid))   # a parallel region
            pool.dispatch(other_kernel)               # the next region

    Each ``dispatch`` is a full fork-join episode: all workers run the
    function, and ``dispatch`` returns only after the slowest worker
    finishes (the implicit barrier at the end of an OpenMP ``parallel
    for``).
    """

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        self._start = threading.Barrier(num_threads + 1)
        self._done = threading.Barrier(num_threads + 1)
        self._task: Callable[[int], None] | None = None
        self._shutdown = False
        self._errors: list[WorkerError] = []
        self._errors_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, args=(tid,), name=f"lbmib-pool-{tid}")
            for tid in range(num_threads)
        ]
        for t in self._threads:
            t.daemon = True
            t.start()
        self.dispatch_count = 0

    def _worker(self, tid: int) -> None:
        while True:
            self._start.wait()
            if self._shutdown:
                return
            task = self._task
            try:
                if task is not None:
                    task(tid)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                with self._errors_lock:
                    self._errors.append(WorkerError(tid, exc))
            finally:
                self._done.wait()

    def dispatch(self, fn: Callable[[int], None]) -> None:
        """Run ``fn(tid)`` on every worker; block until all complete."""
        if self._shutdown:
            raise RuntimeError("worker pool already shut down")
        self._task = fn
        self._start.wait()
        self._done.wait()
        self._task = None
        self.dispatch_count += 1
        with self._errors_lock:
            if self._errors:
                err = self._errors[0]
                self._errors.clear()
                raise err

    def shutdown(self) -> None:
        """Terminate the workers; the pool is unusable afterwards."""
        if self._shutdown:
            return
        self._shutdown = True
        self._start.wait()
        for t in self._threads:
            t.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
