"""Thread-team execution substrate.

Two styles, matching the two parallel programs of the paper:

* :class:`WorkerPool` — a persistent team with a fork-join ``dispatch``
  primitive, the analogue of OpenMP parallel regions (Algorithm 2/3):
  the master publishes a function, every worker runs it with its thread
  ID, and the master waits for all workers to finish.
* :func:`run_spmd` — launch a function once per thread and join, the
  analogue of the Pthreads ``create_thread(Thread_entry_fn, ...)`` loop
  in Algorithm 4 (each thread then iterates over all time steps itself,
  synchronizing only through barriers and locks).

Worker exceptions are captured and re-raised in the caller with the
originating thread ID attached.  Both primitives take deadlines: a
fork-join that never completes (a worker wedged on a dead peer's
barrier) raises :class:`~repro.errors.BarrierTimeoutError` naming the
threads that never finished, instead of hanging the caller forever.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import BarrierTimeoutError, InvariantError, WorkerError

__all__ = ["WorkerPool", "run_spmd", "WorkerError"]


def _primary_error(errors: list[WorkerError]) -> BaseException:
    """The most informative worker error: root causes beat timeouts.

    When one worker dies and aborts the team barriers, its peers all
    raise :class:`BarrierTimeoutError`; the caller should see the
    original death, not the collateral timeouts.  A failed physics
    invariant is surfaced as the original
    :class:`~repro.errors.InvariantError` (with the raising thread
    attached), not wrapped in a generic :class:`WorkerError`: the
    verification harness needs the typed violation with its step/field/
    cube localization intact.
    """
    for err in errors:
        if isinstance(err.original, InvariantError):
            return err.original.attach_context(tid=err.tid)
    for err in errors:
        if not isinstance(err.original, BarrierTimeoutError):
            return err
    return errors[0]


def run_spmd(
    num_threads: int,
    fn: Callable[[int], None],
    timeout: float | None = None,
) -> None:
    """Run ``fn(tid)`` on ``num_threads`` fresh threads and join them all.

    The Pthreads-style entry point of Algorithm 4: every thread executes
    the whole time-stepping loop itself.  The first worker exception is
    re-raised as :class:`WorkerError` after all threads have exited.

    ``timeout`` bounds the *total* join: if any thread is still running
    when it expires, :class:`~repro.errors.BarrierTimeoutError` is
    raised naming the stalled threads (which are daemons and cannot
    block interpreter exit).
    """
    if num_threads < 1:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    errors: list[WorkerError] = []
    errors_lock = threading.Lock()

    def entry(tid: int) -> None:
        try:
            fn(tid)
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            with errors_lock:
                errors.append(WorkerError(tid, exc))

    threads = [
        threading.Thread(
            target=entry, args=(tid,), name=f"lbmib-worker-{tid}", daemon=True
        )
        for tid in range(num_threads)
    ]
    deadline = None if timeout is None else time.monotonic() + timeout
    for t in threads:
        t.start()
    stalled: list[str] = []
    for t in threads:
        if deadline is None:
            t.join()
        else:
            t.join(max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                stalled.append(t.name)
    if stalled:
        finished = [t.name for t in threads if not t.is_alive()]
        raise BarrierTimeoutError(
            "run_spmd join",
            timeout or 0.0,
            arrived=finished,
            missing=stalled,
        )
    if errors:
        raise _primary_error(errors)


class WorkerPool:
    """A persistent pool with OpenMP-style fork-join dispatch.

    Usage::

        with WorkerPool(8) as pool:
            pool.dispatch(lambda tid: do_work(tid))   # a parallel region
            pool.dispatch(other_kernel)               # the next region

    Each ``dispatch`` is a full fork-join episode: all workers run the
    function, and ``dispatch`` returns only after the slowest worker
    finishes (the implicit barrier at the end of an OpenMP ``parallel
    for``).

    A ``timeout`` (per dispatch, or the constructor default) turns a
    wedged region into a typed :class:`~repro.errors.BarrierTimeoutError`
    rather than an indefinite hang; after that the pool is *broken* and
    must be rebuilt.
    """

    def __init__(self, num_threads: int, timeout: float | None = None) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        self.timeout = timeout
        self._start = threading.Barrier(num_threads + 1)
        self._done = threading.Barrier(num_threads + 1)
        self._task: Callable[[int], None] | None = None
        self._shutdown = False
        self._broken = False
        self._errors: list[WorkerError] = []
        self._errors_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, args=(tid,), name=f"lbmib-pool-{tid}")
            for tid in range(num_threads)
        ]
        for t in self._threads:
            t.daemon = True
            t.start()
        self.dispatch_count = 0

    def _worker(self, tid: int) -> None:
        while True:
            try:
                self._start.wait()
            except threading.BrokenBarrierError:
                return  # master timed out / pool torn down
            if self._shutdown:
                return
            task = self._task
            try:
                if task is not None:
                    task(tid)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                with self._errors_lock:
                    self._errors.append(WorkerError(tid, exc))
            finally:
                try:
                    self._done.wait()
                except threading.BrokenBarrierError:
                    return

    @property
    def broken(self) -> bool:
        """Whether a dispatch deadline expired, leaving the pool unusable."""
        return self._broken

    def _sync(self, barrier: threading.Barrier, stage: str, timeout: float | None) -> None:
        try:
            barrier.wait(timeout)
        except threading.BrokenBarrierError:
            # Break both rendezvous so no worker stays half-synced, then
            # surface the stall as a typed error naming the laggards.
            self._broken = True
            self._start.abort()
            self._done.abort()
            stalled = [t.name for t in self._threads if t.is_alive()]
            finished = [t.name for t in self._threads if not t.is_alive()]
            raise BarrierTimeoutError(
                f"worker pool {stage}",
                (self.timeout if timeout is None else timeout) or 0.0,
                arrived=finished,
                missing=stalled,
            ) from None

    def dispatch(self, fn: Callable[[int], None], timeout: float | None = None) -> None:
        """Run ``fn(tid)`` on every worker; block until all complete.

        Raises :class:`WorkerError` with the first worker exception, or
        :class:`~repro.errors.BarrierTimeoutError` if the region misses
        its deadline.  Either way the pool's task slot and error list
        are left clean, so a pool that survives (worker exception, not
        timeout) remains usable for further dispatches.
        """
        if self._shutdown:
            raise RuntimeError("worker pool already shut down")
        if self._broken:
            raise RuntimeError(
                "worker pool is broken (a previous dispatch timed out); rebuild it"
            )
        deadline = self.timeout if timeout is None else timeout
        self._task = fn
        try:
            self._sync(self._start, "dispatch start", deadline)
            self._sync(self._done, "dispatch join", deadline)
        finally:
            # Clean up unconditionally: a failed dispatch must not strand
            # a stale task or leftover errors for the next region.
            self._task = None
            with self._errors_lock:
                errors = list(self._errors)
                self._errors.clear()
        self.dispatch_count += 1
        if errors:
            raise _primary_error(errors)

    def shutdown(self) -> None:
        """Terminate the workers; the pool is unusable afterwards."""
        if self._shutdown:
            return
        self._shutdown = True
        if self._broken:
            # Workers already released by the aborted barriers.
            for t in self._threads:
                t.join(timeout=1.0)
            return
        try:
            self._start.wait(timeout=5.0)
        except threading.BrokenBarrierError:
            self._start.abort()
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
