"""Data distribution functions (paper Section V-A).

``cube2thread(cube_x, cube_y, cube_z)`` maps a cube coordinate to the
thread that owns it; ``fiber2thread(fiber_i)`` does the same for fibers.
Following the paper, the distribution function is user-definable and
three standard methods are provided: *block*, *cyclic*, and
*block-cyclic*.  All of them operate per axis against the 3D thread
mesh: the cube's coordinate along each axis picks a mesh coordinate,
and the mesh linearizes the triple into a thread ID (paper Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PartitionError
from repro.parallel.thread_mesh import ThreadMesh

__all__ = [
    "block_map_1d",
    "cyclic_map_1d",
    "block_cyclic_map_1d",
    "CubeDistribution",
    "FiberDistribution",
    "DISTRIBUTION_METHODS",
]

#: Names of the built-in distribution methods.
DISTRIBUTION_METHODS: tuple[str, ...] = ("block", "cyclic", "block_cyclic")


def block_map_1d(index: np.ndarray | int, extent: int, parts: int) -> np.ndarray:
    """Contiguous block distribution of ``extent`` items over ``parts``.

    The first ``extent % parts`` parts get one extra item, so part sizes
    differ by at most one.
    """
    index = np.asarray(index, dtype=np.int64)
    if extent < 1 or parts < 1:
        raise PartitionError(f"extent/parts must be positive ({extent}, {parts})")
    base = extent // parts
    rem = extent % parts
    cut = (base + 1) * rem  # first index handled by the small parts
    return np.where(
        index < cut,
        index // (base + 1) if base + 1 > 0 else 0,
        rem + (index - cut) // max(base, 1),
    )


def cyclic_map_1d(index: np.ndarray | int, extent: int, parts: int) -> np.ndarray:
    """Round-robin distribution: item ``i`` belongs to part ``i % parts``."""
    index = np.asarray(index, dtype=np.int64)
    if parts < 1:
        raise PartitionError(f"parts must be positive, got {parts}")
    return index % parts


def block_cyclic_map_1d(
    index: np.ndarray | int, extent: int, parts: int, block: int = 2
) -> np.ndarray:
    """Block-cyclic distribution: blocks of ``block`` items round-robin."""
    index = np.asarray(index, dtype=np.int64)
    if parts < 1 or block < 1:
        raise PartitionError(
            f"parts/block must be positive ({parts}, {block})"
        )
    return (index // block) % parts


def _map_1d(method: str, block: int) -> Callable[[np.ndarray, int, int], np.ndarray]:
    if method == "block":
        return block_map_1d
    if method == "cyclic":
        return cyclic_map_1d
    if method == "block_cyclic":
        return lambda idx, extent, parts: block_cyclic_map_1d(
            idx, extent, parts, block=block
        )
    raise PartitionError(
        f"unknown distribution method {method!r}; choose from {DISTRIBUTION_METHODS}"
    )


@dataclass(frozen=True)
class CubeDistribution:
    """``cube2thread``: maps cube coordinates onto a thread mesh.

    Parameters
    ----------
    cube_counts:
        Number of cubes along each axis ``(ncx, ncy, ncz)``.
    mesh:
        The ``P x Q x R`` thread mesh.
    method:
        ``"block"`` (default, paper Figure 6), ``"cyclic"``, or
        ``"block_cyclic"``.
    block:
        Block size for the block-cyclic method.
    """

    cube_counts: tuple[int, int, int]
    mesh: ThreadMesh
    method: str = "block"
    block: int = 2

    def __post_init__(self) -> None:
        for extent, parts in zip(self.cube_counts, self.mesh.dims):
            if extent < 1:
                raise PartitionError(
                    f"cube counts must be positive, got {self.cube_counts}"
                )
            if parts > extent:
                raise PartitionError(
                    f"thread mesh {self.mesh.dims} has more parts than cubes "
                    f"{self.cube_counts} along an axis"
                )
        _map_1d(self.method, self.block)  # validate method eagerly

    def cube2thread(self, cx, cy, cz):
        """Owning thread ID of cube ``(cx, cy, cz)``; vectorized."""
        fn = _map_1d(self.method, self.block)
        p, q, r = self.mesh.dims
        ncx, ncy, ncz = self.cube_counts
        mi = fn(np.asarray(cx, dtype=np.int64), ncx, p)
        mj = fn(np.asarray(cy, dtype=np.int64), ncy, q)
        mk = fn(np.asarray(cz, dtype=np.int64), ncz, r)
        return (mi * q + mj) * r + mk

    def owner_table(self) -> np.ndarray:
        """Full ``(ncx, ncy, ncz)`` owner map (thread ID per cube)."""
        ncx, ncy, ncz = self.cube_counts
        cx, cy, cz = np.meshgrid(
            np.arange(ncx), np.arange(ncy), np.arange(ncz), indexing="ij"
        )
        return self.cube2thread(cx, cy, cz)

    def cubes_of(self, tid: int) -> np.ndarray:
        """Cube coordinates owned by ``tid``, shape ``(m, 3)``."""
        table = self.owner_table()
        coords = np.argwhere(table == tid)
        return coords

    def load_per_thread(self) -> np.ndarray:
        """Number of cubes owned by each thread, shape ``(n_threads,)``."""
        table = self.owner_table()
        return np.bincount(table.ravel(), minlength=self.mesh.num_threads)


@dataclass(frozen=True)
class FiberDistribution:
    """``fiber2thread``: maps fiber indices to threads (1D distribution).

    The paper distributes whole fibers; one fiber is only ever assigned
    to one thread, which guarantees race-free per-fiber force writes.
    """

    num_fibers: int
    num_threads: int
    method: str = "block"
    block: int = 2

    def __post_init__(self) -> None:
        if self.num_fibers < 1:
            raise PartitionError(f"num_fibers must be positive, got {self.num_fibers}")
        if self.num_threads < 1:
            raise PartitionError(
                f"num_threads must be positive, got {self.num_threads}"
            )
        _map_1d(self.method, self.block)

    def fiber2thread(self, fiber_index):
        """Owning thread of ``fiber_index``; vectorized."""
        fn = _map_1d(self.method, self.block)
        idx = np.asarray(fiber_index, dtype=np.int64)
        # When there are more threads than fibers, the block method would
        # degenerate; clip the part count to the fiber count so every
        # fiber still gets exactly one owner.
        parts = min(self.num_threads, self.num_fibers)
        return fn(idx, self.num_fibers, parts)

    def fibers_of(self, tid: int) -> np.ndarray:
        """Fiber indices owned by ``tid``."""
        idx = np.arange(self.num_fibers, dtype=np.int64)
        return idx[self.fiber2thread(idx) == tid]

    def load_per_thread(self) -> np.ndarray:
        """Number of fibers owned by each thread."""
        idx = np.arange(self.num_fibers, dtype=np.int64)
        return np.bincount(self.fiber2thread(idx), minlength=self.num_threads)
