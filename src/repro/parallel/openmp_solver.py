"""The OpenMP-style parallel LBM-IB solver (paper Section IV).

Every kernel of Algorithm 1 becomes a fork-join *parallel region*
(paper Algorithms 2 and 3):

* fluid-node kernels (collision, streaming, velocity update, buffer
  copy) divide the 3D grid into contiguous segments of 2D y-z surfaces
  along the x axis — the OpenMP *static* schedule — one slab per
  thread;
* fiber-node kernels (forces, spreading, fiber motion) divide the
  fibers among the threads.

Force spreading uses the OpenMP reduction idiom: each thread scatters
its fibers' forces into a private grid buffer, and the buffers are
summed slab-parallel afterwards (deterministically, in thread-ID
order), avoiding write races on shared fluid nodes.

Every parallel region ends with the implicit barrier of ``dispatch``,
just as an OpenMP ``parallel for`` does — which is exactly the
synchronization overhead the cube-based algorithm of Section V removes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constants import DT, DTYPE
from repro.core.ib import forces as _forces
from repro.core.ib import motion as _motion
from repro.core.ib import spreading as _spreading
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm import collision as _collision
from repro.core.lbm import macroscopic as _macroscopic
from repro.core.lbm.boundaries import Boundary, validate_boundaries
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.lattice import E, Q
from repro.core import coupling as _coupling
from repro.errors import ConfigurationError
from repro.parallel.distribution import FiberDistribution
from repro.parallel.executor import WorkerPool
from repro.parallel.partition import Slab, chunked_ranges, static_slabs
from repro.parallel.trace import ExecutionTrace

__all__ = ["OpenMPLBMIBSolver"]


class OpenMPLBMIBSolver:
    """Slab-parallel LBM-IB solver, one fork-join region per kernel.

    Parameters
    ----------
    fluid:
        The Eulerian fluid grid.
    structure:
        The immersed structure (may be ``None`` for fluid-only runs).
    num_threads:
        Team size.
    delta:
        Smoothed delta kernel (defaults to the 4-point cosine).
    boundaries:
        Face boundary conditions, applied by the master after streaming.
    fiber_method:
        Distribution method for fibers (``"block"``/``"cyclic"``/
        ``"block_cyclic"``).
    schedule:
        ``"static"`` (paper default: contiguous y-z surface segments
        along x, one per thread) or ``"dynamic"`` (chunks of x-planes
        handed out from a shared cursor; the paper tried this and
        "obtained the same performance").
    chunk:
        Chunk size (x-planes) for the dynamic schedule.
    trace:
        Record per-kernel per-thread events into an
        :class:`~repro.parallel.trace.ExecutionTrace` (on by default).
    """

    def __init__(
        self,
        fluid: FluidGrid,
        structure: ImmersedStructure | None,
        num_threads: int,
        delta: DeltaKernel | None = None,
        boundaries: Sequence[Boundary] = (),
        fiber_method: str = "block",
        schedule: str = "static",
        chunk: int = 1,
        dt: float = DT,
        trace: bool = True,
        external_force: tuple[float, float, float] | None = None,
        fault_hook=None,
        barrier_timeout: float | None = None,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError(
                f"num_threads must be positive, got {num_threads}"
            )
        if schedule not in ("static", "dynamic"):
            raise ConfigurationError(
                f"schedule must be 'static' or 'dynamic', got {schedule!r}"
            )
        if chunk < 1:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        self.fluid = fluid
        self.structure = structure
        self.num_threads = num_threads
        self.schedule = schedule
        self.chunk = chunk
        self.delta = delta if delta is not None else default_delta()
        self.boundaries = list(boundaries)
        validate_boundaries(self.boundaries)
        self.dt = dt
        self.time_step = 0
        self.external_force = external_force
        self.fault_hook = fault_hook
        self.barrier_timeout = barrier_timeout
        if external_force is not None:
            f = np.asarray(external_force, dtype=DTYPE)
            fluid.force[...] = f[:, None, None, None]

        nx = fluid.shape[0]
        self.slabs: list[Slab] = static_slabs(nx, num_threads)
        self._chunks: list[Slab] = chunked_ranges(nx, chunk)
        self._chunk_cursor = 0
        self._sched_lock = __import__("threading").Lock()
        self._fiber_dist: list[FiberDistribution] = []
        if structure is not None:
            self._fiber_dist = [
                FiberDistribution(s.num_fibers, num_threads, method=fiber_method)
                for s in structure.sheets
            ]
        self.trace: ExecutionTrace | None = (
            ExecutionTrace(num_threads) if trace else None
        )
        #: Optional span tracer (repro.observe); None = telemetry off.
        self.tracer = None
        self._pool: WorkerPool | None = None
        # Private force buffers for the spreading reduction, allocated lazily.
        self._force_private: np.ndarray | None = None

    # ------------------------------------------------------------------
    # infrastructure
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.num_threads, timeout=self.barrier_timeout)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "OpenMPLBMIBSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _region(self, kernel: str, fn) -> None:
        """One parallel region: run ``fn(tid) -> work_items`` on the team."""
        pool = self._ensure_pool()
        trace = self.trace
        tracer = self.tracer
        step = self.time_step

        def wrapped(tid: int) -> None:
            if self.fault_hook is not None:
                # Fires inside the worker thread so an injected kill
                # takes down the right team member (once per fault).
                self.fault_hook(tid, step)
            start = time.perf_counter()
            work = fn(tid)
            if trace is not None or tracer is not None:
                elapsed = time.perf_counter() - start
                if trace is not None:
                    trace.record(step, kernel, tid, elapsed, int(work or 0))
                if tracer is not None:
                    tracer.record(kernel, tid, start, elapsed, step=step)

        pool.dispatch(wrapped)

    def _fiber_rows(self, sheet_index: int, tid: int) -> np.ndarray:
        return self._fiber_dist[sheet_index].fibers_of(tid)

    def _fluid_region(self, kernel: str, slab_body) -> None:
        """A fluid-node parallel region under the configured schedule.

        ``slab_body(slab) -> work_items`` processes one contiguous range
        of x-planes.  The *static* schedule assigns one fixed slab per
        thread (the paper's default); the *dynamic* schedule hands out
        ``chunk``-plane pieces from a shared cursor, like OpenMP's
        ``schedule(dynamic, chunk)`` — the policy the paper reports as
        performing the same.
        """
        if self.schedule == "static":
            slabs = self.slabs

            def run(tid: int) -> int:
                slab = slabs[tid]
                return slab_body(slab) if slab.size else 0

        else:
            self._chunk_cursor = 0
            chunks = self._chunks

            def run(tid: int) -> int:
                work = 0
                while True:
                    with self._sched_lock:
                        index = self._chunk_cursor
                        self._chunk_cursor += 1
                    if index >= len(chunks):
                        return work
                    work += slab_body(chunks[index])

        self._region(kernel, run)

    # ------------------------------------------------------------------
    # kernel bodies (per thread)
    # ------------------------------------------------------------------
    def _fiber_force_region(self, which: str) -> None:
        structure = self.structure
        assert structure is not None

        def body(tid: int) -> int:
            work = 0
            for si, sheet in enumerate(structure.sheets):
                rows = self._fiber_rows(si, tid)
                if rows.size == 0:
                    continue
                if which == "bending":
                    _forces.compute_bending_force(sheet, rows=rows)
                elif which == "stretching":
                    _forces.compute_stretching_force(sheet, rows=rows)
                else:
                    _forces.compute_elastic_force(sheet, rows=rows)
                work += rows.size * sheet.nodes_per_fiber
            return work

        self._region(f"compute_{which}_force_in_fibers", body)

    def _spread_region(self) -> None:
        structure = self.structure
        assert structure is not None
        fluid = self.fluid
        if self._force_private is None:
            self._force_private = np.zeros(
                (self.num_threads,) + fluid.force.shape, dtype=DTYPE
            )
        buffers = self._force_private

        def scatter(tid: int) -> int:
            buffers[tid] = 0.0
            work = 0
            for si, sheet in enumerate(structure.sheets):
                rows = self._fiber_rows(si, tid)
                if rows.size == 0:
                    continue
                _spreading.spread_forces(sheet, self.delta, buffers[tid], rows=rows)
                work += rows.size * sheet.nodes_per_fiber
            return work

        self._region("spread_force_from_fibers_to_fluid", scatter)

        slabs = self.slabs

        def reduce_(tid: int) -> int:
            slab = slabs[tid]
            if slab.size == 0:
                return 0
            region = fluid.force[:, slab.start : slab.stop]
            region[...] = buffers[0][:, slab.start : slab.stop]
            for other in range(1, self.num_threads):
                region += buffers[other][:, slab.start : slab.stop]
            if self.external_force is not None:
                region += np.asarray(self.external_force, dtype=DTYPE)[
                    :, None, None, None
                ]
            return slab.size

        self._region("spread_force_reduction", reduce_)

    def _collision_region(self) -> None:
        fluid = self.fluid

        def body(slab: Slab) -> int:
            sl = slice(slab.start, slab.stop)
            df = fluid.df[:, sl]
            density = _macroscopic.compute_density(df)
            _collision.collide(
                df,
                density,
                fluid.velocity_shifted[:, sl],
                fluid.tau,
                operator=fluid.collision_operator,
                magic_lambda=fluid.trt_magic,
            )
            return slab.size * fluid.shape[1] * fluid.shape[2]

        self._fluid_region("compute_fluid_collision", body)

    def _stream_region(self) -> None:
        fluid = self.fluid
        nx = fluid.shape[0]

        def body(slab: Slab) -> int:
            src = fluid.df[:, slab.start : slab.stop]
            for i in range(Q):
                ex, ey, ez = (int(c) for c in E[i])
                shifted = src[i]
                if ey or ez:
                    shifted = np.roll(shifted, shift=(ey, ez), axis=(1, 2))
                if ex == 0:
                    fluid.df_new[i, slab.start : slab.stop] = shifted
                else:
                    dst = (slab.indices() + ex) % nx
                    fluid.df_new[i, dst] = shifted
            return slab.size * fluid.shape[1] * fluid.shape[2]

        self._fluid_region("stream_fluid_velocity_distribution", body)
        # Physical boundaries repaired by the master (cheap face work).
        for boundary in self.boundaries:
            boundary.apply(fluid.df, fluid.df_new)

    def _update_velocity_region(self) -> None:
        fluid = self.fluid

        def body(slab: Slab) -> int:
            sl = slice(slab.start, slab.stop)
            _coupling.shifted_velocities(
                fluid.df_new[:, sl],
                fluid.force[:, sl],
                fluid.tau_odd,
                out_velocity=fluid.velocity[:, sl],
                out_velocity_shifted=fluid.velocity_shifted[:, sl],
                out_density=fluid.density[sl],
            )
            return slab.size * fluid.shape[1] * fluid.shape[2]

        self._fluid_region("update_fluid_velocity", body)

    def _move_fibers_region(self) -> None:
        structure = self.structure
        assert structure is not None
        fluid = self.fluid

        def body(tid: int) -> int:
            work = 0
            for si, sheet in enumerate(structure.sheets):
                rows = self._fiber_rows(si, tid)
                if rows.size == 0:
                    continue
                _motion.move_fibers(
                    sheet, self.delta, fluid.velocity, dt=self.dt, rows=rows
                )
                work += rows.size * sheet.nodes_per_fiber
            return work

        self._region("move_fibers", body)

    def _copy_region(self) -> None:
        fluid = self.fluid

        def body(slab: Slab) -> int:
            fluid.df[:, slab.start : slab.stop] = fluid.df_new[
                :, slab.start : slab.stop
            ]
            # match the cube solver's convention: between steps the force
            # field holds only the constant external body force (if any)
            if self.external_force is None:
                fluid.force[:, slab.start : slab.stop] = 0.0
            else:
                fluid.force[:, slab.start : slab.stop] = np.asarray(
                    self.external_force, dtype=DTYPE
                )[:, None, None, None]
            return slab.size * fluid.shape[1] * fluid.shape[2]

        self._fluid_region("copy_fluid_velocity_distribution", body)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one time step (nine parallel regions, Algorithm 1 order)."""
        if self.structure is not None:
            self._fiber_force_region("bending")
            self._fiber_force_region("stretching")
            self._fiber_force_region("elastic")
            self._spread_region()
        else:
            self.fluid.force[...] = 0.0
        self._collision_region()
        self._stream_region()
        self._update_velocity_region()
        if self.structure is not None:
            self._move_fibers_region()
        self._copy_region()
        self.time_step += 1

    def run(self, num_steps: int) -> None:
        """Run ``num_steps`` time steps."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for _ in range(num_steps):
            self.step()
