"""Persistent decision cache for tuned configurations.

Tuning costs measured wall-seconds, so its output is worth keeping: a
:class:`DecisionCache` persists every :class:`TunedDecision` as JSON
keyed by ``(machine fingerprint, workload key)``, and services and
benchmarks consult it before re-probing.

The cache is built to be *impossible to be hurt by*:

* **Schema versioning** — a file written by a different schema is
  discarded wholesale (re-tuning is cheap; misreading a stale layout
  is not).
* **Machine fingerprinting** — entries live under the
  :func:`repro.machine.fingerprint.machine_fingerprint` of the host
  that probed them; a cache restored on different hardware simply
  misses.  Other hosts' entries are preserved on write, so one cache
  file can follow a home directory across machines.
* **Corruption tolerance** — a torn, truncated or hand-mangled file
  loads as an empty cache (the failure is remembered in
  :attr:`DecisionCache.load_error` for reporting) and the next
  :meth:`~DecisionCache.put` rewrites it atomically (tmp + rename).
  The tuner never crashes on cache state; worst case it re-tunes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.machine.fingerprint import machine_fingerprint
from repro.tuning.space import TuningCandidate

__all__ = ["SCHEMA_VERSION", "DecisionCache", "TunedDecision"]

#: Bump when the on-disk layout changes; older files are discarded.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TunedDecision:
    """One cached tuning outcome for a ``(workload, machine)`` pair.

    Attributes
    ----------
    workload_key:
        The :meth:`repro.tuning.space.TuningWorkload.key` this decision
        answers.
    candidate:
        The winning configuration point.
    predicted_seconds / measured_seconds:
        The winner's modelled and probed per-simulation-step times.
    model_scale:
        Median measured/predicted ratio over the probe round —
        multiplied into future predictions on this host so the model
        recalibrates toward reality.
    probes:
        Per-probed-candidate records ``{label, predicted, measured,
        error}`` (``error`` is the signed relative prediction error),
        kept for the bench reports and the drift watchdog's baseline.
    """

    workload_key: str
    candidate: TuningCandidate
    predicted_seconds: float
    measured_seconds: float
    model_scale: float = 1.0
    probes: tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "workload_key": self.workload_key,
            "candidate": self.candidate.to_dict(),
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "model_scale": self.model_scale,
            "probes": [dict(p) for p in self.probes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TunedDecision":
        """Inverse of :meth:`to_dict` (candidate validation re-runs)."""
        return cls(
            workload_key=str(data["workload_key"]),
            candidate=TuningCandidate.from_dict(data["candidate"]),
            predicted_seconds=float(data["predicted_seconds"]),
            measured_seconds=float(data["measured_seconds"]),
            model_scale=float(data.get("model_scale", 1.0)),
            probes=tuple(dict(p) for p in data.get("probes", ())),
        )


@dataclass
class DecisionCache:
    """JSON-backed store of :class:`TunedDecision` per workload/machine.

    ``path=None`` keeps the cache purely in memory (tests, one-shot
    CLI runs).  ``fingerprint`` defaults to this host's
    :func:`~repro.machine.fingerprint.machine_fingerprint`; pass an
    explicit value to impersonate another host in tests.
    """

    path: str | os.PathLike | None = None
    fingerprint: str = field(default_factory=machine_fingerprint)
    #: Why the last load fell back to empty (``None`` when clean).
    load_error: str | None = field(default=None, init=False)
    _machines: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = os.fspath(self.path)
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._machines = {}
        self.load_error = None
        if self.path is None or not os.path.exists(self.path):
            return
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.load_error = f"unreadable cache ({exc}); re-tuning"
            return
        if not isinstance(payload, dict):
            self.load_error = "cache root is not an object; re-tuning"
            return
        if payload.get("schema") != SCHEMA_VERSION:
            self.load_error = (
                f"cache schema {payload.get('schema')!r} != "
                f"{SCHEMA_VERSION}; re-tuning"
            )
            return
        machines = payload.get("machines")
        if not isinstance(machines, dict):
            self.load_error = "cache has no machine table; re-tuning"
            return
        self._machines = {
            str(fp): dict(entries)
            for fp, entries in machines.items()
            if isinstance(entries, dict)
        }

    def _save(self) -> None:
        if self.path is None:
            return
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{self.path}.tmp"
        payload = {"schema": SCHEMA_VERSION, "machines": self._machines}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    def get(self, workload_key: str) -> TunedDecision | None:
        """The cached decision for this host, or ``None``.

        An entry that fails to deserialise (a future candidate field,
        a hand-edited file) is treated as a miss, not an error.
        """
        entry = self._machines.get(self.fingerprint, {}).get(workload_key)
        if entry is None:
            return None
        try:
            return TunedDecision.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, decision: TunedDecision) -> None:
        """Store ``decision`` under this host's fingerprint and persist."""
        self._machines.setdefault(self.fingerprint, {})[
            decision.workload_key
        ] = decision.to_dict()
        self._save()

    def invalidate(self, workload_key: str | None = None) -> None:
        """Drop this host's entry for ``workload_key`` (or all of them)."""
        entries = self._machines.get(self.fingerprint)
        if entries is None:
            return
        if workload_key is None:
            entries.clear()
        else:
            entries.pop(workload_key, None)
        self._save()

    def __len__(self) -> int:
        return len(self._machines.get(self.fingerprint, {}))
