"""Auto-tuning of the cube size (paper future work).

The paper's conclusion lists "performing auto-tuning and code
optimizations on individual computational kernels" as future work; the
cube edge ``k`` is the central tunable of the cube-based algorithm: a
larger ``k`` means fewer cubes (less bookkeeping, fewer lock
acquisitions) but a bigger per-cube working set (worse cache fit).

Two tuners are provided:

* :func:`suggest_cube_size` — model-guided: the largest valid ``k``
  whose per-cube working set still fits the machine's per-core L2
  share (the locality criterion of paper Section V-A).
* :func:`autotune_cube_size` — empirical: time a few real steps of the
  cube solver for each candidate ``k`` on this machine and return the
  fastest.

The full-configuration tuner (variant x cube size x scatter x
precision x batch width) lives in :mod:`repro.tuning.autotuner`; this
module keeps the narrow cube-only entry points and the shared
interleaved measurement discipline (:func:`interleaved_min_seconds`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.parallel.cubes import CubeGrid

__all__ = [
    "valid_cube_sizes",
    "suggest_cube_size",
    "TuningResult",
    "autotune_cube_size",
    "interleaved_min_seconds",
]


def valid_cube_sizes(shape: tuple[int, int, int]) -> list[int]:
    """Cube edges that divide every grid dimension, ascending."""
    if any(n < 1 for n in shape):
        raise ConfigurationError(f"grid shape must be positive, got {shape}")
    g = math.gcd(math.gcd(shape[0], shape[1]), shape[2])
    return [k for k in range(1, g + 1) if g % k == 0]


def suggest_cube_size(
    shape: tuple[int, int, int], machine: MachineSpec
) -> int:
    """Largest valid ``k`` whose cube working set fits the L2 share.

    One L2 instance is shared by ``shared_by`` cores; a cube's field
    set is 48 doubles per node (see
    :attr:`repro.parallel.cubes.CubeGrid.cube_nbytes`).
    """
    l2 = machine.cache(2)
    budget = l2.size_bytes / l2.shared_by
    best = 1
    for k in valid_cube_sizes(shape):
        probe = CubeGrid(shape, k)
        if probe.cube_nbytes <= budget:
            best = k
    return best


@dataclass(frozen=True)
class TuningResult:
    """Outcome of an empirical cube-size sweep.

    ``seconds_by_size`` holds the per-candidate **min over repetitions**
    of the timed-block wall time — the noise-robust statistic of the
    interleaved measurement discipline (see :func:`autotune_cube_size`).
    """

    best_cube_size: int
    seconds_by_size: dict[int, float]

    def as_rows(self) -> list[list[object]]:
        """Table rows ``[k, seconds, best?]`` sorted by ``k``."""
        return [
            [k, round(s, 4), "*" if k == self.best_cube_size else ""]
            for k, s in sorted(self.seconds_by_size.items())
        ]


def interleaved_min_seconds(
    runners: Sequence[Callable[[], None]],
    repeats: int = 3,
    budget_seconds: float | None = None,
) -> tuple[list[float], int]:
    """Round-robin timing of ``runners``; per-runner min over rounds.

    Timing each candidate in one contiguous block lets a single
    transient stall (page reclaim, a sibling process, turbo drift)
    inflate exactly one candidate and crown the wrong winner.  Instead
    the candidates are measured in interleaved rounds — round 0 times
    runner 0, 1, 2, ..., round 1 times them again in the same order —
    so slow moments are spread across the field, and each candidate
    reports its **minimum** round (the classic best-of-R noise floor)
    rather than a sum that accumulates every stall it was unlucky
    enough to absorb.

    ``budget_seconds`` bounds the wall clock: after each completed
    round the elapsed time is checked and no new round starts beyond
    the budget (the first round always runs in full so every runner is
    measured at least once).  Returns ``(min_seconds, rounds_done)``.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be positive, got {repeats}")
    if not runners:
        raise ConfigurationError("no runners to time")
    best = [math.inf] * len(runners)
    started = time.perf_counter()
    rounds_done = 0
    for _ in range(repeats):
        for i, runner in enumerate(runners):
            t0 = time.perf_counter()
            runner()
            elapsed = time.perf_counter() - t0
            if elapsed < best[i]:
                best[i] = elapsed
        rounds_done += 1
        if (
            budget_seconds is not None
            and time.perf_counter() - started >= budget_seconds
        ):
            break
    return best, rounds_done


def autotune_cube_size(
    config: SimulationConfig,
    candidates: list[int] | None = None,
    steps: int = 3,
    warmup_steps: int = 1,
    repeats: int = 3,
) -> TuningResult:
    """Time the real cube solver per candidate ``k``; return the fastest.

    The candidates are timed in **interleaved rounds** (every candidate
    runs ``steps`` steps, then the field repeats, ``repeats`` times)
    and each candidate reports its min-of-R round — see
    :func:`interleaved_min_seconds` for why a contiguous
    one-block-per-candidate sweep misattributes transient stalls.

    Parameters
    ----------
    config:
        The simulation to tune (its ``cube_size`` is overridden per
        candidate; ``solver`` is forced to ``"cube"``).
    candidates:
        Cube edges to try; defaults to every valid size except 1
        (unit cubes exist only as a degenerate case).
    steps / warmup_steps:
        Timed and untimed steps per candidate per round.
    repeats:
        Interleaved rounds (the R of min-of-R).
    """
    from dataclasses import replace

    from repro.api import Simulation

    if steps < 1:
        raise ConfigurationError(f"steps must be positive, got {steps}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be positive, got {repeats}")
    if candidates is None:
        candidates = [k for k in valid_cube_sizes(config.fluid_shape) if k > 1]
        if not candidates:
            candidates = [1]
    for k in candidates:
        if any(n % k for n in config.fluid_shape):
            raise ConfigurationError(
                f"candidate cube size {k} does not divide {config.fluid_shape}"
            )

    from repro.errors import PartitionError

    sims: list[tuple[int, object]] = []
    try:
        for k in candidates:
            candidate_config = replace(config, solver="cube", cube_size=k)
            try:
                sim = Simulation(candidate_config)
            except PartitionError:
                # e.g. a single giant cube cannot host the thread mesh;
                # an infeasible candidate is simply not a contender
                continue
            if warmup_steps:
                sim.run(warmup_steps)
            sims.append((k, sim))
        if not sims:
            raise ConfigurationError(
                f"no feasible cube-size candidate among {candidates} for "
                f"grid {config.fluid_shape} with {config.num_threads} threads"
            )
        mins, _ = interleaved_min_seconds(
            [lambda s=sim: s.run(steps) for _, sim in sims], repeats=repeats
        )
    finally:
        for _, sim in sims:
            sim.close()
    seconds = {k: mins[i] for i, (k, _) in enumerate(sims)}
    best = min(seconds, key=seconds.get)
    return TuningResult(best_cube_size=best, seconds_by_size=seconds)
