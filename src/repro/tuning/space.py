"""Tuning search space: workload keys and candidate configurations.

The autotuner searches over the repo's five hand-picked tunables —
solver variant, cube size, scatter method, precision policy and batch
width — but only within the **oracle-safe** region: every variant in
:data:`ORACLE_SAFE_VARIANTS` is pinned equivalent to the sequential
reference by the verification suite, and :func:`allowed_precisions`
only admits precisions that satisfy the *requested* precision contract
(a caller who asked for ``float64`` demanded bit-exactness; one who
asked for ``float32`` accepts anything at least as accurate as the
float32 tolerance band).  A tuned decision can therefore change how
fast an answer arrives, never which answer arrives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.config import SimulationConfig
from repro.errors import ConfigurationError

__all__ = [
    "ORACLE_SAFE_VARIANTS",
    "DEFAULT_VARIANTS",
    "TuningCandidate",
    "TuningWorkload",
    "allowed_precisions",
    "candidate_space",
]

#: Variants the verification suite pins equivalent to ``sequential``
#: (solo variants bit-identical at float64; batched slots additionally
#: composition-independent).  The tuner refuses anything else.
ORACLE_SAFE_VARIANTS = ("sequential", "fused", "inplace", "batched", "cube")

#: Variants searched when the caller does not restrict the set.  The
#: cube variant joins automatically when the grid admits a usable edge
#: (see :func:`candidate_space`).
DEFAULT_VARIANTS = ("sequential", "fused", "inplace", "batched")

#: Cube candidates below this edge drown in per-cube Python dispatch;
#: above this cube count the dispatch loop dominates the step outright.
_MIN_CUBE_EDGE = 4
_MAX_CUBES = 512


def allowed_precisions(requested: str) -> tuple[str, ...]:
    """Precision policies satisfying the ``requested`` contract.

    * ``float64`` — bit-exactness against the golden baselines is part
      of the ask; only float64 qualifies.
    * ``float32`` — the caller accepts the float32 tolerance band, so
      ``mixed`` (float32 storage, float64 reductions — strictly more
      accurate) is also admissible.
    * ``mixed`` — float64 reductions are part of the contract; plain
      float32 would weaken it, so only mixed qualifies.
    """
    table = {
        "float64": ("float64",),
        "float32": ("float32", "mixed"),
        "mixed": ("mixed",),
    }
    if requested not in table:
        raise ConfigurationError(
            f"unknown precision {requested!r}; expected one of {sorted(table)}"
        )
    return table[requested]


@dataclass(frozen=True)
class TuningWorkload:
    """What the tuner optimises *for*: the concrete problem shape.

    Attributes
    ----------
    fluid_shape / fiber_shape:
        Grid dimensions and total fiber-sheet node layout
        (``(0, 0)`` when no structure is immersed).
    batch_size:
        Concurrent compatible simulations the caller intends to run
        (a service workload); ``1`` is a solo run.
    precision:
        The *requested* precision contract (see
        :func:`allowed_precisions`), not necessarily the stored one.
    """

    fluid_shape: tuple[int, int, int]
    fiber_shape: tuple[int, int]
    batch_size: int = 1
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        allowed_precisions(self.precision)

    @classmethod
    def from_config(
        cls, config: SimulationConfig, batch_size: int = 1
    ) -> "TuningWorkload":
        """The workload a :class:`SimulationConfig` describes."""
        sc = config.structure
        if sc.kind == "none":
            fiber_shape = (0, 0)
        else:
            fibers = sc.num_fibers * (
                sc.num_sheets if sc.kind == "parallel_sheets" else 1
            )
            fiber_shape = (fibers, sc.nodes_per_fiber)
        return cls(
            fluid_shape=tuple(config.fluid_shape),
            fiber_shape=fiber_shape,
            batch_size=batch_size,
            precision=config.precision,
        )

    @property
    def fluid_nodes(self) -> int:
        """Total fluid grid nodes."""
        return self.fluid_shape[0] * self.fluid_shape[1] * self.fluid_shape[2]

    @property
    def fiber_nodes(self) -> int:
        """Total immersed fiber nodes."""
        return self.fiber_shape[0] * self.fiber_shape[1]

    def key(self) -> str:
        """Stable decision-cache key for this workload."""
        shape = "x".join(str(n) for n in self.fluid_shape)
        fibers = "x".join(str(n) for n in self.fiber_shape)
        return f"{shape}/fib{fibers}/b{self.batch_size}/{self.precision}"


@dataclass(frozen=True)
class TuningCandidate:
    """One point of the search space.

    ``cube_size`` is meaningful only for the cube variant (``0``
    otherwise); ``batch_width`` only for the batched variant (``1``
    otherwise).  ``scatter`` is ``"auto"``, ``"bincount"`` or
    ``"add_at"`` — forced for the run the candidate describes.
    """

    variant: str
    precision: str = "float64"
    scatter: str = "auto"
    cube_size: int = 0
    batch_width: int = 1

    def __post_init__(self) -> None:
        if self.variant not in ORACLE_SAFE_VARIANTS:
            raise ConfigurationError(
                f"variant {self.variant!r} is not oracle-verified; tunable "
                f"variants are {ORACLE_SAFE_VARIANTS}"
            )
        if self.scatter not in ("auto", "bincount", "add_at"):
            raise ConfigurationError(
                f"unknown scatter method {self.scatter!r}; expected "
                "'auto', 'bincount' or 'add_at'"
            )
        if self.variant == "cube" and self.cube_size < 1:
            raise ConfigurationError("cube candidates need a positive cube_size")
        if self.batch_width < 1:
            raise ConfigurationError(
                f"batch_width must be positive, got {self.batch_width}"
            )

    def label(self) -> str:
        """Compact display / cache label, e.g. ``fused/float32/add_at``."""
        variant = self.variant
        if self.variant == "cube":
            variant = f"cube[k={self.cube_size}]"
        elif self.variant == "batched" and self.batch_width > 1:
            variant = f"batched[w={self.batch_width}]"
        return f"{variant}/{self.precision}/{self.scatter}"

    def to_config(self, base: SimulationConfig) -> SimulationConfig:
        """``base`` re-pointed at this candidate's variant and precision.

        The physics (grid, tau, structure, boundaries, operator) is
        untouched — a tuned config answers the same question.
        """
        return replace(
            base,
            solver=self.variant,
            precision=self.precision,
            cube_size=self.cube_size if self.variant == "cube" else base.cube_size,
            num_threads=1,
        )

    def to_dict(self) -> dict:
        """JSON-safe form for the decision cache."""
        return {
            "variant": self.variant,
            "precision": self.precision,
            "scatter": self.scatter,
            "cube_size": self.cube_size,
            "batch_width": self.batch_width,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuningCandidate":
        """Inverse of :meth:`to_dict` (validation re-runs)."""
        return cls(
            variant=str(data["variant"]),
            precision=str(data.get("precision", "float64")),
            scatter=str(data.get("scatter", "auto")),
            cube_size=int(data.get("cube_size", 0)),
            batch_width=int(data.get("batch_width", 1)),
        )


def _cube_edges(shape: tuple[int, int, int]) -> list[int]:
    """Usable cube edges: divide every axis, are >= the dispatch floor,
    and keep the Python per-cube loop below :data:`_MAX_CUBES` cubes."""
    g = math.gcd(math.gcd(shape[0], shape[1]), shape[2])
    nodes = shape[0] * shape[1] * shape[2]
    return [
        k
        for k in range(_MIN_CUBE_EDGE, g + 1)
        if g % k == 0 and nodes // k**3 <= _MAX_CUBES
    ]


def candidate_space(
    workload: TuningWorkload,
    variants: tuple[str, ...] | None = None,
    scatter_methods: tuple[str, ...] | None = None,
) -> list[TuningCandidate]:
    """Every candidate the tuner may legally consider for ``workload``.

    The cross product of admissible variants, the precisions satisfying
    the workload's requested contract, and the scatter methods — except
    that the scatter axis collapses to ``"auto"`` when no structure is
    immersed (kernel 4 never runs), the cube variant only contributes
    edges that divide the grid without drowning in per-cube dispatch,
    and the batched variant runs at the workload's batch size (width 1
    for a solo workload, where it still amortises nothing but stays an
    honest candidate).
    """
    if variants is None:
        chosen = list(DEFAULT_VARIANTS)
        if _cube_edges(workload.fluid_shape):
            chosen.append("cube")
    else:
        chosen = list(variants)
        for v in chosen:
            if v not in ORACLE_SAFE_VARIANTS:
                raise ConfigurationError(
                    f"variant {v!r} is not oracle-verified; tunable "
                    f"variants are {ORACLE_SAFE_VARIANTS}"
                )
    if scatter_methods is None:
        scatter_methods = (
            ("add_at", "bincount") if workload.fiber_nodes else ("auto",)
        )
    precisions = allowed_precisions(workload.precision)

    out: list[TuningCandidate] = []
    for variant in chosen:
        if variant == "cube":
            edges = _cube_edges(workload.fluid_shape)
        else:
            edges = [0]
        width = workload.batch_size if variant == "batched" else 1
        for edge in edges:
            for precision in precisions:
                for scatter in scatter_methods:
                    out.append(
                        TuningCandidate(
                            variant=variant,
                            precision=precision,
                            scatter=scatter,
                            cube_size=edge,
                            batch_width=width,
                        )
                    )
    if not out:
        raise ConfigurationError(
            f"empty candidate space for workload {workload.key()!r} "
            f"with variants {chosen}"
        )
    return out
