"""Command-line autotuner report: ``python -m repro.tuning``.

Prints the predicted ranking, probe timings and cached decision for a
workload, mirroring the ``python -m repro.experiments`` pattern::

    python -m repro.tuning                          # Table-I grid
    python -m repro.tuning --shape 62x32x32 --variant-set fused,inplace
    python -m repro.tuning --precision float32 --batch-size 4
    python -m repro.tuning --cache ~/.lbmib-tuning.json --force
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError

__all__ = ["main"]


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"shape must be NXxNYxNZ (e.g. 62x32x32), got {text!r}"
        )
    try:
        shape = tuple(int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(f"non-integer shape {text!r}") from None
    if any(n < 1 for n in shape):
        raise argparse.ArgumentTypeError(f"shape must be positive, got {text!r}")
    return shape


def _parse_variants(text: str) -> tuple[str, ...]:
    return tuple(v.strip() for v in text.split(",") if v.strip())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning", description=__doc__
    )
    parser.add_argument(
        "--shape", type=_parse_shape, default=(62, 32, 32),
        help="fluid grid NXxNYxNZ (default: the Table-I profiling grid)",
    )
    parser.add_argument(
        "--fibers", type=int, default=26,
        help="fiber sheet edge (NxN nodes; 0 = no immersed structure)",
    )
    parser.add_argument(
        "--variant-set", type=_parse_variants, default=None, metavar="A,B,...",
        help="restrict the variant axis (default: all oracle-safe variants)",
    )
    parser.add_argument(
        "--precision", default="float64",
        choices=("float64", "float32", "mixed"),
        help="requested precision contract (gates the precision axis)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1,
        help="concurrent compatible simulations the workload serves",
    )
    parser.add_argument("--steps", type=int, default=3, help="timed steps per probe round")
    parser.add_argument("--repeats", type=int, default=3, help="interleaved probe rounds")
    parser.add_argument("--top-n", type=int, default=3, help="predictions to probe")
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the probe rounds",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="decision-cache JSON path (default: in-memory only)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="re-probe even when the cache holds a decision",
    )
    args = parser.parse_args(argv)

    from repro.config import SimulationConfig, StructureConfig
    from repro.tuning.autotuner import Autotuner
    from repro.tuning.cache import DecisionCache

    structure = (
        StructureConfig(kind="none")
        if args.fibers == 0
        else StructureConfig(
            kind="flat_sheet", num_fibers=args.fibers, nodes_per_fiber=args.fibers
        )
    )
    try:
        config = SimulationConfig(
            fluid_shape=args.shape, structure=structure, precision=args.precision
        )
        cache = DecisionCache(path=args.cache)
        tuner = Autotuner(
            cache=cache,
            probe_top_n=args.top_n,
            probe_steps=args.steps,
            probe_repeats=args.repeats,
            budget_seconds=args.budget,
        )
        report = tuner.tune(
            config,
            batch_size=args.batch_size,
            variants=args.variant_set,
            force=args.force,
        )
    except ConfigurationError as exc:
        parser.error(str(exc))

    decision = report.decision
    print(f"workload  : {report.workload.key()}")
    print(f"machine   : {cache.fingerprint}")
    if args.cache:
        status = "hit" if report.from_cache else "tuned and stored"
        print(f"cache     : {args.cache} ({status})")
        if cache.load_error:
            print(f"            note: {cache.load_error}")
    if report.from_cache:
        print(f"decision  : {decision.candidate.label()} (cached)")
        print(f"  measured {decision.measured_seconds * 1e3:.3f} ms/step, "
              f"model_scale {decision.model_scale:.3g}")
        return 0

    print()
    print(f"  {'candidate':<32} {'pred ms':>9} {'meas ms':>9} {'err':>7} best")
    for label, pred, meas, err, best in report.as_rows():
        meas_s = f"{meas:9.4f}" if meas != "" else f"{'-':>9}"
        err_s = f"{err:+7.2f}" if err != "" else f"{'-':>7}"
        print(f"  {label:<32} {pred:>9.4f} {meas_s} {err_s} {best:>4}")
    print()
    print(f"decision  : {decision.candidate.label()}")
    print(
        f"  predicted {decision.predicted_seconds * 1e3:.4f} ms/step, "
        f"measured {decision.measured_seconds * 1e3:.4f} ms/step"
    )
    print(f"  model_scale -> {decision.model_scale:.3g} "
          "(median measured/predicted; recalibrates the next prediction)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
