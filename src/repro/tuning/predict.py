"""Predict stage: model-guided ranking of tuning candidates.

Combines the two analytic layers the repo already calibrates —
:class:`repro.machine.perf_model.PerformanceModel` step times (the
absolute Table-I scale) and :mod:`repro.machine.cache_sim` working-set
capacity arguments — into one per-candidate step-time estimate:

``t = base * memory_factor * compute_factor + dispatch + scatter``

* ``base`` — the calibrated sequential step time for this problem size.
* ``memory_factor`` — the fitted memory-stall share scaled by the
  candidate's byte traffic relative to the float64 global layout
  (:func:`repro.machine.workload.step_bytes`), further discounted by
  cache residency: :func:`repro.machine.cache_sim.working_set_nodes`
  says how much of the grid the last-level cache keeps resident, and
  resident traffic stalls at a fraction of the DRAM cost.
* ``compute_factor`` — per-variant pass-structure constant (fused and
  in-place variants run fewer sweeps over the lattice).
* ``dispatch`` — interpreter-level overheads the C-oriented model does
  not see: the per-cube Python loop of the cube solver and the
  per-sweep dispatch of the batched solver (amortised across its
  width).
* ``scatter`` — the kernel-4 implementation delta, using the crossover
  constants recorded in ``benchmarks/results/bench_fused.txt``
  (``add.at`` pays per contribution, ``bincount`` pays a dense
  per-grid-node sweep on top).

Absolute accuracy is *not* the goal — the probe stage measures the
top-ranked candidates and records prediction-vs-measured error, and
the resulting ``model_scale`` recalibrates future predictions (see
:mod:`repro.tuning.autotuner`).  What the predict stage must get right
is the *ordering*, so only strong, structurally-motivated effects are
modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine import workload as wl
from repro.machine.cache_sim import record_bytes, working_set_nodes
from repro.machine.perf_model import PerformanceModel
from repro.machine.spec import MachineSpec, abu_dhabi
from repro.tuning.space import TuningCandidate, TuningWorkload

__all__ = [
    "Prediction",
    "predict_ranking",
    "predict_step_seconds",
]

#: Byte-traffic layout of each variant (see repro.machine.workload):
#: the fused/batched/cube steps keep post-collision populations cache
#: resident across streaming ("cube" accounting); the in-place variant
#: additionally elides the copy kernel and the second lattice.
_VARIANT_LAYOUT = {
    "sequential": "global",
    "fused": "cube",
    "batched": "cube",
    "cube": "cube",
    "inplace": "inplace",
}

#: Pass-structure factors relative to the sequential step: the fused
#: variants run collision+streaming as one lattice sweep instead of
#: two-plus-copy, the in-place variant drops the copy entirely.  These
#: are deliberately mild — the byte model carries most of the signal,
#: and the probe stage corrects the residue.
_VARIANT_COMPUTE_FACTOR = {
    "sequential": 1.0,
    "fused": 0.92,
    "batched": 0.92,
    "cube": 1.0,
    "inplace": 0.88,
}

#: Stored values per fluid node per layout family (cache_sim traces):
#: 48 for two-lattice records, 29 single-lattice.
_RECORD_VALUES = {"global": 48, "cube": 48, "inplace": 29}

#: Interpreter dispatch of the cube solver's per-cube Python loop,
#: seconds per cube per step.
PER_CUBE_DISPATCH_SECONDS = 5e-5

#: Fixed interpreter dispatch of one batched sweep, amortised across
#: the batch width.
BATCH_DISPATCH_SECONDS = 1.5e-4

#: Kernel-4 scatter cost constants, from the crossover measured in
#: ``benchmarks/results/bench_fused.txt`` (43k contributions on a
#: 63k-node grid: add.at 0.31 ms, bincount 0.52 ms).
ADD_AT_SECONDS_PER_CONTRIB = 7.2e-9
BINCOUNT_SECONDS_PER_VALUE = 2.3e-9

#: Contributions per fiber node: the 4x4x4 influential domain.
_STENCIL_VOLUME = 64

#: Fraction of the DRAM stall cost that cache-resident traffic still
#: pays (L2/L3 latency is hidden but not free).
_RESIDENT_STALL_FRACTION = 0.25


@dataclass(frozen=True)
class Prediction:
    """One candidate's modelled cost.

    ``seconds`` is the predicted wall time to advance **one simulation
    by one step** — for batched candidates the sweep time divided by
    the width, so solo and batched candidates compare on the same
    axis.  ``breakdown`` names the model terms for reporting.
    """

    candidate: TuningCandidate
    seconds: float
    breakdown: dict[str, float]

    def to_dict(self) -> dict:
        """JSON-safe form for benchmark records."""
        return {
            "candidate": self.candidate.to_dict(),
            "label": self.candidate.label(),
            "seconds": self.seconds,
            "breakdown": dict(self.breakdown),
        }


def _scatter_seconds(workload: TuningWorkload, scatter: str) -> float:
    """Modelled per-step cost of the forced kernel-4 scatter method."""
    contribs = workload.fiber_nodes * _STENCIL_VOLUME
    if contribs == 0:
        return 0.0
    add_at = contribs * ADD_AT_SECONDS_PER_CONTRIB
    bincount = (3 * workload.fluid_nodes + contribs) * BINCOUNT_SECONDS_PER_VALUE
    if scatter == "add_at":
        return add_at
    if scatter == "bincount":
        return bincount
    return min(add_at, bincount)  # "auto" picks the winner at runtime


def predict_step_seconds(
    workload: TuningWorkload,
    candidate: TuningCandidate,
    machine: MachineSpec | None = None,
    model_scale: float = 1.0,
) -> Prediction:
    """Modelled per-simulation-step seconds of one candidate.

    ``model_scale`` is the measured/predicted recalibration factor a
    previous probe round stored in the decision cache (1.0 when no
    probes have run on this host yet).
    """
    if model_scale <= 0:
        raise ConfigurationError(
            f"model_scale must be positive, got {model_scale}"
        )
    machine = machine if machine is not None else abu_dhabi()
    model = PerformanceModel(machine)
    fiber_shape = workload.fiber_shape if workload.fiber_nodes else (1, 0)
    base = model.sequential_step(workload.fluid_shape, fiber_shape).total_seconds

    layout = _VARIANT_LAYOUT[candidate.variant]
    from repro.core.backend import dtype_bytes

    itemsize = dtype_bytes(candidate.precision)
    ratio = wl.step_bytes(
        workload.fluid_nodes, workload.fiber_nodes, layout, dtype_bytes=itemsize
    ) / wl.step_bytes(workload.fluid_nodes, workload.fiber_nodes, "global")

    # Cache residency: the fraction of the grid the last-level cache
    # keeps resident pays only a fraction of the DRAM stall cost.  The
    # in-place single-lattice record (29 values) and 4-byte storage
    # both raise residency — the working-set argument of cache_sim.
    llc = machine.cache(3)
    resident_nodes = working_set_nodes(
        llc.size_bytes, record_bytes(_RECORD_VALUES[layout], candidate.precision)
    )
    residency = min(1.0, resident_nodes / workload.fluid_nodes)
    stall_scale = _RESIDENT_STALL_FRACTION + (1.0 - _RESIDENT_STALL_FRACTION) * (
        1.0 - residency
    )

    share = model.memory_share(solver="openmp", weak=False)
    memory_factor = (1.0 - share) + share * ratio * stall_scale
    compute_factor = _VARIANT_COMPUTE_FACTOR[candidate.variant]
    kernel_seconds = base * memory_factor * compute_factor

    dispatch = 0.0
    if candidate.variant == "cube":
        num_cubes = workload.fluid_nodes // candidate.cube_size**3
        dispatch = num_cubes * PER_CUBE_DISPATCH_SECONDS
    elif candidate.variant == "batched":
        dispatch = BATCH_DISPATCH_SECONDS / candidate.batch_width

    scatter = _scatter_seconds(workload, candidate.scatter)
    seconds = (kernel_seconds + dispatch + scatter) * model_scale
    return Prediction(
        candidate=candidate,
        seconds=seconds,
        breakdown={
            "base": base,
            "memory_factor": memory_factor,
            "compute_factor": compute_factor,
            "byte_ratio": ratio,
            "cache_residency": residency,
            "dispatch": dispatch,
            "scatter": scatter,
            "model_scale": model_scale,
        },
    )


def predict_ranking(
    workload: TuningWorkload,
    candidates: list[TuningCandidate],
    machine: MachineSpec | None = None,
    model_scale: float = 1.0,
) -> list[Prediction]:
    """All candidates' predictions, fastest first (ties break on label
    so the ranking is deterministic across runs)."""
    if not candidates:
        raise ConfigurationError("no candidates to rank")
    predictions = [
        predict_step_seconds(workload, c, machine=machine, model_scale=model_scale)
        for c in candidates
    ]
    predictions.sort(key=lambda p: (p.seconds, p.candidate.label()))
    return predictions
