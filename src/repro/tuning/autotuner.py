"""The workload-adaptive autotuner: predict, probe, cache, decide.

:class:`Autotuner.tune` runs the full loop for one workload:

1. **Cache** — a valid :class:`~repro.tuning.cache.TunedDecision` for
   this ``(workload key, machine fingerprint)`` short-circuits
   everything (services skip re-tuning on restart).
2. **Predict** — rank the oracle-safe candidate space with the machine
   model (:mod:`repro.tuning.predict`), recalibrated by any previously
   stored ``model_scale``.
3. **Probe** — measure the top-N predictions with short interleaved
   runs under a wall-clock budget (:mod:`repro.tuning.probe`),
   recording the signed relative prediction error per candidate.
4. **Decide** — the measured winner becomes the cached decision, along
   with the median measured/predicted ratio as the next round's
   ``model_scale``.

Bit-identity safety is structural, not checked after the fact: the
candidate space only contains variants the verification suite pins
against the sequential reference, and only precisions satisfying the
workload's requested contract (see :mod:`repro.tuning.space`); a test
additionally runs a tuned decision through
:class:`repro.verify.DifferentialOracle`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.machine.spec import MachineSpec
from repro.tuning.cache import DecisionCache, TunedDecision
from repro.tuning.predict import Prediction, predict_ranking
from repro.tuning.probe import ProbeResult, probe_candidates
from repro.tuning.space import TuningWorkload, candidate_space

__all__ = ["Autotuner", "TuneReport"]


@dataclass
class TuneReport:
    """Everything one :meth:`Autotuner.tune` call learned.

    ``from_cache`` marks a cache hit (``predictions`` and ``probes``
    are then empty — nothing ran).  ``prediction_errors`` maps probed
    candidate labels to signed relative error
    ``(predicted - measured) / measured``.
    """

    workload: TuningWorkload
    decision: TunedDecision
    from_cache: bool = False
    predictions: list[Prediction] = field(default_factory=list)
    probes: list[ProbeResult] = field(default_factory=list)

    @property
    def prediction_errors(self) -> dict[str, float]:
        """Signed relative prediction error per probed candidate."""
        return {
            p["label"]: p["error"]
            for p in self.decision.probes
            if p.get("error") is not None
        }

    def best_config(self, base: SimulationConfig) -> SimulationConfig:
        """``base`` re-pointed at the tuned decision."""
        return self.decision.candidate.to_config(base)

    def as_rows(self) -> list[list[object]]:
        """Ranking rows ``[label, predicted_ms, measured_ms, error, best?]``
        for CLI/bench tables (predicted order; unprobed rows blank)."""
        measured = {r.candidate.label(): r.seconds for r in self.probes}
        errors = self.prediction_errors
        best = self.decision.candidate.label()
        rows: list[list[object]] = []
        for p in self.predictions:
            label = p.candidate.label()
            rows.append(
                [
                    label,
                    round(p.seconds * 1e3, 4),
                    round(measured[label] * 1e3, 4) if label in measured else "",
                    round(errors[label], 3) if label in errors else "",
                    "*" if label == best else "",
                ]
            )
        return rows


class Autotuner:
    """Model-guided configuration search with measured confirmation.

    Parameters
    ----------
    machine:
        Machine model used by the predict stage (default: the
        ``abu_dhabi`` preset — ranking, not absolute time, is what
        matters, and probes recalibrate the scale).
    cache:
        Decision cache; ``None`` builds an in-memory one (no
        persistence).
    probe_top_n:
        How many top-ranked predictions the probe stage measures.
    probe_steps / probe_warmup / probe_repeats:
        Timed and untimed steps per candidate per round, and the
        interleaved round count (min-of-R).
    budget_seconds:
        Wall-clock budget for the probe rounds (the first round always
        completes so every probed candidate is measured at least once).
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        cache: DecisionCache | None = None,
        probe_top_n: int = 3,
        probe_steps: int = 3,
        probe_warmup: int = 1,
        probe_repeats: int = 3,
        budget_seconds: float | None = None,
    ) -> None:
        if probe_top_n < 1:
            raise ConfigurationError(
                f"probe_top_n must be positive, got {probe_top_n}"
            )
        self.machine = machine
        self.cache = cache if cache is not None else DecisionCache(path=None)
        self.probe_top_n = probe_top_n
        self.probe_steps = probe_steps
        self.probe_warmup = probe_warmup
        self.probe_repeats = probe_repeats
        self.budget_seconds = budget_seconds

    # ------------------------------------------------------------------
    def tune(
        self,
        base_config: SimulationConfig,
        batch_size: int = 1,
        variants: tuple[str, ...] | None = None,
        force: bool = False,
    ) -> TuneReport:
        """Tune ``base_config``'s workload; cached decisions win unless
        ``force`` re-probes."""
        workload = TuningWorkload.from_config(base_config, batch_size=batch_size)
        key = workload.key()
        if not force:
            cached = self.cache.get(key)
            if cached is not None:
                return TuneReport(workload=workload, decision=cached, from_cache=True)

        # A stale same-machine decision still carries a useful scale.
        prior = self.cache.get(key)
        model_scale = prior.model_scale if prior is not None else 1.0

        candidates = candidate_space(workload, variants=variants)
        predictions = predict_ranking(
            workload, candidates, machine=self.machine, model_scale=model_scale
        )
        top = predictions[: self.probe_top_n]
        probes = probe_candidates(
            base_config,
            [p.candidate for p in top],
            steps=self.probe_steps,
            warmup_steps=self.probe_warmup,
            repeats=self.probe_repeats,
            budget_seconds=self.budget_seconds,
        )
        predicted_by_label = {p.candidate.label(): p.seconds for p in predictions}
        probe_records = []
        ratios = []
        for probe in probes:
            label = probe.candidate.label()
            predicted = predicted_by_label[label]
            probe_records.append(
                {
                    "label": label,
                    "predicted": predicted,
                    "measured": probe.seconds,
                    "error": (predicted - probe.seconds) / probe.seconds,
                }
            )
            ratios.append(probe.seconds / predicted)

        if probes:
            winner = min(probes, key=lambda r: (r.seconds, r.candidate.label()))
            decision = TunedDecision(
                workload_key=key,
                candidate=winner.candidate,
                predicted_seconds=predicted_by_label[winner.candidate.label()],
                measured_seconds=winner.seconds,
                model_scale=model_scale * statistics.median(ratios),
                probes=tuple(probe_records),
            )
        else:
            # Every top candidate was infeasible to probe (e.g. a grid
            # the batched layout cannot host): fall back to the model's
            # first feasible-looking choice rather than failing the
            # caller — a prediction-only decision is still oracle-safe.
            best = predictions[0]
            decision = TunedDecision(
                workload_key=key,
                candidate=best.candidate,
                predicted_seconds=best.seconds,
                measured_seconds=best.seconds,
                model_scale=model_scale,
            )
        self.cache.put(decision)
        return TuneReport(
            workload=workload,
            decision=decision,
            from_cache=False,
            predictions=predictions,
            probes=probes,
        )

    def tuned_config(
        self,
        base_config: SimulationConfig,
        batch_size: int = 1,
        variants: tuple[str, ...] | None = None,
        force: bool = False,
    ) -> SimulationConfig:
        """Convenience: :meth:`tune` and return the re-pointed config."""
        report = self.tune(
            base_config, batch_size=batch_size, variants=variants, force=force
        )
        return report.best_config(base_config)
