"""Online re-tuning: drift-triggered knob updates in the scheduler.

A tuned decision is a statement about conditions at probe time; a
long-lived :class:`~repro.batch.scheduler.BatchScheduler` run can
drift away from them (co-tenant load, thermal throttling, a workload
mix the tuner never saw).  :class:`OnlineRetuner` closes the loop:

* it consumes the scheduler's :class:`~repro.batch.scheduler
  .SchedulerTick` stream (as the ``step_hook`` itself, or chained from
  :class:`~repro.service.SimulationService`'s hook);
* a :class:`~repro.observe.drift.DriftDetector` watches the per-sweep
  wall time — drift is confirmed only after ``patience`` consecutive
  window medians exceed the tuned expectation by the threshold;
* on confirmation it journals ``retune_triggered``, runs the
  ``retune`` callback (a short re-probe; optionally on a background
  thread), applies the returned knobs through
  :meth:`~repro.batch.scheduler.BatchScheduler.apply_tuning`, journals
  ``retune_applied``, and rebaselines the detector (opening a cooldown
  so one drift episode produces exactly one re-tune).

Only **bit-identity-safe** knobs are ever applied online: the scatter
method (both implementations accumulate identically — verified
property) and the batch width (results are composition-independent —
pinned by the scheduler suite).  Variant or precision changes alter
in-flight trajectories and are therefore left to the next submission
wave through the decision cache, never applied to running jobs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.observe.drift import DriftDetector

__all__ = ["OnlineRetuner", "RetuneEvent"]


@dataclass(frozen=True)
class RetuneEvent:
    """One confirmed drift episode and what was done about it."""

    batch_step: int
    observed_seconds: float
    expected_seconds: float
    applied: dict

    @property
    def ratio(self) -> float:
        """Observed over expected sweep time at confirmation."""
        return self.observed_seconds / self.expected_seconds


class OnlineRetuner:
    """Drift watchdog over scheduler ticks, applying re-tuned knobs.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.batch.scheduler.BatchScheduler` to steer;
        may be bound later via :meth:`bind` (the service rebuilds its
        scheduler on resume).
    expected_step_seconds:
        The tuned per-sweep expectation (e.g. a cached decision's
        ``measured_seconds`` times the batch width).  ``None``
        self-baselines from the first full window.
    drift_threshold / window / patience / cooldown:
        Forwarded to :class:`~repro.observe.drift.DriftDetector`
        (cooldown counted in ticks).
    retune:
        ``retune() -> dict`` producing the knobs to apply —
        ``{"scatter_method": ..., "max_batch": ...}``, any subset.
        ``None`` rebaselines without changing knobs (drift is then
        merely journaled — still useful).
    background:
        ``True`` runs the re-probe callback on a daemon thread so the
        batch never stalls behind it; knobs land at the next compatible
        wave.  ``False`` (default) re-tunes synchronously inside the
        tick — deterministic, what the tests use.
    incident_log:
        Journal for ``retune_triggered`` / ``retune_applied``; defaults
        to the bound scheduler's log.
    """

    def __init__(
        self,
        scheduler=None,
        expected_step_seconds: float | None = None,
        drift_threshold: float = 1.5,
        window: int = 8,
        patience: int = 3,
        cooldown: int = 64,
        retune=None,
        background: bool = False,
        incident_log=None,
    ) -> None:
        self.detector = DriftDetector(
            expected=expected_step_seconds,
            threshold=drift_threshold,
            window=window,
            patience=patience,
            cooldown=cooldown,
        )
        self.retune = retune
        self.background = background
        self.events: list[RetuneEvent] = []
        self._scheduler = None
        self._incidents = incident_log
        self._retuning = threading.Lock()
        if scheduler is not None:
            self.bind(scheduler)

    # ------------------------------------------------------------------
    def bind(self, scheduler) -> "OnlineRetuner":
        """Attach (or re-attach) the scheduler this retuner steers."""
        self._scheduler = scheduler
        if self._incidents is None:
            self._incidents = getattr(scheduler, "incidents", None)
        return self

    def _record(self, kind: str, **detail) -> None:
        if self._incidents is not None:
            self._incidents.record(kind, **detail)

    # ------------------------------------------------------------------
    def observe(self, tick) -> None:
        """Feed one scheduler tick; triggers at most one re-tune per
        confirmed drift episode.  Usable directly as a ``step_hook``."""
        if not self.detector.observe(tick.step_seconds):
            return
        # Confirmation while a background re-probe is still in flight is
        # the same episode — do not stack a second one.
        if not self._retuning.acquire(blocking=False):
            return
        observed = self.detector.median
        expected = self.detector.expected
        self._record(
            "retune_triggered",
            step=tick.batch_step,
            observed_seconds=observed,
            expected_seconds=expected,
            ratio=observed / expected,
        )
        # Rebaseline immediately: the episode is being handled, and the
        # cooldown guarantees exactly one re-tune per confirmation even
        # if the re-probe runs long on a background thread.
        self.detector.rebaseline(observed)
        if self.background:
            threading.Thread(
                target=self._do_retune,
                args=(tick.batch_step, observed, expected),
                daemon=True,
            ).start()
        else:
            self._do_retune(tick.batch_step, observed, expected)

    def _do_retune(
        self, batch_step: int, observed: float, expected: float
    ) -> None:
        try:
            knobs = self.retune() if self.retune is not None else {}
            applied = {}
            if knobs and self._scheduler is not None:
                applied = self._scheduler.apply_tuning(**knobs)
            self.events.append(
                RetuneEvent(
                    batch_step=batch_step,
                    observed_seconds=observed,
                    expected_seconds=expected,
                    applied=applied,
                )
            )
            self._record(
                "retune_applied", step=batch_step, applied=dict(applied)
            )
        except ConfigurationError as exc:
            # A bad knob must not take the scheduler down mid-run; the
            # journal carries the evidence and the old tuning stands.
            self._record("retune_failed", step=batch_step, error=str(exc))
        finally:
            self._retuning.release()
