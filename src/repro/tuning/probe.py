"""Probe stage: confirm top-ranked predictions with short measured runs.

The predict stage orders candidates; the probe stage settles the final
choice empirically, reusing the interleaved min-of-R measurement
discipline of :func:`repro.tuning.cube.interleaved_min_seconds`: every
candidate is built and warmed first, the field is then timed in
round-robin rounds bounded by a wall-clock budget, and each candidate
reports its best round — a transient stall lands on whichever
candidate was running, not systematically on one.

Each candidate's forced scatter method is installed around its timed
block only (and the previous override restored), so interleaving
candidates with different scatter choices cannot leak state into each
other or into the caller's process.

Probes report **seconds per simulation-step**: a batched candidate of
width ``w`` advancing ``w`` slots per sweep divides its sweep time by
``w``, so solo and batched candidates compare on the common serving
metric (time to advance one simulation by one step).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, PartitionError
from repro.tuning.cube import interleaved_min_seconds
from repro.tuning.space import TuningCandidate

__all__ = ["ProbeResult", "probe_candidates"]


@dataclass(frozen=True)
class ProbeResult:
    """One candidate's measured cost.

    ``seconds`` is the min-of-R per-simulation-step wall time;
    ``rounds`` the interleaved rounds actually completed within the
    budget; ``steps`` the timed steps per round.
    """

    candidate: TuningCandidate
    seconds: float
    rounds: int
    steps: int

    def to_dict(self) -> dict:
        """JSON-safe form for benchmark records."""
        return {
            "candidate": self.candidate.to_dict(),
            "label": self.candidate.label(),
            "seconds": self.seconds,
            "rounds": self.rounds,
            "steps": self.steps,
        }


def _forced_scatter(run: Callable[[], None], scatter: str) -> Callable[[], None]:
    """``run`` with ``scatter`` installed for its duration only."""
    if scatter == "auto":
        return run

    def forced() -> None:
        from repro.core.ib import spreading

        previous = spreading._scatter_override
        spreading.set_scatter_method(scatter)
        try:
            run()
        finally:
            spreading.set_scatter_method(previous)

    return forced


def _solo_runner(config: SimulationConfig, steps: int, warmup_steps: int):
    """``(runner, closer, sims_per_sweep)`` for a solo-variant candidate."""
    from repro.api import Simulation

    sim = Simulation(config)
    if warmup_steps:
        sim.run(warmup_steps)
    return (lambda: sim.run(steps)), sim.close, 1


def _batched_runner(
    config: SimulationConfig, width: int, steps: int, warmup_steps: int
):
    """``(runner, closer, sims_per_sweep)`` for a batched candidate.

    Loads ``width`` identical copies of the configured initial state —
    the probe measures sweep cost at full occupancy, the serving
    scenario the batch width is tuned for.
    """
    from repro.batch.fields import BatchedFluidGrid
    from repro.batch.solver import BatchedLBMIBSolver
    from repro.core.lbm.fields import FluidGrid

    grid = BatchedFluidGrid(
        config.fluid_shape,
        width,
        tau=config.effective_tau,
        collision_operator=config.collision_operator,
        precision=config.precision,
    )
    solver = BatchedLBMIBSolver(
        grid,
        delta=config.build_delta(),
        boundaries=config.build_boundaries(),
        dt=config.dt,
        external_force=config.external_force,
    )
    for slot in range(width):
        fluid = FluidGrid(
            config.fluid_shape,
            tau=config.effective_tau,
            collision_operator=config.collision_operator,
            precision=config.precision,
        )
        solver.load_slot(slot, fluid, config.build_structure())

    def run_steps() -> None:
        for _ in range(steps):
            solver.step()

    if warmup_steps:
        for _ in range(warmup_steps):
            solver.step()
    return run_steps, (lambda: None), width


def probe_candidates(
    base_config: SimulationConfig,
    candidates: list[TuningCandidate],
    steps: int = 3,
    warmup_steps: int = 1,
    repeats: int = 3,
    budget_seconds: float | None = None,
) -> list[ProbeResult]:
    """Measure ``candidates`` on this machine; per-candidate min-of-R.

    Candidates whose configuration cannot be built for this workload
    (e.g. a cube edge the thread mesh cannot partition) are skipped —
    infeasible is simply not a contender.  Raises when *no* candidate
    is feasible.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be positive, got {steps}")
    built: list[tuple[TuningCandidate, Callable[[], None], Callable[[], None], int]] = []
    try:
        for candidate in candidates:
            try:
                config = candidate.to_config(base_config)
                if candidate.variant == "batched" and candidate.batch_width > 1:
                    run, close, per_sweep = _batched_runner(
                        config, candidate.batch_width, steps, warmup_steps
                    )
                else:
                    run, close, per_sweep = _solo_runner(
                        config, steps, warmup_steps
                    )
            except (PartitionError, ConfigurationError):
                continue
            built.append(
                (candidate, _forced_scatter(run, candidate.scatter), close, per_sweep)
            )
        if not built:
            raise ConfigurationError(
                f"no feasible probe candidate among "
                f"{[c.label() for c in candidates]} for grid "
                f"{base_config.fluid_shape}"
            )
        mins, rounds = interleaved_min_seconds(
            [run for _, run, _, _ in built],
            repeats=repeats,
            budget_seconds=budget_seconds,
        )
    finally:
        for _, _, close, _ in built:
            close()
    results = []
    for (candidate, _, _, per_sweep), best in zip(built, mins):
        per_sim_step = best / (steps * per_sweep)
        if not math.isfinite(per_sim_step):
            continue
        results.append(
            ProbeResult(
                candidate=candidate,
                seconds=per_sim_step,
                rounds=rounds,
                steps=steps,
            )
        )
    return results
