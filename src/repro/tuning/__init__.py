"""Workload-adaptive autotuning (paper future work, ROADMAP item 2).

The paper's conclusion names auto-tuning as future work; this package
grows the original cube-size sweep into a full configuration tuner:

* :mod:`~repro.tuning.cube` — the legacy cube-edge tuners
  (:func:`valid_cube_sizes`, :func:`suggest_cube_size`,
  :func:`autotune_cube_size`) and the shared interleaved min-of-R
  measurement discipline;
* :mod:`~repro.tuning.space` — the oracle-safe search space: variant x
  cube size x scatter method x precision x batch width;
* :mod:`~repro.tuning.predict` — model-guided ranking from the
  calibrated performance model and cache working-set estimates;
* :mod:`~repro.tuning.probe` — measured confirmation of the top-ranked
  candidates under a wall-clock budget;
* :mod:`~repro.tuning.cache` — the persisted decision cache keyed by
  ``(workload key, machine fingerprint)``;
* :mod:`~repro.tuning.autotuner` — :class:`Autotuner`, the
  predict -> probe -> cache loop;
* :mod:`~repro.tuning.online` — :class:`OnlineRetuner`, drift-triggered
  re-tuning inside a running scheduler.

``python -m repro.tuning --shape 62x32x32`` prints the whole story for
one workload; ``make bench-tune`` records it as ``BENCH_tune.json``.
"""

from repro.tuning.autotuner import Autotuner, TuneReport
from repro.tuning.cache import SCHEMA_VERSION, DecisionCache, TunedDecision
from repro.tuning.cube import (
    TuningResult,
    autotune_cube_size,
    interleaved_min_seconds,
    suggest_cube_size,
    valid_cube_sizes,
)
from repro.tuning.online import OnlineRetuner, RetuneEvent
from repro.tuning.predict import Prediction, predict_ranking, predict_step_seconds
from repro.tuning.probe import ProbeResult, probe_candidates
from repro.tuning.space import (
    ORACLE_SAFE_VARIANTS,
    TuningCandidate,
    TuningWorkload,
    allowed_precisions,
    candidate_space,
)

__all__ = [
    # legacy cube tuners
    "TuningResult",
    "autotune_cube_size",
    "interleaved_min_seconds",
    "suggest_cube_size",
    "valid_cube_sizes",
    # search space
    "ORACLE_SAFE_VARIANTS",
    "TuningCandidate",
    "TuningWorkload",
    "allowed_precisions",
    "candidate_space",
    # predict / probe
    "Prediction",
    "predict_ranking",
    "predict_step_seconds",
    "ProbeResult",
    "probe_candidates",
    # cache
    "SCHEMA_VERSION",
    "DecisionCache",
    "TunedDecision",
    # tuner + online loop
    "Autotuner",
    "TuneReport",
    "OnlineRetuner",
    "RetuneEvent",
]
