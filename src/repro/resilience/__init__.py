"""Resilience subsystem: fault injection, watchdogs, recovery.

The paper positions LBM-IB as a library for *long-running* FSI
simulations on manycore (and, per its future work, distributed-memory)
systems.  At that scale the dominant failure modes are not compiler
bugs but operational ones: a worker thread dies, a rank misses a
barrier, a run goes numerically unstable, a node crashes mid-checkpoint.
This package makes every one of those survivable — and, just as
important, *testable on one core*:

``faults``
    :class:`Fault` / :class:`FaultPlan` / :class:`FaultInjector` — a
    deterministic, seeded fault-injection framework that can corrupt
    fluid fields into NaN at a chosen step, kill a chosen worker
    thread/rank, drop or delay a communicator message, and truncate a
    checkpoint file.
``incident``
    :class:`IncidentLog` — a structured, JSON-serialisable record of
    every fault, retry, rollback, and recovery, for the observability
    stack.
``runner``
    :class:`ResilientRunner` / :class:`RetryPolicy` — drives any solver
    variant with periodic atomic checkpoints; rolls back and retries
    with damped parameters on :class:`~repro.errors.StabilityError`,
    and falls back to the sequential solver when a parallel worker
    dies.
``chaos``
    :class:`ChaosHarness` / :class:`ChaosReport` — the deterministic
    chaos harness for the fault-tolerant batch scheduler: a fault-free
    golden run and a seeded faulted run (slot corruption, checkpoint
    truncation, scheduler kill + resume) compared bit-for-bit
    (``make test-chaos``).

The watchdog layer itself (deadlines on
:meth:`~repro.parallel.barrier.InstrumentedBarrier.wait`,
:meth:`~repro.parallel.executor.WorkerPool.dispatch`,
:func:`~repro.parallel.executor.run_spmd`, and
:class:`~repro.distributed.comm.RankComm`) lives with those primitives;
the typed errors are in :mod:`repro.errors`.
"""

from repro.resilience.chaos import (
    ChaosHarness,
    ChaosReport,
    JobVerdict,
    service_plan,
    standard_plan,
)
from repro.resilience.faults import Fault, FaultInjector, FaultPlan
from repro.resilience.incident import Incident, IncidentLog, json_safe
from repro.resilience.runner import ResilientRunner, RetryPolicy

__all__ = [
    "ChaosHarness",
    "ChaosReport",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "Incident",
    "IncidentLog",
    "JobVerdict",
    "ResilientRunner",
    "RetryPolicy",
    "json_safe",
    "service_plan",
    "standard_plan",
]
