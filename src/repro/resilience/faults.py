"""Deterministic, seeded fault injection.

Production LBM codes treat divergence detection and checkpoint/restart
as first-class because real runs *do* blow up, lose workers, and crash
mid-write.  None of those paths can be trusted untested, and none can
be tested by waiting for real hardware to fail.  This module makes
every failure mode reproducible on one core:

* ``corrupt_field`` — overwrite elements of a fluid field with NaN at a
  chosen step (numerical blow-up).
* ``kill_worker`` — raise :class:`~repro.errors.WorkerKilledError`
  inside a chosen worker thread/rank at a chosen step (worker death).
* ``drop_message`` / ``delay_message`` — swallow or delay a matching
  :class:`~repro.distributed.comm.SimulatedComm` message at the send
  boundary (lost / slow network traffic).
* ``truncate_checkpoint`` — chop bytes off a just-written checkpoint
  file (crash mid-write on a pre-atomic store; the load path must
  reject it).

A :class:`FaultPlan` is pure data; the :class:`FaultInjector` holds the
only mutable state (which faults have fired, a seeded RNG for element
choices) so two runs with the same plan and seed inject byte-identical
faults.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.errors import ConfigurationError, WorkerKilledError

__all__ = ["Fault", "FaultPlan", "FaultInjector"]

FaultKind = Literal[
    "corrupt_field",
    "kill_worker",
    "drop_message",
    "delay_message",
    "truncate_checkpoint",
]

_KINDS = (
    "corrupt_field",
    "kill_worker",
    "drop_message",
    "delay_message",
    "truncate_checkpoint",
)


@dataclass(frozen=True)
class Fault:
    """One planned fault (pure data; see :class:`FaultInjector`).

    Parameters
    ----------
    kind:
        One of ``corrupt_field``, ``kill_worker``, ``drop_message``,
        ``delay_message``, ``truncate_checkpoint``.
    step:
        Time step at which step-triggered faults fire.  For
        ``truncate_checkpoint`` it is the *earliest* checkpointed step
        to attack.  Ignored by the message faults.
    tid:
        Victim worker thread / rank for ``kill_worker`` and
        ``corrupt_field`` (the hook only fires on this thread so the
        injection happens exactly once).
    fluid_field:
        Which array of the fluid state to corrupt (``"df"``,
        ``"velocity"``, ``"density"``, ...).
    count:
        Number of elements to overwrite with NaN.
    src / dst / tag:
        Message-fault filters; ``None`` matches anything.
    delay:
        Seconds to stall a matching send (``delay_message``).
    nbytes:
        Bytes to truncate from the checkpoint file tail.
    once:
        Fire at most once (default).  ``False`` re-fires on every
        match — useful for "this link always drops tag 7" scenarios.
    """

    kind: FaultKind
    step: int = 0
    tid: int = 0
    fluid_field: str = "df"
    count: int = 4
    src: int | None = None
    dst: int | None = None
    tag: int | None = None
    delay: float = 0.0
    nbytes: int = 64
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if self.step < 0:
            raise ConfigurationError(f"fault step must be >= 0, got {self.step}")
        if self.kind == "corrupt_field" and self.count < 1:
            raise ConfigurationError("corrupt_field needs count >= 1")
        if self.kind == "truncate_checkpoint" and self.nbytes < 1:
            raise ConfigurationError("truncate_checkpoint needs nbytes >= 1")

    def describe(self) -> dict:
        """JSON-safe summary (for the incident log)."""
        out = {"kind": self.kind, "planned_step": self.step, "tid": self.tid}
        if self.kind == "corrupt_field":
            out["fluid_field"] = self.fluid_field
            out["count"] = self.count
        elif self.kind in ("drop_message", "delay_message"):
            out.update(src=self.src, dst=self.dst, tag=self.tag)
            if self.kind == "delay_message":
                out["delay"] = self.delay
        elif self.kind == "truncate_checkpoint":
            out["nbytes"] = self.nbytes
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults plus the RNG seed that resolves them."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    @classmethod
    def of(cls, faults: Iterable[Fault], seed: int = 0) -> "FaultPlan":
        """Build a plan from any iterable of faults."""
        return cls(tuple(faults), seed)

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically.

    The injector is wired into the stack at four points:

    * solvers call the step hook (via
      :meth:`hook_for` closures installed by the
      :class:`~repro.api.Simulation` facade) once per thread per step —
      fires ``kill_worker`` and ``corrupt_field``;
    * :class:`~repro.distributed.comm.SimulatedComm` consults
      :meth:`on_send` at every send — fires ``drop_message`` /
      ``delay_message``;
    * :class:`~repro.resilience.runner.ResilientRunner` calls
      :meth:`after_checkpoint` after every checkpoint write — fires
      ``truncate_checkpoint``.

    All hooks are thread-safe; each fired fault is recorded (and
    forwarded to ``incident_log`` when one is attached).
    """

    def __init__(
        self,
        plan: FaultPlan | Sequence[Fault],
        incident_log=None,
    ) -> None:
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.of(plan)
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.incident_log = incident_log
        self._lock = threading.Lock()
        self._fired: set[int] = set()
        self.fired_events: list[dict] = []

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _claim(self, index: int, fault: Fault, step: int = -1, **extra) -> bool:
        """Atomically mark ``fault`` fired; False if a once-fault already did."""
        with self._lock:
            if fault.once and index in self._fired:
                return False
            self._fired.add(index)
            event = dict(fault.describe(), fired_at_step=step, **extra)
            self.fired_events.append(event)
        if self.incident_log is not None:
            self.incident_log.record("fault_injected", step=step, fault=event)
        return True

    def _pending(self, kind: str):
        for index, fault in enumerate(self.plan):
            if fault.kind != kind:
                continue
            with self._lock:
                if fault.once and index in self._fired:
                    continue
            yield index, fault

    # ------------------------------------------------------------------
    # solver step hook
    # ------------------------------------------------------------------
    def on_step(self, tid: int, step: int, state) -> None:
        """Per-thread per-step hook; ``state`` owns the fluid arrays.

        ``state`` may be a :class:`~repro.core.lbm.fields.FluidGrid` or
        a :class:`~repro.parallel.cubes.CubeGrid`; only the attribute
        named by each fault's ``fluid_field`` is touched.
        """
        for index, fault in self._pending("corrupt_field"):
            if fault.step == step and fault.tid == tid:
                if self._claim(index, fault, step=step):
                    self._corrupt(state, fault)
        for index, fault in self._pending("kill_worker"):
            if fault.step == step and fault.tid == tid:
                if self._claim(index, fault, step=step):
                    raise WorkerKilledError(tid, step)

    def _corrupt(self, state, fault: Fault) -> None:
        try:
            arr = getattr(state, fault.fluid_field)
        except AttributeError:
            raise ConfigurationError(
                f"fault targets unknown fluid field {fault.fluid_field!r}"
            ) from None
        flat_indices = self.rng.integers(0, arr.size, size=fault.count)
        arr.flat[flat_indices] = np.nan

    def hook_for(self, state):
        """A ``(tid, step) -> None`` closure bound to one solver's state."""

        def hook(tid: int, step: int) -> None:
            self.on_step(tid, step, state)

        return hook

    # ------------------------------------------------------------------
    # communicator hook
    # ------------------------------------------------------------------
    def on_send(self, src: int, dst: int, tag: int):
        """Consulted at every simulated send.

        Returns ``"drop"`` to swallow the message, a float delay in
        seconds to stall it, or ``None`` to deliver normally.
        """

        def matches(fault: Fault) -> bool:
            return (
                (fault.src is None or fault.src == src)
                and (fault.dst is None or fault.dst == dst)
                and (fault.tag is None or fault.tag == tag)
            )

        for index, fault in self._pending("drop_message"):
            if matches(fault) and self._claim(index, fault, src=src, dst=dst, tag=tag):
                return "drop"
        for index, fault in self._pending("delay_message"):
            if matches(fault) and self._claim(index, fault, src=src, dst=dst, tag=tag):
                return fault.delay
        return None

    # ------------------------------------------------------------------
    # checkpoint hook
    # ------------------------------------------------------------------
    def after_checkpoint(self, path: str | os.PathLike, step: int) -> None:
        """Attack a just-written checkpoint (crash-mid-write simulation)."""
        for index, fault in self._pending("truncate_checkpoint"):
            if step >= fault.step and self._claim(index, fault, step=step, path=os.fspath(path)):
                self._truncate(path, fault.nbytes)

    @staticmethod
    def _truncate(path: str | os.PathLike, nbytes: int) -> None:
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(0, size - nbytes))
