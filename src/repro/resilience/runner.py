"""Checkpoint-based recovery driver for any solver variant.

:class:`ResilientRunner` wraps the :class:`~repro.api.Simulation`
facade with the recovery loop a long-running production deployment
needs:

* **Periodic atomic checkpoints** — every ``checkpoint_every`` steps
  the gathered state is validated and written atomically (see
  :mod:`repro.io.checkpoint`); a rotating window of recent checkpoints
  is kept so one corrupted file never strands the run.
* **Stability rollback** — a :class:`~repro.errors.StabilityError`
  (NaN/Inf fields, lattice-Mach violation) rolls the run back to the
  last good checkpoint and retries with damped parameters (raised
  ``tau`` → higher viscosity, optionally shrunk ``dt``), up to a
  bounded number of attempts.
* **Worker-death fallback** — a :class:`~repro.errors.WorkerError`,
  :class:`~repro.errors.BarrierTimeoutError`, or
  :class:`~repro.errors.CommTimeoutError` from a parallel solver
  rebuilds the run from the last checkpoint on the sequential solver:
  slower, but alive.
* **Structured incident log** — every fault, retry, rollback, and
  recovery is recorded in an :class:`~repro.resilience.incident.IncidentLog`
  (JSON) for the observability stack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from repro.api import Simulation, SimulationConfig
from repro.errors import (
    BarrierTimeoutError,
    CheckpointError,
    CommTimeoutError,
    InvariantError,
    LBMIBError,
    StabilityError,
    WorkerError,
)
from repro.io.checkpoint import rotate_checkpoints
from repro.resilience.faults import FaultInjector
from repro.resilience.incident import IncidentLog

__all__ = ["RetryPolicy", "ResilientRunner"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the recovery loop.

    Parameters
    ----------
    checkpoint_every:
        Steps between checkpoints (also the granularity of stability
        validation — a fault is detected at most this many steps after
        injection).
    max_rollbacks:
        Stability rollbacks allowed before the error is re-raised.
    tau_damping:
        Multiplier applied to ``tau`` on every stability retry (> 1
        raises viscosity, the standard LBM stabilisation).
    dt_damping:
        Multiplier applied to ``dt`` on every stability retry (< 1
        shrinks the step; 1 leaves it alone).
    keep_checkpoints:
        Rotating window of on-disk checkpoints to retain.
    watchdog_timeout:
        Barrier/communicator deadline installed into the config when it
        does not set one itself (``None`` = leave the config alone).
    max_velocity:
        Lattice-Mach validation threshold (see
        :meth:`~repro.core.lbm.fields.FluidGrid.validate_stable`).
    """

    checkpoint_every: int = 10
    max_rollbacks: int = 3
    tau_damping: float = 1.25
    dt_damping: float = 1.0
    keep_checkpoints: int = 2
    watchdog_timeout: float | None = 30.0
    max_velocity: float = 0.5

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if self.tau_damping < 1.0:
            raise ValueError("tau_damping must be >= 1 (damping raises viscosity)")
        if not 0.0 < self.dt_damping <= 1.0:
            raise ValueError("dt_damping must be in (0, 1]")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")


def _root_cause(exc: BaseException) -> BaseException:
    """Unwrap :class:`WorkerError` layers to the originating exception."""
    while isinstance(exc, WorkerError):
        exc = exc.original
    return exc


class ResilientRunner:
    """Drive a simulation to completion through faults.

    Parameters
    ----------
    config:
        The run description; any solver variant.
    workdir:
        Directory for checkpoints and the incident log (created if
        missing).
    policy:
        Recovery knobs; defaults are production-ish.
    fault_injector:
        Optional injector (tests wire planned faults through it; it is
        also attached to the incident log so injections are journaled).
    invariants:
        Optional :class:`~repro.verify.invariants.InvariantSuite`
        attached to every simulation this runner builds — including the
        rebuilt ones after a rollback or fallback, whose conserved-
        quantity baselines are rebound to the restored state.  A
        violated invariant (:class:`~repro.errors.InvariantError`) is
        treated like a stability failure: roll back to the last good
        checkpoint and retry with damped parameters.
    telemetry:
        Optional :class:`~repro.observe.Telemetry` attached to every
        simulation this runner builds; each incident kind additionally
        bumps a ``resilience.<kind>`` counter in its metrics registry,
        mirroring the incident log as queryable metrics.
    """

    def __init__(
        self,
        config: SimulationConfig,
        workdir: str | os.PathLike,
        policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        invariants=None,
        telemetry=None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        if (
            self.policy.watchdog_timeout is not None
            and config.barrier_timeout is None
        ):
            config = replace(config, barrier_timeout=self.policy.watchdog_timeout)
        self.config = config
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        # Crash-safe journal: every record is an appended, flushed JSON
        # line, so a killed worker leaves a readable tail on disk (the
        # atomic incidents.json snapshot is still written on success).
        self.incidents = IncidentLog(
            jsonl_path=os.path.join(self.workdir, "incidents.jsonl")
        )
        self.fault_injector = fault_injector
        self.invariants = invariants
        self.telemetry = telemetry
        if fault_injector is not None and fault_injector.incident_log is None:
            fault_injector.incident_log = self.incidents
        self._checkpoints: list[tuple[str, int]] = []  # (path, step), oldest first

    def _record(self, kind: str, **fields) -> None:
        """Journal an incident and mirror it as a resilience counter."""
        self.incidents.record(kind, **fields)
        if self.telemetry is not None:
            self.telemetry.metrics.counter(f"resilience.{kind}").inc()

    # ------------------------------------------------------------------
    # checkpoint management
    # ------------------------------------------------------------------
    def _checkpoint_path(self, step: int) -> str:
        return os.path.join(self.workdir, f"ckpt-{step:08d}.npz")

    def _save_checkpoint(self, sim: Simulation) -> None:
        step = sim.time_step
        path = self._checkpoint_path(step)
        sim.checkpoint(path)
        if self.fault_injector is not None:
            # Gives truncate_checkpoint faults their shot at the file —
            # simulating a crash mid-write on a pre-atomic store.
            self.fault_injector.after_checkpoint(path, step)
        self._checkpoints = [(p, s) for p, s in self._checkpoints if s != step]
        self._checkpoints.append((path, step))
        self._record("checkpoint_saved", step=step, path=path)
        self._checkpoints = rotate_checkpoints(
            self._checkpoints, self.policy.keep_checkpoints
        )

    def _attach_invariants(self, sim: Simulation) -> Simulation:
        """Attach the invariant suite, rebinding baselines to this state."""
        if self.telemetry is not None:
            sim.attach_telemetry(self.telemetry)
        if self.invariants is not None:
            sim.attach_invariants(self.invariants)
        return sim

    def _restore(self, config: SimulationConfig) -> Simulation:
        """Newest loadable checkpoint wins; corrupt ones are discarded."""
        while self._checkpoints:
            path, step = self._checkpoints[-1]
            try:
                sim = Simulation.from_checkpoint(
                    path, config, fault_injector=self.fault_injector
                )
            except CheckpointError as exc:
                self._checkpoints.pop()
                self._record(
                    "checkpoint_corrupt", step=step, path=path, error=str(exc)
                )
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            self._record("restored", step=step, path=path)
            return self._attach_invariants(sim)
        self._record("restart_from_initial", step=0)
        return self._attach_invariants(
            Simulation(config, fault_injector=self.fault_injector)
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self, sim: Simulation) -> None:
        fluid = sim.fluid  # gathered copy for cube/distributed layouts
        fluid.validate_stable(max_velocity=self.policy.max_velocity)
        structure = sim.structure
        if structure is not None:
            for sheet in structure.sheets:
                if not np.isfinite(sheet.positions).all():
                    raise StabilityError(
                        "fiber positions contain non-finite values; the "
                        "structure solver has become unstable"
                    )

    # ------------------------------------------------------------------
    # recovery loop
    # ------------------------------------------------------------------
    def _dampened(self, config: SimulationConfig) -> SimulationConfig:
        new_tau = config.effective_tau * self.policy.tau_damping
        new_dt = config.dt * self.policy.dt_damping
        return replace(config, tau=new_tau, viscosity=None, dt=new_dt)

    def run(self, num_steps: int) -> Simulation:
        """Advance ``num_steps`` steps, surviving planned-for failures.

        Returns the (possibly rebuilt) simulation at the target step.
        Raises the final :class:`~repro.errors.StabilityError` once the
        rollback budget is exhausted, and re-raises worker failures
        only when already on the sequential solver (nothing left to
        fall back to).
        """
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        config = self.config
        sim = self._attach_invariants(
            Simulation(config, fault_injector=self.fault_injector)
        )
        rollbacks = 0
        self._record(
            "run_started", step=0, solver=config.solver, target=num_steps
        )
        while sim.time_step < num_steps:
            chunk = min(self.policy.checkpoint_every, num_steps - sim.time_step)
            failed_step = sim.time_step
            try:
                sim.run(chunk)
                self._validate(sim)
            except LBMIBError as exc:
                cause = _root_cause(exc)
                if isinstance(cause, (StabilityError, InvariantError)):
                    rollbacks += 1
                    self._record(
                        "stability_rollback",
                        step=failed_step,
                        attempt=rollbacks,
                        error=str(cause),
                    )
                    if rollbacks > self.policy.max_rollbacks:
                        self._record(
                            "gave_up", step=failed_step, rollbacks=rollbacks
                        )
                        raise
                    config = self._dampened(config)
                    self._record(
                        "retry_dampened",
                        step=failed_step,
                        tau=config.effective_tau,
                        dt=config.dt,
                    )
                elif isinstance(
                    cause, (WorkerError, BarrierTimeoutError, CommTimeoutError)
                ) or isinstance(exc, (WorkerError, BarrierTimeoutError, CommTimeoutError)):
                    self._record(
                        "worker_failure",
                        step=failed_step,
                        solver=config.solver,
                        error=str(cause),
                    )
                    if config.solver == "sequential":
                        self._record("gave_up", step=failed_step)
                        raise
                    config = replace(config, solver="sequential", num_threads=1)
                    self._record("fallback_sequential", step=failed_step)
                else:
                    self._record(
                        "unrecoverable", step=failed_step, error=str(cause)
                    )
                    raise
                sim.close()
                sim = self._restore(config)
                continue
            self._save_checkpoint(sim)
        self._record(
            "run_completed",
            step=sim.time_step,
            solver=config.solver,
            rollbacks=rollbacks,
        )
        self.incidents.save(os.path.join(self.workdir, "incidents.json"))
        return sim
