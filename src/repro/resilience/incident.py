"""Structured incident log: every fault, retry, and recovery, as data.

A resilient system that recovers *silently* is almost as bad as one
that crashes: operators need to know a rollback happened, how often,
and why.  :class:`IncidentLog` is an append-only, thread-safe event
journal kept by :class:`~repro.resilience.runner.ResilientRunner` (and
fed by :class:`~repro.resilience.faults.FaultInjector`), serialisable
to JSON for the observability stack.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = ["Incident", "IncidentLog"]


@dataclass(frozen=True)
class Incident:
    """One resilience event.

    Attributes
    ----------
    seq:
        Monotonic sequence number within the log (total order even when
        events race in from worker threads).
    kind:
        Event type, e.g. ``"fault_injected"``, ``"checkpoint_saved"``,
        ``"checkpoint_corrupt"``, ``"stability_rollback"``,
        ``"worker_failure"``, ``"fallback_sequential"``,
        ``"run_completed"``.
    step:
        Simulation time step the event refers to (``-1`` if not tied to
        a step).
    wall_time:
        ``time.time()`` at record time.
    detail:
        Free-form, JSON-safe payload (fault spec, error text, retry
        parameters, ...).
    """

    seq: int
    kind: str
    step: int
    wall_time: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "step": self.step,
            "wall_time": self.wall_time,
            "detail": dict(self.detail),
        }


class IncidentLog:
    """Append-only, thread-safe journal of resilience events."""

    def __init__(self) -> None:
        self._events: list[Incident] = []
        self._lock = threading.Lock()

    def record(self, kind: str, step: int = -1, **detail) -> Incident:
        """Append one event; safe to call from worker threads."""
        with self._lock:
            event = Incident(
                seq=len(self._events),
                kind=kind,
                step=int(step),
                wall_time=time.time(),
                detail=detail,
            )
            self._events.append(event)
        return event

    @property
    def events(self) -> list[Incident]:
        """Snapshot of all events in sequence order."""
        with self._lock:
            return list(self._events)

    def events_of(self, kind: str) -> list[Incident]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return len(self.events_of(kind))

    def counts(self) -> dict[str, int]:
        """Event count per kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def to_json(self, indent: int = 2) -> str:
        """The full journal as a JSON document."""
        return json.dumps(
            {"events": [e.to_dict() for e in self.events], "counts": self.counts()},
            indent=indent,
        )

    def save(self, path: str | os.PathLike) -> None:
        """Write the journal atomically to ``path`` (JSON)."""
        final = os.fspath(path)
        tmp = final + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        os.replace(tmp, final)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
