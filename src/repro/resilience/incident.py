"""Structured incident log: every fault, retry, and recovery, as data.

A resilient system that recovers *silently* is almost as bad as one
that crashes: operators need to know a rollback happened, how often,
and why.  :class:`IncidentLog` is an append-only, thread-safe event
journal kept by :class:`~repro.resilience.runner.ResilientRunner` and
the batch scheduler (and fed by
:class:`~repro.resilience.faults.FaultInjector`), serialisable to JSON
for the observability stack.

The log is **crash-safe** when given a ``jsonl_path``: every
:meth:`~IncidentLog.record` appends one JSON line and flushes it to the
OS immediately, so a worker killed mid-run leaves a readable journal
tail on disk (the classic append-only write-ahead-log shape).
:meth:`IncidentLog.load` reads such a file back, tolerating a torn
final line from a kill mid-append.  Detail payloads are serialised
numpy-safely — numpy scalars and small arrays coming out of fault
hooks and invariant checkers never poison the journal with a
``TypeError`` at dump time.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = ["Incident", "IncidentLog", "json_safe"]


def json_safe(value):
    """Recursively coerce ``value`` into JSON-serialisable built-ins.

    Numpy scalars become Python scalars, numpy arrays become (nested)
    lists, sets/tuples become lists, and anything else unknown falls
    back to ``str`` — the journal must never raise at record time.
    """
    import numpy as np

    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class Incident:
    """One resilience event.

    Attributes
    ----------
    seq:
        Monotonic sequence number within the log (total order even when
        events race in from worker threads).
    kind:
        Event type, e.g. ``"fault_injected"``, ``"checkpoint_saved"``,
        ``"checkpoint_corrupt"``, ``"stability_rollback"``,
        ``"worker_failure"``, ``"fallback_sequential"``,
        ``"run_completed"`` — plus the batch-scheduler kinds
        ``"slot_ejected"``, ``"job_retry"``, ``"job_quarantined"``,
        ``"scheduler_resumed"``.
    step:
        Simulation time step the event refers to (``-1`` if not tied to
        a step).
    wall_time:
        ``time.time()`` at record time.
    detail:
        Free-form, JSON-safe payload (fault spec, error text, retry
        parameters, ...).
    """

    seq: int
    kind: str
    step: int
    wall_time: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe, numpy values coerced)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "step": self.step,
            "wall_time": self.wall_time,
            "detail": json_safe(self.detail),
        }


class IncidentLog:
    """Append-only, thread-safe journal of resilience events.

    Parameters
    ----------
    jsonl_path:
        Optional file to mirror every event into as one JSON line,
        flushed per record — the crash-safe on-disk form.  ``None``
        keeps the journal in memory only (tests, ad-hoc runs).
    """

    def __init__(self, jsonl_path: str | os.PathLike | None = None) -> None:
        self._events: list[Incident] = []
        self._lock = threading.Lock()
        self._jsonl_path: str | None = None
        self._jsonl = None
        if jsonl_path is not None:
            self.attach_jsonl(jsonl_path)

    # ------------------------------------------------------------------
    # crash-safe JSONL sink
    # ------------------------------------------------------------------
    @property
    def jsonl_path(self) -> str | None:
        """Path of the attached append-line journal (or ``None``)."""
        return self._jsonl_path

    def attach_jsonl(self, path: str | os.PathLike) -> None:
        """Mirror every future event into ``path`` (append, flush-per-record)."""
        with self._lock:
            if self._jsonl is not None:
                self._jsonl.close()
            self._jsonl_path = os.fspath(path)
            self._jsonl = open(self._jsonl_path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the JSONL sink (idempotent; the in-memory journal stays)."""
        with self._lock:
            if self._jsonl is not None:
                self._jsonl.close()
                self._jsonl = None

    def record(self, kind: str, step: int = -1, **detail) -> Incident:
        """Append one event; safe to call from worker threads.

        With a JSONL sink attached the event line is written and
        flushed before returning, so a process killed right after the
        triggering fault still leaves this record readable on disk.
        """
        with self._lock:
            event = Incident(
                seq=len(self._events),
                kind=kind,
                step=int(step),
                wall_time=time.time(),
                detail=detail,
            )
            self._events.append(event)
            if self._jsonl is not None:
                self._jsonl.write(json.dumps(event.to_dict()) + "\n")
                self._jsonl.flush()
                os.fsync(self._jsonl.fileno())
        return event

    @classmethod
    def load(cls, path: str | os.PathLike) -> "IncidentLog":
        """Rebuild a log from a JSONL journal written by a (dead) run.

        A torn final line — the process was killed mid-append — is
        skipped, so the readable tail of a crashed worker's journal
        always loads.
        """
        log = cls()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a mid-append kill
                with log._lock:
                    log._events.append(
                        Incident(
                            seq=len(log._events),
                            kind=str(data.get("kind", "unknown")),
                            step=int(data.get("step", -1)),
                            wall_time=float(data.get("wall_time", 0.0)),
                            detail=dict(data.get("detail", {})),
                        )
                    )
        return log

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[Incident]:
        """Snapshot of all events in sequence order."""
        with self._lock:
            return list(self._events)

    def events_of(self, kind: str) -> list[Incident]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return len(self.events_of(kind))

    def counts(self) -> dict[str, int]:
        """Event count per kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def to_json(self, indent: int = 2) -> str:
        """The full journal as a JSON document."""
        return json.dumps(
            {"events": [e.to_dict() for e in self.events], "counts": self.counts()},
            indent=indent,
        )

    def save(self, path: str | os.PathLike) -> None:
        """Write the journal atomically to ``path`` (JSON)."""
        final = os.fspath(path)
        tmp = final + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        os.replace(tmp, final)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
