"""Deterministic chaos harness for the fault-tolerant batch scheduler.

The acceptance bar for fault-tolerant batching is not "the scheduler
usually survives" but a sharp, checkable invariant:

* every submitted job reaches a **terminal state** (completed, failed,
  or diverged — never lost, never stuck);
* every job that completes produces a final state **bit-identical** to
  the same job's fault-free run (``max_abs_delta == 0.0`` against the
  golden state, SHA-256 digest equality) — in particular, a healthy
  slot is never perturbed by a sibling slot's corruption, ejection, or
  mid-run scheduler death.

:class:`ChaosHarness` pins that invariant end to end: it runs a job set
once fault-free to capture golden digests, then replays the identical
submission under a seeded :class:`~repro.resilience.faults.FaultPlan` —
slot corruption (``corrupt_field`` with ``tid`` = batch slot),
checkpoint truncation (``truncate_checkpoint`` through the scheduler's
``after_checkpoint`` hook) and simulated scheduler death
(``kill_worker``, survived via :meth:`BatchScheduler.resume` on the
same workdir with the same injector, so once-faults never re-fire).
Everything is seeded and step-addressed, so a chaos failure replays
exactly — run ``make test-chaos``.

The chaos retry policy uses ``tau_damping=1.0``: damping would change
the retried job's physics and (correctly) break bit-identity, which is
a *stability* remedy, not a fault-recovery one.  Retries restart from
the newest clean checkpoint of the same trajectory, so a completed
retry is bit-identical by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.errors import WorkerKilledError
from repro.resilience.faults import Fault, FaultInjector, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.scheduler import BatchResult, BatchScheduler

# NOTE: repro.batch imports repro.resilience.incident at module level,
# so the batch scheduler (and the digest helpers that pull in the api
# facade) are imported lazily here to keep the package import acyclic.

__all__ = [
    "ChaosHarness",
    "ChaosReport",
    "JobVerdict",
    "service_plan",
    "standard_plan",
]


def standard_plan(
    num_steps: int, checkpoint_every: int = 2, seed: int = 20150715
) -> FaultPlan:
    """The canonical chaos plan: corruption + truncation + worker kill.

    Deterministic given ``(num_steps, checkpoint_every, seed)``: one
    distribution-field corruption in slot 1 mid-run, one checkpoint
    truncation as soon as checkpoints exist, and one scheduler death in
    slot 0 at two-thirds of the run.
    """
    mid = max(1, num_steps // 2)
    late = max(mid + 1, (2 * num_steps) // 3)
    return FaultPlan.of(
        [
            Fault(kind="corrupt_field", step=mid, tid=1, fluid_field="df"),
            Fault(
                kind="truncate_checkpoint",
                step=max(1, checkpoint_every),
                nbytes=512,
            ),
            Fault(kind="kill_worker", step=late, tid=0),
        ],
        seed=seed,
    )


def service_plan(num_steps: int, seed: int = 20150715) -> FaultPlan:
    """The service kill/restart chaos plan: scheduler death only.

    The :class:`~repro.service.SimulationService` restart scenario needs
    a plan without state corruption — the invariant under test is that a
    *process kill* mid-batch loses no accepted job and perturbs no
    trajectory, so the single fault is one ``kill_worker`` at roughly
    half the run.  Deterministic given ``(num_steps, seed)``; the fired
    set rides across resumes, so the kill fires exactly once.
    """
    return FaultPlan.of(
        [Fault(kind="kill_worker", step=max(1, num_steps // 2), tid=0)],
        seed=seed,
    )


@dataclass(frozen=True)
class JobVerdict:
    """Chaos outcome of one job, faulted run vs. fault-free golden."""

    job_id: str
    status: str
    attempts: int
    steps_completed: int
    #: SHA-256 of the faulted run's final state.
    digest: str
    #: SHA-256 of the fault-free run's final state.
    golden_digest: str
    #: Largest absolute elementwise difference across all state arrays
    #: (``0.0`` = bit-identical trajectories).
    max_abs_delta: float

    @property
    def bit_identical(self) -> bool:
        return self.digest == self.golden_digest and self.max_abs_delta == 0.0


@dataclass
class ChaosReport:
    """Everything a chaos run asserts on (and CI archives on failure)."""

    verdicts: dict[str, JobVerdict]
    kills_survived: int
    resumes: int
    incident_counts: dict[str, int]
    workdir: str

    @property
    def all_terminal(self) -> bool:
        """Every submitted job produced a result."""
        return all(
            v.status in ("completed", "failed", "diverged")
            for v in self.verdicts.values()
        )

    @property
    def all_completed(self) -> bool:
        return all(v.status == "completed" for v in self.verdicts.values())

    @property
    def bit_identical(self) -> bool:
        """Every completed job matches its golden digest exactly."""
        return all(
            v.bit_identical
            for v in self.verdicts.values()
            if v.status == "completed"
        )

    def mismatches(self) -> list[str]:
        """Human-readable invariant violations (empty = chaos survived)."""
        problems: list[str] = []
        for job_id, v in sorted(self.verdicts.items()):
            if v.status != "completed":
                problems.append(
                    f"{job_id}: terminal status {v.status!r} after "
                    f"{v.attempts} attempt(s), {v.steps_completed} steps"
                )
            elif not v.bit_identical:
                problems.append(
                    f"{job_id}: completed but drifted from golden "
                    f"(max |delta| = {v.max_abs_delta:.3e}, digest "
                    f"{v.digest[:12]}... vs {v.golden_digest[:12]}...)"
                )
        return problems

    def summary(self) -> dict:
        """JSON-safe one-glance summary (logged by the chaos CI job)."""
        return {
            "jobs": {
                job_id: {
                    "status": v.status,
                    "attempts": v.attempts,
                    "steps_completed": v.steps_completed,
                    "bit_identical": v.bit_identical,
                    "max_abs_delta": v.max_abs_delta,
                }
                for job_id, v in sorted(self.verdicts.items())
            },
            "kills_survived": self.kills_survived,
            "resumes": self.resumes,
            "incidents": self.incident_counts,
            "workdir": self.workdir,
            "all_terminal": self.all_terminal,
            "bit_identical": self.bit_identical,
        }


class ChaosHarness:
    """Golden-vs-faulted differential driver for the batch scheduler.

    Parameters
    ----------
    jobs:
        ``(config, num_steps)`` submissions, replayed identically in
        the golden and the faulted run (job ids ``chaos0``, ``chaos1``,
        ... in submission order — slot assignment is FIFO, so fault
        ``tid``/slot targeting is deterministic).
    workdir:
        Scratch directory for the faulted scheduler's manifest,
        checkpoints and incident journal (must be empty or fresh).
    max_batch / check_finite_every / checkpoint_every / keep_checkpoints
    / max_attempts / quarantine_after / guard:
        Forwarded to the faulted :class:`BatchScheduler` (the golden
        run uses the same batching knobs with no faults and no
        persistence, so both runs batch identically).
    max_resumes:
        Safety bound on kill-resume cycles (a plan with N
        ``kill_worker`` faults needs at most N resumes).
    """

    def __init__(
        self,
        jobs: Sequence[tuple[SimulationConfig, int]],
        workdir: str | os.PathLike,
        *,
        max_batch: int = 4,
        check_finite_every: int = 1,
        checkpoint_every: int = 2,
        keep_checkpoints: int = 3,
        max_attempts: int = 3,
        quarantine_after: int = 3,
        guard: bool = True,
        max_resumes: int = 8,
    ) -> None:
        if not jobs:
            raise ValueError("chaos harness needs at least one job")
        self.jobs = [(config, int(steps)) for config, steps in jobs]
        self.workdir = os.fspath(workdir)
        self.max_batch = max_batch
        self.check_finite_every = check_finite_every
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.max_attempts = max_attempts
        self.quarantine_after = quarantine_after
        self.guard = guard
        self.max_resumes = max_resumes

    # ------------------------------------------------------------------
    def _batch_kwargs(self) -> dict:
        return dict(
            max_batch=self.max_batch,
            check_finite_every=self.check_finite_every,
            guard=self.guard,
            quarantine_after=self.quarantine_after,
        )

    def _submit_all(self, scheduler: BatchScheduler) -> None:
        for index, (config, steps) in enumerate(self.jobs):
            scheduler.submit(config, steps, job_id=f"chaos{index}")

    def golden_run(self) -> "dict[str, BatchResult]":
        """The fault-free reference: same jobs, same batching, no faults."""
        from repro.batch.scheduler import BatchScheduler

        scheduler = BatchScheduler(**self._batch_kwargs())
        self._submit_all(scheduler)
        return scheduler.run()

    def chaos_run(
        self, plan: FaultPlan
    ) -> "tuple[dict[str, BatchResult], int, BatchScheduler]":
        """The faulted run, surviving scheduler kills via resume.

        Returns ``(results, kills_survived, final scheduler)``.  The
        same :class:`FaultInjector` instance rides across every resume,
        so its fired-set is preserved and once-faults never replay.
        """
        from repro.batch.scheduler import BatchRetryPolicy, BatchScheduler

        injector = FaultInjector(plan)
        kwargs = dict(
            self._batch_kwargs(),
            retry_policy=BatchRetryPolicy(
                max_attempts=self.max_attempts, tau_damping=1.0
            ),
            checkpoint_every=self.checkpoint_every,
            keep_checkpoints=self.keep_checkpoints,
        )
        scheduler = BatchScheduler(
            workdir=self.workdir, fault_injector=injector, **kwargs
        )
        self._submit_all(scheduler)
        kills = 0
        while True:
            try:
                results = scheduler.run()
                break
            except WorkerKilledError:
                kills += 1
                if kills > self.max_resumes:
                    raise
                scheduler = BatchScheduler.resume(
                    self.workdir, fault_injector=injector, **kwargs
                )
        return results, kills, scheduler

    def run(self, plan: FaultPlan | None = None) -> ChaosReport:
        """Golden run, faulted run, differential verdict."""
        from repro.verify.golden import fields_digest

        if plan is None:
            plan = standard_plan(
                max(steps for _, steps in self.jobs), self.checkpoint_every
            )
        golden = self.golden_run()
        results, kills, scheduler = self.chaos_run(plan)
        verdicts: dict[str, JobVerdict] = {}
        for job_id, gold in golden.items():
            result = results.get(job_id)
            if result is None:
                verdicts[job_id] = JobVerdict(
                    job_id=job_id,
                    status="lost",
                    attempts=0,
                    steps_completed=0,
                    digest="",
                    golden_digest=fields_digest(gold.fluid, gold.structure),
                    max_abs_delta=float("inf"),
                )
                continue
            verdicts[job_id] = JobVerdict(
                job_id=job_id,
                status=result.status,
                attempts=result.attempts,
                steps_completed=result.steps_completed,
                digest=fields_digest(result.fluid, result.structure),
                golden_digest=fields_digest(gold.fluid, gold.structure),
                max_abs_delta=_max_abs_delta(result, gold),
            )
        # The crash-safe on-disk journal spans every pre-kill scheduler
        # incarnation; the final scheduler's in-memory log does not.
        from repro.batch.scheduler import INCIDENTS_NAME
        from repro.resilience.incident import IncidentLog

        journal = os.path.join(self.workdir, INCIDENTS_NAME)
        if os.path.exists(journal):
            incident_counts = IncidentLog.load(journal).counts()
        else:
            incident_counts = scheduler.incidents.counts()
        return ChaosReport(
            verdicts=verdicts,
            kills_survived=kills,
            resumes=incident_counts.get("scheduler_resumed", 0),
            incident_counts=incident_counts,
            workdir=self.workdir,
        )


def _max_abs_delta(result: "BatchResult", golden: "BatchResult") -> float:
    """Largest elementwise |difference| between two results' states."""
    from repro.verify.golden import state_arrays

    ours = state_arrays(result.fluid, result.structure)
    theirs = state_arrays(golden.fluid, golden.structure)
    if sorted(ours) != sorted(theirs):
        return float("inf")
    delta = 0.0
    for key, arr in ours.items():
        other = theirs[key]
        if arr.shape != other.shape:
            return float("inf")
        delta = max(delta, float(np.max(np.abs(arr - other), initial=0.0)))
    return delta
