"""High-level API: the :class:`Simulation` facade.

The paper advertises "an easy-to-use application programming
interface"; this module is it.  A single
:class:`~repro.config.SimulationConfig` describes the problem and the
solver variant; :class:`Simulation` wires up the grid, structure, delta
kernel, boundaries and solver, and exposes a uniform ``run``/``step``
interface plus convenient diagnostics regardless of which of the three
solver programs is running underneath.

>>> from repro.api import Simulation, SimulationConfig
>>> sim = Simulation(SimulationConfig(fluid_shape=(16, 16, 16)))
>>> sim.run(5)
>>> sim.time_step
5
"""

from __future__ import annotations

import os

import numpy as np

from repro.config import BoundaryConfig, SimulationConfig, StructureConfig
from repro.core.lbm import analysis
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.constants import viscosity_from_tau
from repro.errors import ConfigurationError

__all__ = [
    "Simulation",
    "SimulationConfig",
    "StructureConfig",
    "BoundaryConfig",
    "SimulationService",
]


def __getattr__(name):
    # Lazy: the asyncio service layer is only imported when asked for.
    if name == "SimulationService":
        from repro.service import SimulationService

        return SimulationService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Sentinel: "no initial structure was supplied" (``None`` is a valid
#: structure meaning a fluid-only run, so it cannot be the default).
_UNSET = object()

_FLUID_STATE_FIELDS = (
    "df",
    "df_new",
    "density",
    "velocity",
    "velocity_shifted",
    "force",
)


class Simulation:
    """A configured LBM-IB simulation with a uniform driving interface.

    Parameters
    ----------
    config:
        The complete run description.  The solver variant is selected by
        ``config.solver``; all variants produce identical physics (this
        is enforced by the test suite).
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`; its
        hooks are wired into the selected solver (per-step kill/corrupt
        faults) and, for the distributed variants, into the simulated
        communicator (drop/delay faults).
    invariants:
        Optional :class:`~repro.verify.invariants.InvariantSuite`
        checked after every completed time step (see
        :meth:`attach_invariants`).
    initial_fluid / initial_structure / initial_step:
        Restore state: copy this fluid state (and adopt this structure)
        instead of the config-built initial condition, and start the
        step counter at ``initial_step``.  Used by
        :meth:`from_checkpoint`; the fluid's ``tau`` still comes from
        ``config`` so a restore may retry with damped parameters.
    telemetry:
        Optional :class:`~repro.observe.Telemetry` bundle; its tracer
        is wired into the selected solver (per-kernel spans) and its
        metrics registry receives the ``sim.steps`` counter (see
        :meth:`attach_telemetry`).  ``None`` (the default) keeps every
        solver on its zero-overhead untraced path.
    """

    def __init__(
        self,
        config: SimulationConfig,
        fault_injector=None,
        initial_fluid: FluidGrid | None = None,
        initial_structure=_UNSET,
        initial_step: int = 0,
        invariants=None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.fault_injector = fault_injector
        self._invariants = None
        self._telemetry = None
        if initial_structure is _UNSET:
            self._built_structure = config.build_structure()
        else:
            self._built_structure = initial_structure
        self._delta = config.build_delta()
        self._boundaries = config.build_boundaries()
        self._fluid = FluidGrid(
            config.fluid_shape,
            tau=config.effective_tau,
            collision_operator=config.collision_operator,
            single_lattice=config.solver == "inplace",
            precision=config.precision,
        )
        if initial_fluid is not None:
            if tuple(initial_fluid.shape) != tuple(config.fluid_shape):
                raise ConfigurationError(
                    f"restored fluid shape {initial_fluid.shape} does not match "
                    f"configured shape {config.fluid_shape}"
                )
            # An inplace-variant checkpoint may carry the raw AA-encoded
            # lattice (aa_phase 1, streaming deferred mid-cycle).  An
            # inplace reader adopts it verbatim plus the phase flag; any
            # other variant decodes to the natural layout first, which
            # is exactly the sequential post-step state.
            restored_phase = int(getattr(initial_fluid, "aa_phase", 0))
            src_df = initial_fluid.df
            if restored_phase and config.solver != "inplace":
                from repro.core.lbm.inplace import aa_decode

                src_df = aa_decode(initial_fluid.df)
                restored_phase = 0
            for name in _FLUID_STATE_FIELDS:
                if name == "df":
                    self._fluid.df[...] = src_df
                    continue
                if name == "df_new":
                    if self._fluid.df_new is None:
                        continue
                    src_new = getattr(initial_fluid, "df_new", None)
                    if src_new is None or src_df is not initial_fluid.df:
                        # Single-lattice writer (or decoded state): seed
                        # the second buffer with the natural lattice, as
                        # after a sequential step.
                        self._fluid.df_new[...] = src_df
                    else:
                        self._fluid.df_new[...] = src_new
                    continue
                getattr(self._fluid, name)[...] = getattr(initial_fluid, name)
            if config.solver == "inplace":
                self._fluid.aa_phase = restored_phase
        self._initial_step = int(initial_step)
        self._cubes = None
        self._distributed = None
        self._batch = None

        if config.solver == "sequential":
            self._solver = SequentialLBMIBSolver(
                self._fluid,
                self._built_structure,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
                fault_hook=self._hook_for(self._fluid),
            )
        elif config.solver == "fused":
            from repro.core.fused_solver import FusedLBMIBSolver

            self._solver = FusedLBMIBSolver(
                self._fluid,
                self._built_structure,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
                fault_hook=self._hook_for(self._fluid),
            )
        elif config.solver == "inplace":
            from repro.core.inplace_solver import InplaceLBMIBSolver

            self._solver = InplaceLBMIBSolver(
                self._fluid,
                self._built_structure,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
                fault_hook=self._hook_for(self._fluid),
            )
        elif config.solver == "batched":
            from repro.batch import BatchedFluidGrid, BatchedLBMIBSolver

            # A single Simulation runs as a batch of one; the state
            # lives in the batched layout and is reached through a live
            # slot view (df/df_new track the batched buffer swap).
            self._batch = BatchedFluidGrid(
                config.fluid_shape,
                1,
                tau=config.effective_tau,
                collision_operator=config.collision_operator,
                precision=config.precision,
            )
            solver = BatchedLBMIBSolver(
                self._batch,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
            )
            solver.load_slot(0, self._fluid, self._built_structure)
            solver.fault_hook = self._hook_for(self._batch.view(0))
            self._solver = solver
        elif config.solver == "openmp":
            from repro.parallel.openmp_solver import OpenMPLBMIBSolver

            self._solver = OpenMPLBMIBSolver(
                self._fluid,
                self._built_structure,
                num_threads=config.num_threads,
                delta=self._delta,
                boundaries=self._boundaries,
                fiber_method=config.fiber_method,
                dt=config.dt,
                external_force=config.external_force,
                fault_hook=self._hook_for(self._fluid),
                barrier_timeout=config.barrier_timeout,
            )
        elif config.solver in ("cube", "async_cube"):
            from repro.parallel.async_cube_solver import AsyncCubeLBMIBSolver
            from repro.parallel.cube_solver import CubeLBMIBSolver
            from repro.parallel.cubes import CubeGrid

            self._cubes = CubeGrid.from_fluid_grid(self._fluid, config.cube_size)
            solver_cls = (
                CubeLBMIBSolver if config.solver == "cube" else AsyncCubeLBMIBSolver
            )
            self._solver = solver_cls(
                self._cubes,
                self._built_structure,
                num_threads=config.num_threads,
                cube_method=config.cube_method,
                fiber_method=config.fiber_method,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
                fault_hook=self._hook_for(self._cubes),
                barrier_timeout=config.barrier_timeout,
            )
        elif config.solver in ("distributed", "hybrid"):
            # Construction is deferred to the first run(): the distributed
            # solvers replicate the structure per rank at build time, so
            # building lazily lets callers adjust initial conditions
            # through ``sim.structure`` / ``sim.fluid`` first.
            self._solver = None
        else:  # pragma: no cover - config validation rejects this earlier
            raise ConfigurationError(f"unknown solver {config.solver!r}")
        if self._solver is not None:
            self._solver.time_step = self._initial_step
        if invariants is not None:
            self.attach_invariants(invariants)
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def _hook_for(self, state):
        if self.fault_injector is None:
            return None
        return self.fault_injector.hook_for(state)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    @staticmethod
    def _chain_hooks(*hooks):
        hooks = [h for h in hooks if h is not None]
        if not hooks:
            return None
        if len(hooks) == 1:
            return hooks[0]

        def chained(tid: int, step: int) -> None:
            for hook in hooks:
                hook(tid, step)

        return chained

    def attach_invariants(self, suite) -> None:
        """Check ``suite`` after every completed time step.

        Two hooks are installed: the suite's global checkers run on the
        gathered state after each step of :meth:`run` (any variant),
        and its cheap per-thread NaN/Inf sentinel is chained onto the
        thread-parallel solvers' step hooks, where a violation inside a
        worker surfaces as a typed
        :class:`~repro.errors.InvariantError` localized to the
        offending thread and cube.  Conserved-quantity baselines are
        (re)bound to the *current* state, so attaching after a
        checkpoint restore or resilience rollback measures drift from
        the restored state, not the original run's.
        """
        self._invariants = suite
        suite.bind(self.fluid, self.structure)
        if self._telemetry is not None:
            suite.metrics = self._telemetry.metrics
        if self._solver is not None and hasattr(self._solver, "fault_hook"):
            if self._cubes is not None:
                state = self._cubes
            elif self._batch is not None:
                state = self._batch.view(0)
            else:
                state = self._fluid
            self._solver.fault_hook = self._chain_hooks(
                self._solver.fault_hook, suite.sentinel_hook(state)
            )

    @property
    def invariants(self):
        """The attached invariant suite (or ``None``)."""
        return self._invariants

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        """Route this simulation's spans and metrics into ``telemetry``.

        The bundle's :class:`~repro.observe.tracer.Tracer` is installed
        on the underlying solver (for the lazily built distributed
        variants, installation is deferred to the first :meth:`run`),
        and every :meth:`run` bumps the registry's ``sim.steps``
        counter.  Call :func:`repro.observe.Telemetry.collect` after a
        run to harvest barrier/lock/trace statistics into metrics.
        """
        self._telemetry = telemetry
        if self._solver is not None:
            self._solver.tracer = telemetry.tracer
        if self._invariants is not None:
            self._invariants.metrics = telemetry.metrics

    @property
    def telemetry(self):
        """The attached telemetry bundle (or ``None``)."""
        return self._telemetry

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _ensure_solver(self):
        if self._solver is not None:
            return self._solver
        config = self.config
        if config.solver == "distributed":
            from repro.distributed.solver import DistributedLBMIBSolver

            self._solver = DistributedLBMIBSolver(
                self._fluid,
                self._built_structure,
                num_ranks=config.num_threads,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
            )
        else:
            from repro.distributed.hybrid import HybridCubeLBMIBSolver

            self._solver = HybridCubeLBMIBSolver(
                self._fluid,
                self._built_structure,
                num_ranks=config.num_threads,
                cube_size=config.cube_size,
                delta=self._delta,
                boundaries=self._boundaries,
                dt=config.dt,
                external_force=config.external_force,
            )
        self._solver.time_step = self._initial_step
        if self.fault_injector is not None:
            self._solver.comm.fault_injector = self.fault_injector
        if config.barrier_timeout is not None:
            self._solver.comm.timeout = config.barrier_timeout
        if self._telemetry is not None:
            self._solver.tracer = self._telemetry.tracer
        self._distributed = self._solver
        return self._solver

    def run(self, num_steps: int) -> None:
        """Advance the simulation by ``num_steps`` time steps.

        With an invariant suite attached the solver is driven one step
        at a time so every step's gathered state is checked; violations
        raise :class:`~repro.errors.InvariantError` at the first bad
        step instead of surfacing as garbage numbers later.
        """
        solver = self._ensure_solver()
        if self._invariants is None:
            solver.run(num_steps)
        else:
            for _ in range(num_steps):
                solver.run(1)
                self._invariants.check_simulation(self)
        if self._telemetry is not None and num_steps:
            self._telemetry.metrics.counter("sim.steps").inc(num_steps)

    def step(self) -> None:
        """Advance one time step (parallel solvers accept run(1) only)."""
        self.run(1)

    @property
    def time_step(self) -> int:
        """Number of completed time steps."""
        return self._solver.time_step if self._solver is not None else self._initial_step

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str | os.PathLike) -> None:
        """Atomically save the complete state (any solver variant).

        The state is gathered into the global layout first, so a
        checkpoint written by one solver variant restores into any
        other — the fallback path the resilient runner relies on.  The
        in-place variant saves its raw single lattice plus the
        ``aa_phase`` flag instead (no ``df_new`` entry); readers decode
        mid-cycle checkpoints to the natural layout on restore.
        """
        from repro.io.checkpoint import save_checkpoint

        fluid = self._fluid if self._fluid.single_lattice else self.fluid
        save_checkpoint(path, fluid, self.structure, time_step=self.time_step)

    @classmethod
    def from_checkpoint(
        cls,
        path: str | os.PathLike,
        config: SimulationConfig,
        fault_injector=None,
    ) -> "Simulation":
        """Rebuild a simulation from a checkpoint under ``config``.

        ``config`` may differ from the writing run's configuration — a
        different solver variant (worker-death fallback) or damped
        ``tau``/``dt`` (stability retry); only the fluid shape must
        match.  Raises :class:`~repro.errors.CheckpointError` for a
        missing, truncated, or corrupted file.
        """
        from repro.io.checkpoint import load_checkpoint

        fluid, structure, step = load_checkpoint(path)
        return cls(
            config,
            fault_injector=fault_injector,
            initial_fluid=fluid,
            initial_structure=structure,
            initial_step=step,
        )

    def close(self) -> None:
        """Release solver resources (worker pools); idempotent."""
        close = getattr(self._solver, "close", None) if self._solver else None
        if close is not None:
            close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # state access (uniform across solver variants)
    # ------------------------------------------------------------------
    @property
    def fluid(self) -> FluidGrid:
        """The fluid state in the global layout.

        For the cube-layout and distributed solvers this *gathers* the
        partitioned state into a fresh :class:`FluidGrid` (a copy); for
        the batched solver it is a live slot view; for the other
        solvers it is the live grid.
        """
        if self._distributed is not None:
            return self._distributed.gather_fluid()
        if self._cubes is not None:
            return self._cubes.to_fluid_grid()
        if self._batch is not None:
            return self._batch.view(0)
        if self._fluid.single_lattice:
            from repro.core.lbm.inplace import decoded_fluid

            # Live grid at phase 0 (the single lattice is natural); a
            # decoded two-lattice copy mid AA-cycle.
            return decoded_fluid(self._fluid)
        return self._fluid

    @property
    def structure(self):
        """The immersed structure (rank 0's replica for distributed runs)."""
        if self._distributed is not None:
            return self._distributed.structure
        return self._built_structure

    @property
    def solver(self):
        """The underlying solver object (variant-specific features)."""
        return self._ensure_solver()

    @property
    def viscosity(self) -> float:
        """Kinematic viscosity implied by the configured tau."""
        return viscosity_from_tau(self.config.effective_tau)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def kinetic_energy(self) -> float:
        """Total fluid kinetic energy."""
        fluid = self.fluid
        return analysis.kinetic_energy(fluid.velocity, fluid.density)

    def max_velocity(self) -> float:
        """Maximum velocity magnitude (Mach-number stability check)."""
        return analysis.max_velocity_magnitude(self.fluid.velocity)

    def vorticity(self) -> np.ndarray:
        """Vorticity field ``(3, Nx, Ny, Nz)``."""
        return analysis.vorticity(self.fluid.velocity)

    def fiber_positions(self) -> list[np.ndarray]:
        """Current fiber-node positions, one array per sheet."""
        if self.structure is None:
            return []
        return [s.positions.copy() for s in self.structure.sheets]

    def structure_centroid(self) -> np.ndarray | None:
        """Centroid of the first sheet's active nodes (or ``None``)."""
        if self.structure is None:
            return None
        return self.structure.sheets[0].centroid()
