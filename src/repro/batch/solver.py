"""Batched LBM-IB solver: B simulations per kernel call, per-sim IB.

:class:`BatchedLBMIBSolver` advances every slot of a
:class:`~repro.batch.fields.BatchedFluidGrid` through the same
nine-kernel time step as the fused solver, with the fluid half batched
(one numpy call per operation for all B slots) and the IB half applied
per slot (each slot owns its own immersed structure — fiber counts and
positions differ between simulations, so there is nothing to batch).

Step structure (identical physics to
:class:`~repro.core.fused_solver.FusedLBMIBSolver`, slot by slot):

1. kernels 1-3 per slot with a structure (fiber forces);
2. kernel 4 per slot (force spread, sharing one delta-stencil
   evaluation per sheet with this step's interpolation);
3. kernels 5+6 batched (:func:`~repro.batch.kernels.batched_collide_stream`),
   with boundary face capture widened to ``(B, ...)`` buffers and the
   boundary repair applied per slot;
4. kernel 7 batched (:func:`~repro.batch.kernels.batched_update_velocity_fields`);
5. kernel 8 per slot (move fibers);
6. kernel 9 as a batched pointer swap.

Because every batched operation is bit-identical to its solo
counterpart and the per-slot operations *are* the solo kernels, each
slot's trajectory is bit-identical to running that simulation alone —
slots never exchange information (streaming is per-slot periodic, so
even a NaN cannot cross the batch axis).

Slots carry their own step counters and an ``active`` mask so the
continuous-batching scheduler can retire a finished or diverged slot
and refill it mid-run (:meth:`load_slot` / :meth:`clear_slot`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.guard import SlotGuard
    from repro.observe.tracer import Tracer

from repro.constants import DT
from repro.core import kernels
from repro.core.ib import motion as _motion
from repro.core.ib import spreading as _spreading
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.boundaries import Boundary, face_index, validate_boundaries
from repro.core.lbm.fields import FluidGrid
from repro.batch.fields import BatchedFluidGrid
from repro.batch.kernels import (
    batched_collide_stream,
    batched_update_velocity_fields,
)

__all__ = ["BatchedLBMIBSolver"]


class BatchedLBMIBSolver:
    """Run B independent LBM-IB simulations through batched kernels.

    Parameters
    ----------
    grid:
        The batched fluid state (``grid.batch`` slots).
    structures:
        Per-slot immersed structure (``None`` for fluid-only slots);
        padded with ``None`` when shorter than the batch.
    delta / boundaries / dt / external_force:
        Shared physics, identical for every slot (the scheduler only
        groups compatible configs into one batch).
    kernel_timer / tracer / fault_hook:
        Same observability/fault surface as the solo solvers; the fault
        hook is called once per batched step with thread id 0.
    guard:
        Optional :class:`~repro.batch.guard.SlotGuard`.  When attached,
        every :meth:`load_slot` binds fresh per-slot health checkers,
        every :meth:`clear_slot` releases them, and the end of every
        :meth:`step` runs the guard's inspection — a failing slot is
        ejected from the shared arrays without perturbing its siblings
        (see :mod:`repro.batch.guard`).
    """

    def __init__(
        self,
        grid: BatchedFluidGrid,
        structures: Sequence[ImmersedStructure | None] = (),
        delta: DeltaKernel | None = None,
        boundaries: Sequence[Boundary] = (),
        dt: float = DT,
        external_force: tuple[float, float, float] | None = None,
        kernel_timer: Callable[[str, float], None] | None = None,
        fault_hook: Callable[[int, int], None] | None = None,
        tracer: "Tracer | None" = None,
        guard: "SlotGuard | None" = None,
    ) -> None:
        self.grid = grid
        self.guard = guard
        self.delta = delta if delta is not None else default_delta()
        self.boundaries = list(boundaries)
        validate_boundaries(self.boundaries)
        self.dt = dt
        self.external_force = external_force
        self.kernel_timer = kernel_timer
        self.fault_hook = fault_hook
        self.tracer = tracer
        self.time_step = 0

        b = grid.batch
        self.structures: list[ImmersedStructure | None] = list(structures)
        if len(self.structures) > b:
            raise ValueError(
                f"{len(self.structures)} structures for a batch of {b} slots"
            )
        self.structures += [None] * (b - len(self.structures))
        #: Per-slot completed-step counters (continuous batching: slots
        #: admitted mid-run start counting from their admission).
        self.slot_steps = [0] * b
        #: Slots currently carrying a live simulation.
        self.active = [True] * b

        self._stencil_cache = _spreading.StencilCache()
        self._ext: np.ndarray | None = None
        if external_force is not None:
            self._ext = np.asarray(external_force, dtype=grid.force.dtype).reshape(
                3, 1, 1, 1
            )
            self.grid.force[...] = self._ext
        self._build_capture_plan()

    # ------------------------------------------------------------------
    def _build_capture_plan(self) -> None:
        """Preallocate ``(B, ...)`` face buffers for df_post-reading BCs."""
        shape = self.grid.shape
        b = self.grid.batch
        face_dtype = self.grid.df.dtype
        plan: dict[int, list[tuple[tuple, np.ndarray]]] = {}
        # (boundary, per-slot {direction: face layer} dicts) in apply order
        self._fused_boundaries: list[
            tuple[Boundary, list[dict[int, np.ndarray]]]
        ] = []
        for boundary in self.boundaries:
            slot_faces: list[dict[int, np.ndarray]] = [{} for _ in range(b)]
            deps = boundary.post_dependencies()
            if deps:
                idx = face_index(boundary.axis, boundary.side, shape)
                face_shape = self.grid.df[0, 0][idx].shape
                for direction in deps:
                    buf = np.empty((b,) + face_shape, dtype=face_dtype)
                    for slot in range(b):
                        slot_faces[slot][int(direction)] = buf[slot]
                    plan.setdefault(int(direction), []).append((idx, buf))
            self._fused_boundaries.append((boundary, slot_faces))
        self._capture_plan = plan
        self._capture = self._capture_faces if plan else None

    def _capture_faces(self, direction: int, post: np.ndarray) -> None:
        for idx, buf in self._capture_plan.get(direction, ()):
            buf[...] = post[(slice(None),) + idx]

    # ------------------------------------------------------------------
    def _timed(self, name: str, fn: Callable[[], None]) -> None:
        tracer = self.tracer
        if tracer is None and self.kernel_timer is None:
            fn()
            return
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if self.kernel_timer is not None:
            self.kernel_timer(name, elapsed)
        if tracer is not None:
            tracer.record(name, 0, start, elapsed, step=self.time_step)

    # ------------------------------------------------------------------
    # slot management (continuous batching)
    # ------------------------------------------------------------------
    def load_slot(
        self,
        slot: int,
        fluid: FluidGrid,
        structure: ImmersedStructure | None = None,
        job_id: str | None = None,
    ) -> None:
        """Admit a simulation into ``slot`` (initial fill or refill).

        Copies the fluid state in, adopts ``structure`` (mutated in
        place as the slot advances), resets the slot's step counter and
        marks it active.  The external body force is re-seeded exactly
        as the solo solvers do at construction, so a freshly admitted
        slot's first step matches its solo run's first step.  With a
        :class:`~repro.batch.guard.SlotGuard` attached, fresh per-slot
        health checkers are bound to the newly admitted state
        (``job_id`` ties repeat offences together across retries).
        """
        self.grid.load_slot(slot, fluid)
        if self._ext is not None:
            self.grid.force[slot][...] = self._ext
        self.structures[slot] = structure
        self.slot_steps[slot] = 0
        self.active[slot] = True
        if self.guard is not None:
            self.guard.bind_slot(self, slot, job_id=job_id)

    def clear_slot(self, slot: int) -> None:
        """Retire ``slot``: drop its structure, park it at equilibrium.

        The parked state keeps the batched sweep numerically benign (a
        diverged slot's NaNs would otherwise churn through every
        subsequent step's arithmetic of that slot).
        """
        self.structures[slot] = None
        self.active[slot] = False
        self.slot_steps[slot] = 0
        self.grid.reset_slot(slot)
        if self.guard is not None:
            self.guard.release_slot(slot)

    def slot_finite(self, slot: int) -> bool:
        """Divergence probe for the scheduler (see ``BatchedFluidGrid``)."""
        return self.grid.slot_finite(slot)

    @property
    def occupancy(self) -> int:
        """Number of slots currently carrying a live simulation."""
        return sum(self.active)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _fiber_forces(self) -> None:
        for structure in self.structures:
            if structure is None:
                continue
            kernels.compute_bending_force_in_fibers(structure)
            kernels.compute_stretching_force_in_fibers(structure)
            kernels.compute_elastic_force_in_fibers(structure)

    def _spread_forces(self) -> None:
        for slot, structure in enumerate(self.structures):
            if structure is None:
                continue
            force = self.grid.force[slot]
            for sheet in structure.sheets:
                _spreading.spread_forces(
                    sheet, self.delta, force, cache=self._stencil_cache
                )

    def _collide_stream_boundaries(self) -> None:
        batched_collide_stream(self.grid, capture=self._capture)
        df_new = self.grid.df_new
        for boundary, slot_faces in self._fused_boundaries:
            for slot in range(self.grid.batch):
                boundary.apply_fused(slot_faces[slot], df_new[slot])

    def _move_fibers(self) -> None:
        for slot, structure in enumerate(self.structures):
            if structure is None:
                continue
            velocity = self.grid.velocity[slot]
            for sheet in structure.sheets:
                _motion.move_fibers(
                    sheet,
                    self.delta,
                    velocity,
                    dt=self.dt,
                    cache=self._stencil_cache,
                )

    def step(self) -> None:
        """Advance every active slot by one time step."""
        if self.fault_hook is not None:
            self.fault_hook(0, self.time_step)
        any_structure = any(s is not None for s in self.structures)

        # --- IB related (kernels 1-4, per slot) ---
        if any_structure:
            self._timed("compute_fiber_forces", self._fiber_forces)
            self._stencil_cache.begin_step()
            self._timed("spread_force_from_fibers_to_fluid", self._spread_forces)

        # --- LBM related: kernels 5 + 6 batched ---
        self._timed("batched_collide_stream", self._collide_stream_boundaries)

        # --- FSI coupling related ---
        self._timed(
            "update_fluid_velocity",
            lambda: batched_update_velocity_fields(self.grid),
        )
        if any_structure:
            self._timed("move_fibers", self._move_fibers)
            self._stencil_cache.end_step()
        self._timed("swap_distributions", self.grid.swap_distributions)

        if self._ext is None:
            self.grid.force[...] = 0.0
        else:
            self.grid.force[...] = self._ext

        self.time_step += 1
        for slot in range(self.grid.batch):
            if self.active[slot]:
                self.slot_steps[slot] += 1
        if self.guard is not None:
            self._timed("slot_guard", lambda: self.guard.inspect(self))

    def run(self, num_steps: int, observer=None) -> None:
        """Run ``num_steps`` batched time steps."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for _ in range(num_steps):
            self.step()
            if observer is not None:
                observer(self.time_step, self)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Diagnostic snapshot of slot 0 (solo-solver interface parity)."""
        structure = self.structures[0]
        return {
            "velocity": self.grid.velocity[0].copy(),
            "density": self.grid.density[0].copy(),
            "force": self.grid.force[0].copy(),
            "fiber_positions": (
                [s.positions.copy() for s in structure.sheets]
                if structure is not None
                else []
            ),
        }
