"""Batched fluid state: B same-shaped simulations on one leading axis.

:class:`BatchedFluidGrid` stacks the complete fluid state of ``B``
independent simulations along a leading batch axis — distributions
``(B, 19, Nx, Ny, Nz)``, density ``(B, Nx, Ny, Nz)``, vector fields
``(B, 3, Nx, Ny, Nz)``.  Every batched kernel then runs one numpy call
over all ``B`` slots, amortizing the Python/numpy dispatch overhead
that dominates small-grid steps (the same batched-execution shape GPU
LBM codes use to saturate hardware).

Layout guarantees the batched kernels rely on:

* slot ``b``'s sub-arrays (``df[b]``, ``density[b]``...) are
  C-contiguous and laid out exactly like a solo
  :class:`~repro.core.lbm.fields.FluidGrid`'s fields — a slot is
  bit-for-bit a solo simulation;
* a direction slab ``df[:, i]`` is a single (strided) array covering
  all ``B`` slots, so the per-direction fused sweep stays one numpy
  call per operation;
* elementwise numpy ufuncs, ``np.sum`` over the direction axis and
  stacked ``np.matmul`` are all bit-identical to their per-slot forms,
  so every slot of a batched step reproduces its solo sequential run
  exactly (enforced by the differential oracle and golden baselines).

:meth:`BatchedFluidGrid.view` returns a *live* :class:`FluidGrid`-
compatible view of one slot: ``df``/``df_new`` are properties that
track the batched grid's buffer swap, so fault hooks, invariant
sentinels and ``Simulation.fluid`` always see the current state.
"""

from __future__ import annotations

import numpy as np

from repro.constants import Q, RHO0
from repro.core.backend import backend_for
from repro.core.lbm import equilibrium
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError

__all__ = ["BatchedFluidGrid", "BatchSlotView", "adopt_state"]

#: Per-slot array fields copied by :meth:`BatchedFluidGrid.load_slot`.
_STATE_FIELDS = ("df", "df_new", "density", "velocity", "velocity_shifted", "force")


def adopt_state(
    fluid: FluidGrid, tau: float, collision_operator: str
) -> FluidGrid:
    """``fluid``'s state under (possibly different) lattice parameters.

    Returns ``fluid`` itself when the parameters already match;
    otherwise a fresh :class:`FluidGrid` with the requested ``tau`` /
    ``collision_operator`` carrying a copy of every state array.  This
    is how the batch scheduler re-admits a checkpointed state under
    damped retry parameters — the same contract as
    :class:`repro.api.Simulation`'s restore path, where the state comes
    from the checkpoint but the relaxation comes from the (retried)
    config.
    """
    if fluid.tau == tau and fluid.collision_operator == collision_operator:
        return fluid
    adopted = FluidGrid(
        fluid.shape,
        tau=tau,
        collision_operator=collision_operator,
        precision=fluid.precision,
    )
    for name in _STATE_FIELDS:
        getattr(adopted, name)[...] = getattr(fluid, name)
    return adopted


class BatchSlotView(FluidGrid):
    """Live :class:`FluidGrid` view of one slot of a batched grid.

    ``df`` and ``df_new`` are read through the owning
    :class:`BatchedFluidGrid` on every access, so the view stays
    correct across :meth:`BatchedFluidGrid.swap_distributions` (which
    swaps array *references*, not contents).  The macroscopic fields
    are plain slot sub-arrays — writes through the view hit the batch.

    Instances are created by :meth:`BatchedFluidGrid.view`; the
    dataclass ``__init__`` is bypassed (no new storage is allocated).
    """

    # Data descriptors win over instance attributes, so these shadow
    # the dataclass fields of FluidGrid for view instances.
    @property
    def df(self) -> np.ndarray:  # type: ignore[override]
        return self._batch.df[self._slot]

    @property
    def df_new(self) -> np.ndarray:  # type: ignore[override]
        return self._batch.df_new[self._slot]


class BatchedFluidGrid:
    """State of ``batch`` independent fluids on one shared mesh shape.

    Parameters
    ----------
    shape:
        Grid dimensions ``(Nx, Ny, Nz)`` shared by every slot.
    batch:
        Number of simulation slots ``B``.
    tau / collision_operator / trt_magic:
        Lattice relaxation parameters, shared by every slot (the batch
        scheduler only groups simulations with identical values).

    Every slot starts at the quiescent equilibrium; use
    :meth:`load_slot` to install a specific simulation's state.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        batch: int,
        tau: float = 1.0,
        collision_operator: str = "bgk",
        trt_magic: float = 3.0 / 16.0,
        precision="float64",
    ) -> None:
        # Reuse FluidGrid's validation (shape, tau, operator, precision),
        # then discard its solo storage in favour of the batched arrays.
        probe = FluidGrid(
            shape,
            tau=tau,
            collision_operator=collision_operator,
            trt_magic=trt_magic,
            precision=precision,
        )
        if batch < 1:
            raise ConfigurationError(f"batch size must be positive, got {batch}")
        self.shape = probe.shape
        self.batch = int(batch)
        self.tau = probe.tau
        self.collision_operator = probe.collision_operator
        self.trt_magic = probe.trt_magic
        self.precision = probe.precision
        backend = backend_for(self.precision)
        nx, ny, nz = self.shape
        b = self.batch
        self.df = backend.empty((b, Q, nx, ny, nz))
        self.df_new = backend.empty((b, Q, nx, ny, nz))
        self.density = backend.full((b, nx, ny, nz), RHO0)
        self.velocity = backend.zeros((b, 3, nx, ny, nz))
        self.velocity_shifted = backend.zeros((b, 3, nx, ny, nz))
        self.force = backend.zeros((b, 3, nx, ny, nz))
        self._arena = None
        # All slots start identical: compute slot 0's equilibrium once.
        equilibrium.equilibrium(self.density[0], self.velocity[0], out=self.df[0])
        self.df[1:] = self.df[0]
        self.df_new[...] = self.df

    # ------------------------------------------------------------------
    # batched scratch
    # ------------------------------------------------------------------
    @property
    def arena(self):
        """Lazily created scratch arena for the batched kernels."""
        if self._arena is None:
            from repro.core.arena import ScratchArena

            self._arena = ScratchArena(self.shape, dtype=self.precision.compute)
        return self._arena

    def scratch_scalar(self, name: str) -> np.ndarray:
        """Reusable ``(B, Nx, Ny, Nz)`` scratch buffer named ``name``."""
        return self.arena.buffer(name, (self.batch,) + self.shape)

    def scratch_vector(self, name: str) -> np.ndarray:
        """Reusable ``(B, 3, Nx, Ny, Nz)`` scratch buffer named ``name``."""
        return self.arena.buffer(name, (self.batch, 3) + self.shape)

    # ------------------------------------------------------------------
    # hot-path helpers
    # ------------------------------------------------------------------
    @property
    def tau_odd(self) -> float:
        """Odd-moment relaxation time (see :attr:`FluidGrid.tau_odd`)."""
        if self.collision_operator == "trt":
            return self.trt_magic / (self.tau - 0.5) + 0.5
        return self.tau

    def swap_distributions(self) -> None:
        """Exchange ``df`` and ``df_new`` for every slot (pointer swap)."""
        self.df, self.df_new = self.df_new, self.df

    # ------------------------------------------------------------------
    # slot management
    # ------------------------------------------------------------------
    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.batch:
            raise IndexError(f"slot {slot} out of range for batch {self.batch}")

    def load_slot(self, slot: int, fluid: FluidGrid) -> None:
        """Copy a solo simulation's complete fluid state into ``slot``.

        The fluid must match the batch's shape and lattice parameters —
        the batched collision uses one shared ``tau``/operator, so a
        mismatch would silently change the slot's physics.
        """
        self._check_slot(slot)
        if tuple(fluid.shape) != self.shape:
            raise ConfigurationError(
                f"slot fluid shape {fluid.shape} does not match batch shape {self.shape}"
            )
        if (
            fluid.tau != self.tau
            or fluid.collision_operator != self.collision_operator
        ):
            raise ConfigurationError(
                "slot fluid lattice parameters "
                f"(tau={fluid.tau}, operator={fluid.collision_operator!r}) do not "
                f"match batch (tau={self.tau}, operator={self.collision_operator!r})"
            )
        if fluid.precision.name != self.precision.name:
            raise ConfigurationError(
                f"slot fluid precision {fluid.precision.name!r} does not match "
                f"batch precision {self.precision.name!r}; a silent cast would "
                "change the slot's arithmetic"
            )
        for name in _STATE_FIELDS:
            getattr(self, name)[slot][...] = getattr(fluid, name)

    def reset_slot(self, slot: int) -> None:
        """Return ``slot`` to the quiescent equilibrium.

        Used when a slot is retired with no queued replacement: the
        benign state keeps the batched sweep numerically quiet (no NaNs
        churning through a dead slot) at zero extra branching in the
        kernels.
        """
        self._check_slot(slot)
        self.density[slot] = RHO0
        self.velocity[slot] = 0.0
        self.velocity_shifted[slot] = 0.0
        self.force[slot] = 0.0
        equilibrium.equilibrium(self.density[slot], self.velocity[slot], out=self.df[slot])
        self.df_new[slot][...] = self.df[slot]

    def view(self, slot: int) -> BatchSlotView:
        """Live :class:`FluidGrid`-compatible view of ``slot``."""
        self._check_slot(slot)
        view = object.__new__(BatchSlotView)
        view.shape = self.shape
        view.tau = self.tau
        view.collision_operator = self.collision_operator
        view.trt_magic = self.trt_magic
        view.precision = self.precision
        view._batch = self
        view._slot = slot
        view.density = self.density[slot]
        view.velocity = self.velocity[slot]
        view.velocity_shifted = self.velocity_shifted[slot]
        view.force = self.force[slot]
        view._arena = None
        return view

    def gather_slot(self, slot: int) -> FluidGrid:
        """Deep-copied solo :class:`FluidGrid` of ``slot``'s state."""
        return self.view(slot).copy()

    def slot_finite(self, slot: int) -> bool:
        """Cheap divergence probe: are ``slot``'s macroscopic fields finite?

        Checks density and velocity only — a NaN in the distributions
        reaches the density at the next moment computation, so this
        catches divergence within one step at a fraction of the cost of
        scanning both distribution buffers.
        """
        self._check_slot(slot)
        return bool(
            np.isfinite(self.density[slot]).all()
            and np.isfinite(self.velocity[slot]).all()
        )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Fluid nodes per slot ``Nx * Ny * Nz``."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def nbytes(self) -> int:
        """Total bytes held by the batched field arrays."""
        return sum(getattr(self, name).nbytes for name in _STATE_FIELDS)
