"""Batched fused kernels: one numpy call per operation for all B sims.

These mirror the solo fused hot path — the per-direction fused
collide-and-stream of :mod:`repro.core.lbm.fused` and the
allocation-free kernel 7 of :mod:`repro.core.coupling` — with one
leading batch axis.  Every arithmetic operation is the *same numpy
ufunc in the same order* as its solo counterpart, applied to a
``(B, ...)`` slab instead of a ``(...)`` slab:

* elementwise ufuncs are bit-identical regardless of shape/strides;
* ``np.sum(df, axis=1)`` over the 19 directions performs the same
  in-order accumulation per slot as the solo ``axis=0`` sum;
* the stacked ``np.matmul`` of the momentum GEMM runs one GEMM per
  batch slice, identical to the solo call.

Each slot of a batched step is therefore bit-identical to a solo
sequential (and fused) step of the same state — the property the
differential oracle and the ``_batched`` golden baselines pin down.

The equilibrium-slab helper :func:`repro.core.lbm.fused._feq_direction`
is shape-agnostic and reused directly; only the pieces that index the
velocity components or the direction axis need batched variants here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.constants import DT, Q
from repro.batch.fields import BatchedFluidGrid
from repro.core.backend import lattice_constants
from repro.core.lbm.fused import _COMPONENTS, _TRT_PAIRS, _feq_direction
from repro.core.lbm.lattice import W
from repro.core.lbm.streaming import periodic_shift_table

__all__ = ["batched_collide_stream", "batched_update_velocity_fields"]

#: Callback receiving each finalized post-collision slab ``(i, df_i)``
#: of shape ``(B, Nx, Ny, Nz)`` before it is streamed.
BatchCaptureHook = Callable[[int, np.ndarray], None]


def _direction_velocity(u: np.ndarray, i: int, out: np.ndarray) -> np.ndarray:
    """``e_i . u`` for all slots; ``u`` is ``(B, 3, Nx, Ny, Nz)``."""
    (a0, s0), *rest = _COMPONENTS[i]
    if s0 > 0:
        np.copyto(out, u[:, a0])
    else:
        np.negative(u[:, a0], out=out)
    for a, s in rest:
        if s > 0:
            out += u[:, a]
        else:
            out -= u[:, a]
    return out


def _moments(grid: BatchedFluidGrid) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Density and the ``1.5 |u*|^2`` term into batched scratch buffers."""
    u = grid.velocity_shifted
    rho = grid.scratch_scalar("batch_rho")
    # Accumulate at the arena's (compute) dtype — float64 under the
    # mixed policy, a no-op for the uniform policies.
    np.sum(grid.df, axis=1, out=rho, dtype=rho.dtype)
    usq15 = grid.scratch_scalar("batch_usq15")
    tmp = grid.scratch_scalar("batch_tmp")
    np.multiply(u[:, 0], u[:, 0], out=usq15)
    np.multiply(u[:, 1], u[:, 1], out=tmp)
    usq15 += tmp
    np.multiply(u[:, 2], u[:, 2], out=tmp)
    usq15 += tmp
    usq15 *= 1.5
    return rho, usq15, tmp


def _emit(
    i: int,
    post: np.ndarray,
    df_new: np.ndarray,
    table,
    capture: BatchCaptureHook | None,
) -> None:
    """Hand the finalized ``(B, ...)`` slab over, then stream all slots."""
    if capture is not None:
        capture(i, post)
    for dst, src in table[i]:
        df_new[(slice(None), i) + dst] = post[(slice(None),) + src]


def _batched_bgk(
    grid: BatchedFluidGrid, table, capture: BatchCaptureHook | None
) -> None:
    df, df_new = grid.df, grid.df_new
    u = grid.velocity_shifted
    rho, usq15, tmp = _moments(grid)
    eu = grid.scratch_scalar("batch_eu")
    feq = grid.scratch_scalar("batch_feq")
    omega = 1.0 / grid.tau
    keep = 1.0 - omega
    for i in range(Q):
        post = df[:, i]
        if i == 0:
            _feq_direction(rho, None, usq15, float(W[0]), feq, tmp)
        else:
            _direction_velocity(u, i, eu)
            _feq_direction(rho, eu, usq15, float(W[i]), feq, tmp)
        post *= keep
        feq *= omega
        post += feq
        _emit(i, post, df_new, table, capture)


def _batched_trt(
    grid: BatchedFluidGrid, table, capture: BatchCaptureHook | None
) -> None:
    df, df_new = grid.df, grid.df_new
    u = grid.velocity_shifted
    rho, usq15, tmp = _moments(grid)
    eu = grid.scratch_scalar("batch_eu")
    feq_i = grid.scratch_scalar("batch_feq")
    feq_j = grid.scratch_scalar("batch_feq_j")
    even = grid.scratch_scalar("batch_even")
    odd = grid.scratch_scalar("batch_odd")

    tau = grid.tau
    omega_plus = 1.0 / tau
    omega_minus = 1.0 / (grid.trt_magic / (tau - 0.5) + 0.5)

    # Rest direction: pure BGK relax with omega+ (odd half vanishes).
    post = df[:, 0]
    _feq_direction(rho, None, usq15, float(W[0]), feq_i, tmp)
    np.subtract(post, feq_i, out=feq_i)
    feq_i *= omega_plus
    post -= feq_i
    _emit(0, post, df_new, table, capture)

    for i, j in _TRT_PAIRS:
        _direction_velocity(u, i, eu)
        _feq_direction(rho, eu, usq15, float(W[i]), feq_i, tmp)
        _feq_direction(rho, eu, usq15, float(W[j]), feq_j, tmp, sign=-1.0)
        np.subtract(df[:, i], feq_i, out=feq_i)
        np.subtract(df[:, j], feq_j, out=feq_j)
        np.add(feq_i, feq_j, out=even)
        even *= 0.5
        even *= omega_plus
        np.subtract(feq_i, feq_j, out=odd)
        odd *= 0.5
        odd *= omega_minus
        post_i, post_j = df[:, i], df[:, j]
        post_i -= even
        post_i -= odd
        post_j -= even
        post_j += odd
        _emit(i, post_i, df_new, table, capture)
        _emit(j, post_j, df_new, table, capture)


def batched_collide_stream(
    grid: BatchedFluidGrid, capture: BatchCaptureHook | None = None
) -> None:
    """Collide every slot's ``df`` in place and stream into ``df_new``.

    One traversal of the batched distribution lattice; after warmup the
    sweep performs zero numpy allocations (all scratch comes from the
    grid's arena).  Physical boundaries still need repairing per slot
    afterwards — boundaries that read post-collision values receive the
    ``(B, ...)`` face layers captured by ``capture``.
    """
    table = periodic_shift_table(grid.shape)
    if grid.collision_operator == "trt":
        _batched_trt(grid, table, capture)
    else:
        _batched_bgk(grid, table, capture)


def batched_update_velocity_fields(grid: BatchedFluidGrid) -> None:
    """Allocation-free kernel 7 for every slot in one pass.

    Mirrors :func:`repro.core.coupling.update_velocity_fields_inplace`
    with the batch axis: density and momentum moments of ``df_new``,
    then the velocity-shift forcing split into the collision velocity
    ``u* = (m + tau_odd F dt) / rho`` and the physical velocity
    ``u = (m + F dt / 2) / rho``.
    """
    b = grid.batch
    df_new = grid.df_new
    np.sum(df_new, axis=1, out=grid.density, dtype=grid.precision.compute)
    momentum = grid.scratch_vector("batch_momentum")
    # Lattice vectors at the GEMM's natural dtype: float64 is the
    # original table (bit-identical), pure float32 gets a float32 GEMM,
    # and mixed promotes to a float64 reduction as required.
    e_float, _ = lattice_constants(np.result_type(df_new.dtype, momentum.dtype))
    np.matmul(
        e_float.T,
        df_new.reshape(b, Q, -1),
        out=momentum.reshape(b, 3, -1),
    )
    rho = grid.density

    shifted = grid.velocity_shifted
    np.multiply(grid.force, grid.tau_odd * DT, out=shifted)
    shifted += momentum

    velocity = grid.velocity
    np.multiply(grid.force, 0.5 * DT, out=velocity)
    velocity += momentum

    # Same-shape division per component (see the solo kernel's note on
    # broadcast ufuncs falling back to the buffered inner loop).
    for comp in range(3):
        shifted[:, comp] /= rho
        velocity[:, comp] /= rho
