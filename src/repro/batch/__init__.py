"""Batched multi-simulation execution (``variant="batched"``).

Stacks B independent same-shaped simulations along a leading batch
axis and advances them with one numpy call per kernel operation,
amortizing dispatch overhead across the batch — plus a continuous-
batching scheduler that keeps batches full from a submission queue.

* :class:`~repro.batch.fields.BatchedFluidGrid` — batched fluid state
  with live per-slot :class:`~repro.core.lbm.fields.FluidGrid` views;
* :mod:`~repro.batch.kernels` — batched fused collide+stream and
  kernel 7, bit-identical per slot to the solo kernels;
* :class:`~repro.batch.solver.BatchedLBMIBSolver` — the nine-kernel
  step with the fluid half batched and the IB half per slot;
* :class:`~repro.batch.guard.SlotGuard` — per-slot health sentinels
  that eject a failing slot without perturbing its siblings;
* :class:`~repro.batch.scheduler.BatchScheduler` — compatibility
  grouping, FIFO admission, slot refill on completion/divergence,
  retry/quarantine lifecycle and checkpoint-backed resume.
"""

from repro.batch.fields import BatchedFluidGrid, BatchSlotView, adopt_state
from repro.batch.guard import SlotEjection, SlotGuard
from repro.batch.kernels import (
    batched_collide_stream,
    batched_update_velocity_fields,
)
from repro.batch.scheduler import (
    TERMINAL_STATUSES,
    BatchJob,
    BatchResult,
    BatchRetryPolicy,
    BatchScheduler,
    FailureInfo,
    JobRequest,
    SchedulerTick,
    compatibility_key,
)
from repro.batch.solver import BatchedLBMIBSolver

__all__ = [
    "BatchedFluidGrid",
    "BatchSlotView",
    "BatchedLBMIBSolver",
    "BatchJob",
    "BatchResult",
    "BatchRetryPolicy",
    "BatchScheduler",
    "FailureInfo",
    "JobRequest",
    "SchedulerTick",
    "SlotEjection",
    "SlotGuard",
    "TERMINAL_STATUSES",
    "adopt_state",
    "batched_collide_stream",
    "batched_update_velocity_fields",
    "compatibility_key",
]
