"""Per-slot health sentinels for batched execution.

A batch couples B unrelated simulations to one set of shared arrays —
which makes *containment* the first robustness property: one slot's NaN
blow-up, injected fault, or invariant violation must never perturb a
sibling slot or take down the whole batched sweep.  The batched kernels
already guarantee slots cannot exchange information (streaming is
per-slot periodic), so the remaining risk is operational: a sick slot
silently burning steps, or its garbage state reaching results.

:class:`SlotGuard` closes that gap.  Attached to a
:class:`~repro.batch.solver.BatchedLBMIBSolver`, it runs a set of
physics checkers (reusing the :mod:`repro.verify.invariants` NaN /
mass / positivity / arc-length sentinels, one stateful instance set per
slot) against every active slot after each batched step.  On a
violation the slot is **ejected**: its complete state is copied out of
the shared batch arrays (for diagnostics and the structured failure
report), the slot is parked at the quiescent equilibrium — an
operation that writes only that slot's sub-arrays, so every sibling
slot stays bit-identical — and the ejection is queued for the
scheduler to translate into a retry, a quarantine, or a terminal
:class:`~repro.batch.scheduler.FailureInfo`.

The guard also counts strikes per job id: a job that keeps getting
ejected (``quarantine_after`` times) is reported as a repeat offender
so the scheduler stops wasting retry budget on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.solver import BatchedLBMIBSolver

from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError, InvariantError

__all__ = ["SlotEjection", "SlotGuard"]


@dataclass(eq=False)
class SlotEjection:
    """One slot ejection: the failure plus the evacuated state.

    Attributes
    ----------
    slot:
        Batch slot that failed.
    job_step:
        The slot's *local* completed-step count at detection (the
        scheduler adds the job's resume offset to get the absolute
        step).
    batch_step:
        The batched solver's global step counter at detection.
    invariant:
        Name of the violated invariant (``finite_fields``, ...).
    error:
        The full :class:`~repro.errors.InvariantError`.
    fluid / structure:
        Deep copies of the slot's state at detection, taken *before*
        the slot was parked — the post-mortem evidence attached to a
        terminal result.
    strikes:
        Consecutive ejection count for the occupying job (1 = first
        offence).
    quarantined:
        True when ``strikes`` reached the guard's quarantine threshold.
    """

    slot: int
    job_step: int
    batch_step: int
    invariant: str
    error: InvariantError
    fluid: FluidGrid
    structure: ImmersedStructure | None
    strikes: int = 1
    quarantined: bool = False


class SlotGuard:
    """Health-check every active batch slot; eject and contain failures.

    Parameters
    ----------
    checker_factory:
        Zero-argument callable producing a fresh list of
        :class:`~repro.verify.invariants.Invariant` checkers.  Each
        bound slot gets its own instances (the checkers are stateful:
        conserved-quantity baselines are captured per simulation at
        admission).  Default: the config-gated standard set via
        :meth:`repro.verify.invariants.InvariantSuite.slot_checkers`
        with no config (finite + mass + momentum + positivity).
    every:
        Check cadence in slot-local steps (1 = every step).
    quarantine_after:
        Ejection count at which a job id is flagged as a repeat
        offender (``SlotEjection.quarantined``); the scheduler then
        stops retrying it regardless of remaining attempt budget.
    incident_log:
        Optional :class:`~repro.resilience.incident.IncidentLog`; every
        ejection is journaled as a ``slot_ejected`` event.
    metrics:
        Optional :class:`~repro.observe.metrics.MetricsRegistry`; every
        ejection bumps ``batch.ejections`` (and ``batch.quarantined``
        when the threshold trips).
    """

    def __init__(
        self,
        checker_factory: Callable[[], Sequence] | None = None,
        every: int = 1,
        quarantine_after: int = 3,
        incident_log=None,
        metrics=None,
    ) -> None:
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        if quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        if checker_factory is None:
            from repro.verify.invariants import InvariantSuite

            checker_factory = InvariantSuite.slot_checkers
        self.checker_factory = checker_factory
        self.every = every
        self.quarantine_after = quarantine_after
        self.incident_log = incident_log
        self.metrics = metrics
        self._checkers: dict[int, list] = {}
        self._job_ids: dict[int, str] = {}
        self._strikes: dict[str, int] = {}
        self._ejections: list[SlotEjection] = []
        #: Total ejections performed over this guard's lifetime.
        self.total_ejections = 0

    # ------------------------------------------------------------------
    # slot binding (called by the solver's load_slot / clear_slot)
    # ------------------------------------------------------------------
    def bind_slot(
        self, solver: "BatchedLBMIBSolver", slot: int, job_id: str | None = None
    ) -> None:
        """Create and baseline-bind fresh checkers for ``slot``.

        ``job_id`` ties repeat offences together across retries of the
        same job; anonymous slots are keyed by slot number.
        """
        checkers = list(self.checker_factory())
        view = solver.grid.view(slot)
        structure = solver.structures[slot]
        for checker in checkers:
            checker.bind(view, structure)
        self._checkers[slot] = checkers
        self._job_ids[slot] = job_id if job_id is not None else f"slot{slot}"

    def release_slot(self, slot: int) -> None:
        """Forget a retired slot's checkers (its strikes are kept)."""
        self._checkers.pop(slot, None)
        self._job_ids.pop(slot, None)

    def strikes_for(self, job_id: str) -> int:
        """Ejection count recorded against ``job_id`` so far."""
        return self._strikes.get(job_id, 0)

    def forgive(self, job_id: str) -> None:
        """Clear a job's strike record (e.g. after it completes)."""
        self._strikes.pop(job_id, None)

    # ------------------------------------------------------------------
    # inspection (called by the solver at the end of every step)
    # ------------------------------------------------------------------
    def inspect(self, solver: "BatchedLBMIBSolver") -> None:
        """Check every active bound slot; eject violators.

        Ejection order is ascending slot number, so two sick slots in
        one step produce a deterministic ejection sequence.
        """
        for slot in sorted(self._checkers):
            if not solver.active[slot]:
                continue
            job_step = solver.slot_steps[slot]
            if job_step % self.every:
                continue
            view = solver.grid.view(slot)
            structure = solver.structures[slot]
            try:
                for checker in self._checkers[slot]:
                    checker.check(view, structure, job_step)
            except InvariantError as exc:
                self._eject(solver, slot, exc)

    def _eject(
        self, solver: "BatchedLBMIBSolver", slot: int, error: InvariantError
    ) -> None:
        """Evacuate ``slot``'s state and park it at equilibrium.

        Only this slot's sub-arrays are written (``reset_slot`` indexes
        the leading batch axis), so sibling slots keep bit-identical
        trajectories — the containment property the chaos harness pins
        with ``max_abs_delta == 0.0``.
        """
        job_id = self._job_ids.get(slot, f"slot{slot}")
        job_step = solver.slot_steps[slot]
        batch_step = solver.time_step
        fluid = solver.grid.gather_slot(slot)
        structure = solver.structures[slot]
        strikes = self._strikes[job_id] = self._strikes.get(job_id, 0) + 1
        quarantined = strikes >= self.quarantine_after
        ejection = SlotEjection(
            slot=slot,
            job_step=job_step,
            batch_step=batch_step,
            invariant=getattr(error, "invariant", "unknown"),
            error=error,
            fluid=fluid,
            structure=structure,
            strikes=strikes,
            quarantined=quarantined,
        )
        self._ejections.append(ejection)
        self.total_ejections += 1
        # clear_slot calls release_slot for us (guard is attached).
        solver.clear_slot(slot)
        if self.incident_log is not None:
            self.incident_log.record(
                "slot_ejected",
                step=job_step,
                slot=slot,
                job=job_id,
                invariant=ejection.invariant,
                error=str(error),
                strikes=strikes,
                quarantined=quarantined,
            )
        if self.metrics is not None:
            self.metrics.counter("batch.ejections").inc()
            if quarantined:
                self.metrics.counter("batch.quarantined").inc()

    def take_ejections(self) -> list[SlotEjection]:
        """Drain the pending-ejections queue (scheduler handshake)."""
        ejections, self._ejections = self._ejections, []
        return ejections
