"""Continuous-batching scheduler for many independent simulations.

The ROADMAP's serving-style north star applied to simulation traffic:
callers :meth:`~BatchScheduler.submit` any number of
:class:`~repro.config.SimulationConfig` runs; the scheduler groups
*compatible* configs (same grid shape, lattice parameters, boundary
set, time step — everything the batched kernels share across the batch
axis) into batches of up to ``max_batch`` slots, advances each batch
with the vectorized :class:`~repro.batch.solver.BatchedLBMIBSolver`,
and practices **continuous admission**: the moment a slot's simulation
completes (or diverges) it is retired and the slot refilled from the
queue, exactly like continuous batching in inference serving — the
batch never drains to run at partial occupancy while work is waiting.

Determinism: each slot's trajectory is bit-identical to its solo
sequential run (the batched kernels are operation-for-operation
mirrors of the solo ones and slots never interact), so results are
independent of batch composition, admission order and ``max_batch`` —
a property pinned by the scheduler test suite.

Telemetry (optional :class:`~repro.observe.Telemetry`): per-group spans
(``batch.group``), gauges ``batch.occupancy`` / ``batch.capacity``, and
counters ``batch.steps`` (batched kernel sweeps), ``batch.sim_steps``
(per-simulation steps advanced), ``batch.sims_completed``,
``batch.sims_diverged`` and ``batch.refills``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.batch.fields import BatchedFluidGrid
from repro.batch.solver import BatchedLBMIBSolver
from repro.config import SimulationConfig
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.fields import FluidGrid
from repro.errors import ConfigurationError

__all__ = ["BatchJob", "BatchResult", "BatchScheduler", "compatibility_key"]


def compatibility_key(config: SimulationConfig) -> tuple:
    """Grouping key: everything the batched kernels share batch-wide.

    Two configs may share a batch iff they agree on the fluid grid
    shape, the lattice relaxation (effective tau and collision
    operator), the delta kernel, the time step, the external body force
    and the full ordered boundary set.  The immersed structure is *not*
    part of the key — the IB half is applied per slot.
    """
    return (
        tuple(config.fluid_shape),
        float(config.effective_tau),
        config.collision_operator,
        config.delta_kind,
        float(config.dt),
        config.external_force,
        tuple(
            (bc.kind, bc.resolved_axis(), bc.side, tuple(bc.wall_velocity))
            for bc in config.boundaries
        ),
    )


@dataclass(eq=False)
class BatchJob:
    """One submitted simulation awaiting (or undergoing) batched execution."""

    job_id: str
    config: SimulationConfig
    num_steps: int
    order: int
    initial_fluid: FluidGrid | None = None


@dataclass(eq=False)
class BatchResult:
    """Per-simulation outcome returned by :meth:`BatchScheduler.run`.

    Attributes
    ----------
    status:
        ``"completed"`` (ran its full ``num_steps``) or ``"diverged"``
        (non-finite state detected; retired early).
    steps_completed:
        Time steps actually advanced.
    fluid / structure:
        Final state, gathered into the solo layout (deep copies — the
        slot is refilled immediately after).
    slot:
        Batch slot the simulation ran in (composition diagnostics).
    """

    job_id: str
    status: str
    steps_completed: int
    fluid: FluidGrid
    structure: ImmersedStructure | None
    slot: int = -1


class BatchScheduler:
    """Group, batch and continuously run submitted simulations.

    Parameters
    ----------
    max_batch:
        Slot count ceiling per batch (the batch axis length).
    check_finite_every:
        Divergence-probe period in steps (``0`` disables the probe;
        diverged slots then run to their step budget producing NaNs,
        exactly as a solo run would).
    telemetry:
        Optional :class:`~repro.observe.Telemetry` receiving the
        scheduler's spans and metrics.
    """

    def __init__(
        self,
        max_batch: int = 16,
        check_finite_every: int = 1,
        telemetry=None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be positive, got {max_batch}")
        if check_finite_every < 0:
            raise ConfigurationError(
                f"check_finite_every must be >= 0, got {check_finite_every}"
            )
        self.max_batch = max_batch
        self.check_finite_every = check_finite_every
        self.telemetry = telemetry
        self._jobs: list[BatchJob] = []
        self._counter = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        config: SimulationConfig,
        num_steps: int,
        job_id: str | None = None,
        initial_fluid: FluidGrid | None = None,
    ) -> str:
        """Queue one simulation; returns its job id (FIFO per group)."""
        if num_steps < 1:
            raise ConfigurationError(
                f"num_steps must be positive, got {num_steps}"
            )
        if initial_fluid is not None and tuple(initial_fluid.shape) != tuple(
            config.fluid_shape
        ):
            raise ConfigurationError(
                f"initial fluid shape {initial_fluid.shape} does not match "
                f"configured shape {config.fluid_shape}"
            )
        if job_id is None:
            job_id = f"sim{self._counter}"
        elif any(job.job_id == job_id for job in self._jobs):
            raise ConfigurationError(f"duplicate job id {job_id!r}")
        self._jobs.append(
            BatchJob(
                job_id=job_id,
                config=config,
                num_steps=int(num_steps),
                order=self._counter,
                initial_fluid=initial_fluid,
            )
        )
        self._counter += 1
        return job_id

    def pending_groups(self) -> dict[tuple, list[str]]:
        """Submitted job ids per compatibility group, in admission order."""
        groups: dict[tuple, list[str]] = {}
        for job in self._jobs:
            groups.setdefault(compatibility_key(job.config), []).append(job.job_id)
        return groups

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> dict[str, BatchResult]:
        """Run every submitted simulation; returns results by job id.

        Jobs are grouped by :func:`compatibility_key` (incompatible
        configs never share a batch) and each group runs as one batch
        of up to ``max_batch`` slots with continuous slot refill.  The
        queue is drained on return — a scheduler can be reused for a
        new wave of submissions afterwards.
        """
        jobs, self._jobs = self._jobs, []
        groups: dict[tuple, list[BatchJob]] = {}
        for job in jobs:
            groups.setdefault(compatibility_key(job.config), []).append(job)
        results: dict[str, BatchResult] = {}
        for index, group in enumerate(groups.values()):
            self._run_group(index, group, results)
        return results

    # ------------------------------------------------------------------
    def _metrics(self):
        return self.telemetry.metrics if self.telemetry is not None else None

    def _run_group(
        self,
        group_index: int,
        jobs: list[BatchJob],
        results: dict[str, BatchResult],
    ) -> None:
        start = time.perf_counter()
        config = jobs[0].config
        batch = min(self.max_batch, len(jobs))
        grid = BatchedFluidGrid(
            config.fluid_shape,
            batch,
            tau=config.effective_tau,
            collision_operator=config.collision_operator,
        )
        solver = BatchedLBMIBSolver(
            grid,
            delta=config.build_delta(),
            boundaries=config.build_boundaries(),
            dt=config.dt,
            external_force=config.external_force,
            tracer=self.telemetry.tracer if self.telemetry is not None else None,
        )
        metrics = self._metrics()
        if metrics is not None:
            metrics.gauge("batch.capacity").set(batch)

        queue = deque(jobs)
        slots: list[BatchJob | None] = [None] * batch
        for slot in range(batch):
            self._admit(solver, slots, slot, queue.popleft())

        while any(job is not None for job in slots):
            solver.step()
            if metrics is not None:
                metrics.counter("batch.steps").inc()
                metrics.counter("batch.sim_steps").inc(solver.occupancy)
            probe = (
                self.check_finite_every
                and solver.time_step % self.check_finite_every == 0
            )
            for slot, job in enumerate(slots):
                if job is None:
                    continue
                if probe and not solver.slot_finite(slot):
                    self._retire(solver, slots, slot, results, "diverged")
                    self._refill(solver, slots, slot, queue)
                elif solver.slot_steps[slot] >= job.num_steps:
                    self._retire(solver, slots, slot, results, "completed")
                    self._refill(solver, slots, slot, queue)
            if metrics is not None:
                metrics.gauge("batch.occupancy").set(solver.occupancy)

        if self.telemetry is not None:
            elapsed = time.perf_counter() - start
            self.telemetry.tracer.record(
                f"batch.group{group_index}", 0, start, elapsed, cat="batch"
            )

    def _admit(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        job: BatchJob,
    ) -> None:
        config = job.config
        if job.initial_fluid is not None:
            fluid = job.initial_fluid
        else:
            fluid = FluidGrid(
                config.fluid_shape,
                tau=config.effective_tau,
                collision_operator=config.collision_operator,
            )
        solver.load_slot(slot, fluid, config.build_structure())
        slots[slot] = job

    def _retire(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        results: dict[str, BatchResult],
        status: str,
    ) -> None:
        job = slots[slot]
        assert job is not None
        results[job.job_id] = BatchResult(
            job_id=job.job_id,
            status=status,
            steps_completed=solver.slot_steps[slot],
            fluid=solver.grid.gather_slot(slot),
            structure=solver.structures[slot],
            slot=slot,
        )
        slots[slot] = None
        solver.clear_slot(slot)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(
                "batch.sims_completed"
                if status == "completed"
                else "batch.sims_diverged"
            ).inc()

    def _refill(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        queue: deque,
    ) -> None:
        if not queue:
            return
        self._admit(solver, slots, slot, queue.popleft())
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("batch.refills").inc()
