"""Continuous-batching scheduler for many independent simulations.

The ROADMAP's serving-style north star applied to simulation traffic:
callers :meth:`~BatchScheduler.submit` any number of
:class:`~repro.config.SimulationConfig` runs; the scheduler groups
*compatible* configs (same grid shape, lattice parameters, boundary
set, time step — everything the batched kernels share across the batch
axis) into batches of up to ``max_batch`` slots, advances each batch
with the vectorized :class:`~repro.batch.solver.BatchedLBMIBSolver`,
and practices **continuous admission**: the moment a slot's simulation
completes (or diverges) it is retired and the slot refilled from the
queue, exactly like continuous batching in inference serving — the
batch never drains to run at partial occupancy while work is waiting.

Determinism: each slot's trajectory is bit-identical to its solo
sequential run (the batched kernels are operation-for-operation
mirrors of the solo ones and slots never interact), so results are
independent of batch composition, admission order and ``max_batch`` —
a property pinned by the scheduler test suite.

Fault tolerance (all opt-in, zero overhead when off):

* **Per-slot isolation** — an attached
  :class:`~repro.batch.guard.SlotGuard` health-checks every slot after
  every batched step and ejects violators without perturbing sibling
  slots (their trajectories stay bit-identical, pinned by the chaos
  harness).
* **Retry lifecycle** — with a :class:`BatchRetryPolicy`, a failed job
  re-enters the queue with damped tau and a bounded attempt budget;
  repeat offenders are quarantined.  A job out of budget is retired
  with a structured :class:`FailureInfo` (root-cause chain, failing
  step, incident-log pointer) on its :class:`BatchResult`.
* **Checkpoint-backed resume** — with a ``workdir``, the scheduler
  journals a queue manifest plus periodic atomic per-job checkpoints
  (tmp + rename + SHA-256, rotated to ``keep_checkpoints``); a killed
  scheduler process restarts via :meth:`BatchScheduler.resume` and
  completes every in-flight job losslessly, falling back past any
  corrupted or truncated checkpoint it finds.

Serving hooks (the :mod:`repro.service` layer builds on these):

* **Cancellation** — :meth:`BatchScheduler.cancel` is a public,
  thread-safe cancel path.  A queued job is retired immediately with
  status ``"cancelled"``; a *running* job is parked benignly at the
  next step boundary by the same slot-parking mechanics the
  :class:`~repro.batch.guard.SlotGuard` ejection path uses
  (:meth:`~repro.batch.solver.BatchedLBMIBSolver.clear_slot` writes
  only the victim's sub-arrays), so sibling slots stay bit-identical.
* **Cooperative yield point** — an optional ``step_hook`` receives one
  :class:`SchedulerTick` after every batched sweep (occupancy, per-job
  progress, the sweep's wall time).  It runs between steps, exactly
  where cancellation requests are drained, so a long-lived service can
  observe progress and apply control without touching solver state.
* **Continuous admission** — an optional ``refill_source`` callable is
  consulted whenever a slot frees and the scheduler's own queue is
  empty: ``refill_source(compat_key)`` may return a
  :class:`JobRequest` compatible with the running group, which is
  admitted into the freed slot without draining the batch — iteration-
  level admission across scheduler waves, not just within one.

Telemetry (optional :class:`~repro.observe.Telemetry`): per-group spans
(``batch.group``), gauges ``batch.occupancy`` / ``batch.capacity``, and
counters ``batch.steps`` (batched kernel sweeps), ``batch.sim_steps``
(per-simulation steps advanced), ``batch.sims_completed``,
``batch.sims_diverged``, ``batch.sims_cancelled``, ``batch.refills`` —
plus the fault-tolerance counters ``batch.retries``,
``batch.ejections``, ``batch.quarantined``, ``batch.jobs_failed``,
``batch.checkpoints`` and ``batch.resumes``.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from repro.batch.fields import BatchedFluidGrid, adopt_state
from repro.batch.guard import SlotGuard
from repro.batch.solver import BatchedLBMIBSolver
from repro.config import SimulationConfig
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.fields import FluidGrid
from repro.errors import CheckpointError, ConfigurationError
from repro.io.checkpoint import (
    load_checkpoint,
    rotate_checkpoints,
    save_checkpoint,
)
from repro.resilience.incident import IncidentLog

__all__ = [
    "BatchJob",
    "BatchResult",
    "BatchRetryPolicy",
    "BatchScheduler",
    "FailureInfo",
    "JobRequest",
    "SchedulerTick",
    "TERMINAL_STATUSES",
    "compatibility_key",
]

#: Job statuses that end a job's lifecycle (a result exists for each).
TERMINAL_STATUSES = frozenset({"completed", "failed", "diverged", "cancelled"})

#: Queue-manifest file name inside a scheduler ``workdir``.
MANIFEST_NAME = "manifest.json"
#: Crash-safe incident-journal file name inside a scheduler ``workdir``.
INCIDENTS_NAME = "incidents.jsonl"

_MANIFEST_VERSION = 1


def compatibility_key(config: SimulationConfig) -> tuple:
    """Grouping key: everything the batched kernels share batch-wide.

    Two configs may share a batch iff they agree on the fluid grid
    shape, the lattice relaxation (effective tau and collision
    operator), the delta kernel, the time step, the external body force
    and the full ordered boundary set.  The immersed structure is *not*
    part of the key — the IB half is applied per slot.
    """
    return (
        tuple(config.fluid_shape),
        float(config.effective_tau),
        config.collision_operator,
        config.delta_kind,
        float(config.dt),
        config.external_force,
        tuple(
            (bc.kind, bc.resolved_axis(), bc.side, tuple(bc.wall_velocity))
            for bc in config.boundaries
        ),
    )


def _error_chain(error: BaseException | None) -> tuple[str, ...]:
    """The ``__cause__``/``__context__`` chain as human-readable strings."""
    chain: list[str] = []
    seen: set[int] = set()
    while error is not None and id(error) not in seen:
        seen.add(id(error))
        chain.append(f"{type(error).__name__}: {error}")
        error = error.__cause__ or error.__context__
    return tuple(chain)


@dataclass(frozen=True)
class FailureInfo:
    """Structured root-cause report attached to a terminal failure.

    Everything an operator needs to triage a dead job without re-running
    it: what blew up (``error_type`` / ``message`` / ``invariant``),
    where (``failing_step`` / ``slot``), how hard the scheduler tried
    (``attempt`` / ``quarantined``), the full exception ``chain`` and a
    pointer to the crash-safe ``incident_log`` journal that holds the
    step-by-step forensics.
    """

    job_id: str
    error_type: str
    message: str
    invariant: str
    failing_step: int
    slot: int
    attempt: int
    quarantined: bool = False
    chain: tuple[str, ...] = ()
    incident_log: str | None = None

    @property
    def root_cause(self) -> str:
        """The innermost link of the exception chain."""
        return self.chain[-1] if self.chain else f"{self.error_type}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-safe form (manifest persistence, operator tooling)."""
        return {
            "job_id": self.job_id,
            "error_type": self.error_type,
            "message": self.message,
            "invariant": self.invariant,
            "failing_step": self.failing_step,
            "slot": self.slot,
            "attempt": self.attempt,
            "quarantined": self.quarantined,
            "chain": list(self.chain),
            "incident_log": self.incident_log,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureInfo":
        """Inverse of :meth:`to_dict` (used by :meth:`BatchScheduler.resume`)."""
        return cls(
            job_id=str(data["job_id"]),
            error_type=str(data["error_type"]),
            message=str(data.get("message", "")),
            invariant=str(data.get("invariant", "unknown")),
            failing_step=int(data.get("failing_step", -1)),
            slot=int(data.get("slot", -1)),
            attempt=int(data.get("attempt", 1)),
            quarantined=bool(data.get("quarantined", False)),
            chain=tuple(data.get("chain", ())),
            incident_log=data.get("incident_log"),
        )


@dataclass(frozen=True)
class BatchRetryPolicy:
    """Per-job retry budget for the batched scheduler.

    Parameters
    ----------
    max_attempts:
        Total attempts a job may consume (1 = no retries).
    tau_damping:
        Multiplier applied to the effective relaxation time on every
        retry — the standard stabilisation move (higher tau = higher
        viscosity).  ``1.0`` retries with unchanged physics, which is
        what the chaos harness uses so retried jobs stay bit-identical
        to their fault-free run.  Note a damped retry lands in a
        *different* compatibility group (tau is part of the key), which
        the scheduler's retry-wave loop handles transparently.
    """

    max_attempts: int = 3
    tau_damping: float = 1.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.tau_damping < 1.0:
            raise ConfigurationError(
                "tau_damping must be >= 1 (damping raises viscosity), "
                f"got {self.tau_damping}"
            )

    def damped(self, config: SimulationConfig) -> SimulationConfig:
        """``config`` with the retry damping applied (same contract as
        :class:`~repro.resilience.runner.ResilientRunner`)."""
        if self.tau_damping == 1.0:
            return config
        return replace(
            config, tau=config.effective_tau * self.tau_damping, viscosity=None
        )


@dataclass(eq=False)
class BatchJob:
    """One submitted simulation awaiting (or undergoing) batched execution.

    ``attempt`` / ``start_step`` / ``initial_structure`` carry the
    retry-and-resume lifecycle: a retried or resumed job re-enters the
    queue as a fresh :class:`BatchJob` whose initial state is the
    restart checkpoint and whose ``start_step`` offsets all step
    accounting.
    """

    job_id: str
    config: SimulationConfig
    num_steps: int
    order: int
    initial_fluid: FluidGrid | None = None
    initial_structure: ImmersedStructure | None = None
    attempt: int = 1
    start_step: int = 0


@dataclass(frozen=True)
class JobRequest:
    """One submission a ``refill_source`` may hand the scheduler.

    The continuous-admission form of :meth:`BatchScheduler.submit`'s
    argument list: when a slot frees mid-group and the scheduler's own
    queue is dry, it asks its ``refill_source`` for the next request
    whose config matches the running group's :func:`compatibility_key`.
    """

    config: SimulationConfig
    num_steps: int
    job_id: str | None = None
    initial_fluid: FluidGrid | None = None
    initial_structure: ImmersedStructure | None = None


@dataclass(frozen=True)
class SchedulerTick:
    """One cooperative yield point: the state after one batched sweep.

    Handed to the scheduler's ``step_hook`` after every
    :meth:`~repro.batch.solver.BatchedLBMIBSolver.step`, *after*
    ejections, cancellations, completions and refills for that sweep
    have been applied — so ``jobs`` names exactly the simulations that
    will advance on the next sweep.

    Attributes
    ----------
    group_index:
        Ordinal of the compatibility group being run.
    batch_step:
        The batched solver's global sweep counter.
    occupancy / capacity:
        Active slots after refill vs. the batch width.
    step_seconds:
        Wall time of the sweep just executed.
    jobs:
        ``(job_id, absolute_steps_completed)`` per occupied slot.
    """

    group_index: int
    batch_step: int
    occupancy: int
    capacity: int
    step_seconds: float
    jobs: tuple[tuple[str, int], ...] = ()


@dataclass(eq=False)
class BatchResult:
    """Per-simulation outcome returned by :meth:`BatchScheduler.run`.

    Attributes
    ----------
    status:
        ``"completed"`` (ran its full ``num_steps``), ``"diverged"``
        (non-finite state detected by the divergence probe; retired
        early), ``"failed"`` (ejected by the slot guard with no retry
        budget left) or ``"cancelled"`` (retired by
        :meth:`BatchScheduler.cancel` before finishing).
    steps_completed:
        Absolute time steps actually advanced (including steps from
        earlier attempts / the pre-resume process).
    fluid / structure:
        Final state, gathered into the solo layout (deep copies — the
        slot is refilled immediately after).  For a terminal failure
        this is the evacuated post-mortem state at detection.
    slot:
        Batch slot the simulation ran in (``-1`` for a result restored
        by :meth:`BatchScheduler.resume`).
    attempts:
        Attempts consumed (1 = first try succeeded).
    failure:
        Structured :class:`FailureInfo` root-cause report; ``None`` for
        completed jobs.
    """

    job_id: str
    status: str
    steps_completed: int
    fluid: FluidGrid
    structure: ImmersedStructure | None
    slot: int = -1
    attempts: int = 1
    failure: FailureInfo | None = None

    @property
    def ok(self) -> bool:
        """True when the job ran its full step budget."""
        return self.status == "completed"


class BatchScheduler:
    """Group, batch and continuously run submitted simulations.

    Parameters
    ----------
    max_batch:
        Slot count ceiling per batch (the batch axis length).
    check_finite_every:
        Divergence-probe period in steps (``0`` disables the probe;
        diverged slots then run to their step budget producing NaNs,
        exactly as a solo run would).
    telemetry:
        Optional :class:`~repro.observe.Telemetry` receiving the
        scheduler's spans and metrics.
    retry_policy:
        Optional :class:`BatchRetryPolicy`.  ``None`` (default)
        preserves the classic behaviour: the first failure is terminal.
    guard:
        ``True`` to health-check every slot each step with a default
        :class:`~repro.batch.guard.SlotGuard`, or a pre-configured
        guard instance; ``False`` disables per-slot invariant
        sentinels (the cheap finite probe still runs).
    quarantine_after:
        Strikes (failures of the same job) after which retries stop
        regardless of remaining attempt budget.
    workdir:
        Directory for the queue manifest, per-job checkpoints and the
        crash-safe incident journal.  ``None`` disables persistence.
    checkpoint_every:
        Absolute-step period of per-job checkpoints (``0`` = only
        submit-time initial-state checkpoints; requires ``workdir``).
    keep_checkpoints:
        Per-job checkpoint-window size (older files are deleted).
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` wired
        into the batched step (``corrupt_field`` / ``kill_worker`` with
        ``tid`` interpreted as the batch *slot*) and into every
        checkpoint write (``truncate_checkpoint``).
    incident_log:
        Optional pre-built :class:`~repro.resilience.incident.IncidentLog`;
        by default a crash-safe JSONL journal is created inside
        ``workdir`` (in-memory only without one).
    step_hook:
        Optional callable receiving one :class:`SchedulerTick` after
        every batched sweep — the cooperative yield point a service
        layer uses for progress streaming and SLO metrics.
    refill_source:
        Optional ``refill_source(compat_key) -> JobRequest | None``
        consulted when a slot frees and the group queue is empty; a
        returned request must belong to the running compatibility
        group (continuous admission across submission waves).
    """

    def __init__(
        self,
        max_batch: int = 16,
        check_finite_every: int = 1,
        telemetry=None,
        retry_policy: BatchRetryPolicy | None = None,
        guard: "bool | SlotGuard" = False,
        quarantine_after: int = 3,
        workdir: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 2,
        fault_injector=None,
        incident_log: IncidentLog | None = None,
        step_hook=None,
        refill_source=None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be positive, got {max_batch}")
        if check_finite_every < 0:
            raise ConfigurationError(
                f"check_finite_every must be >= 0, got {check_finite_every}"
            )
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if keep_checkpoints < 1:
            raise ConfigurationError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints}"
            )
        if quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        if checkpoint_every and workdir is None:
            raise ConfigurationError(
                "checkpoint_every requires a workdir to write checkpoints into"
            )
        self.max_batch = max_batch
        self.check_finite_every = check_finite_every
        self.telemetry = telemetry
        self.retry_policy = retry_policy
        self.quarantine_after = quarantine_after
        self.workdir = os.fspath(workdir) if workdir is not None else None
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.fault_injector = fault_injector
        if incident_log is not None:
            self.incidents = incident_log
        elif self.workdir is not None:
            os.makedirs(self.workdir, exist_ok=True)
            self.incidents = IncidentLog(
                jsonl_path=os.path.join(self.workdir, INCIDENTS_NAME)
            )
        else:
            self.incidents = IncidentLog()
        if self.workdir is not None:
            os.makedirs(self.workdir, exist_ok=True)
        if fault_injector is not None and fault_injector.incident_log is None:
            fault_injector.incident_log = self.incidents
        if isinstance(guard, SlotGuard):
            self._guard: SlotGuard | None = guard
        elif guard:
            self._guard = SlotGuard(
                quarantine_after=quarantine_after,
                incident_log=self.incidents,
                metrics=self._metrics(),
            )
        else:
            self._guard = None
        self.step_hook = step_hook
        self.refill_source = refill_source
        self._jobs: list[BatchJob] = []
        self._counter = 0
        #: Cancellation requests awaiting the next yield point, guarded
        #: by ``_cancel_lock`` (cancel() may be called from any thread).
        self._cancel_lock = threading.Lock()
        self._cancel_requests: set[str] = set()
        #: Lifecycle state per ever-seen job id ("queued" / "running" /
        #: a terminal status) — the cheap, in-memory poll surface.
        self._status: dict[str, str] = {}
        #: True while run() is executing (cancel() switches behaviour).
        self._running = False
        #: Compatibility key of the group currently executing.
        self._group_key: tuple | None = None
        #: Probe-path strike counts per job id (guard keeps its own).
        self._strikes: dict[str, int] = {}
        #: Per-job checkpoint trail (oldest first), mirroring the manifest.
        self._ckpts: dict[str, list[tuple[str, int]]] = {}
        #: Persisted queue state, one entry per ever-submitted job id.
        self._manifest: dict[str, dict] = {}
        #: Results reconstructed by :meth:`resume`, merged into the next run.
        self._restored: dict[str, BatchResult] = {}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        config: SimulationConfig,
        num_steps: int,
        job_id: str | None = None,
        initial_fluid: FluidGrid | None = None,
        initial_structure: ImmersedStructure | None = None,
    ) -> str:
        """Queue one simulation; returns its job id (FIFO per group)."""
        if num_steps < 1:
            raise ConfigurationError(
                f"num_steps must be positive, got {num_steps}"
            )
        if initial_fluid is not None and tuple(initial_fluid.shape) != tuple(
            config.fluid_shape
        ):
            raise ConfigurationError(
                f"initial fluid shape {initial_fluid.shape} does not match "
                f"configured shape {config.fluid_shape}"
            )
        if job_id is None:
            job_id = f"sim{self._counter}"
        elif (
            any(job.job_id == job_id for job in self._jobs)
            or job_id in self._manifest
            or job_id in self._restored
        ):
            raise ConfigurationError(f"duplicate job id {job_id!r}")
        job = BatchJob(
            job_id=job_id,
            config=config,
            num_steps=int(num_steps),
            order=self._counter,
            initial_fluid=initial_fluid,
            initial_structure=initial_structure,
        )
        self._jobs.append(job)
        self._counter += 1
        self._status[job_id] = "queued"
        if self._persist:
            entry = {
                "job_id": job_id,
                "order": job.order,
                "num_steps": job.num_steps,
                "attempt": 1,
                "status": "pending",
                "config": config.to_dict(),
                "steps_completed": 0,
                "checkpoints": [],
                "init_checkpoint": None,
                "failure": None,
            }
            if initial_fluid is not None or initial_structure is not None:
                path = os.path.join(
                    self.workdir, f"ckpt-{_safe_id(job_id)}-init.npz"
                )
                fluid = initial_fluid
                if fluid is None:
                    fluid = FluidGrid(
                        config.fluid_shape,
                        tau=config.effective_tau,
                        collision_operator=config.collision_operator,
                    )
                # Submit-time write, not a runtime checkpoint: the
                # fault injector's truncate hook is deliberately not
                # consulted (there is no earlier state to fall back to).
                save_checkpoint(path, fluid, initial_structure, time_step=0)
                entry["init_checkpoint"] = path
            self._manifest[job_id] = entry
            self._save_manifest()
        return job_id

    def pending_groups(self) -> dict[tuple, list[str]]:
        """Submitted job ids per compatibility group, in admission order."""
        groups: dict[tuple, list[str]] = {}
        for job in self._jobs:
            groups.setdefault(compatibility_key(job.config), []).append(job.job_id)
        return groups

    def job_status(self, job_id: str) -> str | None:
        """Lifecycle state of a job id (``None`` if never submitted).

        One of ``"queued"``, ``"running"`` or a terminal status from
        :data:`TERMINAL_STATUSES`.
        """
        return self._status.get(job_id)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Request cancellation of a queued or running job.

        Thread-safe.  A job still waiting in the submission queue (and
        not inside an active :meth:`run`) is retired immediately with
        status ``"cancelled"`` — its result is merged into the next
        :meth:`run` return.  A job currently running in a batch slot is
        parked benignly at the next step boundary: the same
        slot-parking mechanics the guard-ejection path uses, writing
        only the victim slot's sub-arrays, so every sibling slot's
        trajectory stays bit-identical.  Returns ``False`` when the job
        is unknown or already terminal (nothing to cancel).
        """
        with self._cancel_lock:
            status = self._status.get(job_id)
            if status is None or status in TERMINAL_STATUSES:
                return False
            if not self._running:
                queued = next(
                    (job for job in self._jobs if job.job_id == job_id), None
                )
                if queued is not None:
                    self._jobs.remove(queued)
                    self._restored[job_id] = self._cancelled_result(queued)
                    return True
            self._cancel_requests.add(job_id)
        return True

    def _cancel_requested(self, job_id: str) -> bool:
        """Consume a pending cancellation request for ``job_id``."""
        with self._cancel_lock:
            if job_id in self._cancel_requests:
                self._cancel_requests.discard(job_id)
                return True
            return False

    def _cancelled_result(self, job: BatchJob) -> BatchResult:
        """Terminal ``"cancelled"`` result for a job that never ran
        (or whose current attempt never started); bookkeeping included."""
        fluid = job.initial_fluid
        if fluid is None:
            fluid = FluidGrid(
                job.config.fluid_shape,
                tau=job.config.effective_tau,
                collision_operator=job.config.collision_operator,
            )
        result = BatchResult(
            job_id=job.job_id,
            status="cancelled",
            steps_completed=job.start_step,
            fluid=fluid,
            structure=job.initial_structure,
            slot=-1,
            attempts=job.attempt,
        )
        self._status[job.job_id] = "cancelled"
        self._record(
            "job_cancelled", step=job.start_step, job=job.job_id, queued=True
        )
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("batch.sims_cancelled").inc()
        if self._persist:
            entry = self._manifest.get(job.job_id)
            if entry is not None:
                entry["status"] = "cancelled"
                entry["steps_completed"] = job.start_step
                self._save_manifest()
        return result

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, workdir: str | os.PathLike, **kwargs) -> "BatchScheduler":
        """Rebuild a scheduler from a (possibly killed) run's ``workdir``.

        Reads the persisted queue manifest, reconstructs every job that
        already reached a terminal state from its final checkpoint, and
        re-queues every pending/running job from its newest *loadable*
        checkpoint — corrupted or truncated files are journaled
        (``checkpoint_corrupt``) and skipped, falling back to older
        checkpoints, the submit-time initial state, and finally a fresh
        configured state.  The next :meth:`run` then completes every
        in-flight job and returns the union of restored and re-run
        results.

        ``kwargs`` are forwarded to the constructor (retry policy,
        guard, telemetry, fault injector, cadence knobs...).
        """
        workdir = os.fspath(workdir)
        manifest_path = os.path.join(workdir, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read scheduler manifest {manifest_path}: {exc}"
            ) from exc
        scheduler = cls(workdir=workdir, **kwargs)
        scheduler._counter = int(manifest.get("counter", 0))
        entries = sorted(
            manifest.get("jobs", {}).values(), key=lambda e: int(e["order"])
        )
        restored = requeued = 0
        for entry in entries:
            job_id = str(entry["job_id"])
            scheduler._manifest[job_id] = entry
            scheduler._ckpts[job_id] = [
                (str(p), int(s)) for p, s in entry.get("checkpoints", [])
            ]
            config = SimulationConfig.from_dict(entry["config"])
            num_steps = int(entry["num_steps"])
            attempt = int(entry.get("attempt", 1))
            status = str(entry.get("status", "pending"))
            state = scheduler._restore_entry(entry, job_id)
            fluid, structure, step = state if state is not None else (None, None, 0)
            if status == "completed" and fluid is not None and step >= num_steps:
                scheduler._restored[job_id] = BatchResult(
                    job_id=job_id,
                    status="completed",
                    steps_completed=step,
                    fluid=fluid,
                    structure=structure,
                    slot=-1,
                    attempts=attempt,
                )
                scheduler._status[job_id] = "completed"
                restored += 1
                continue
            if status in ("failed", "diverged", "cancelled"):
                failure = (
                    FailureInfo.from_dict(entry["failure"])
                    if entry.get("failure")
                    else None
                )
                if fluid is None:
                    fluid = FluidGrid(
                        config.fluid_shape,
                        tau=config.effective_tau,
                        collision_operator=config.collision_operator,
                    )
                scheduler._restored[job_id] = BatchResult(
                    job_id=job_id,
                    status=status,
                    steps_completed=int(entry.get("steps_completed", step)),
                    fluid=fluid,
                    structure=structure,
                    slot=-1,
                    attempts=attempt,
                    failure=failure,
                )
                scheduler._status[job_id] = status
                restored += 1
                continue
            # pending / running (the process died mid-flight), or a
            # "completed" entry whose final checkpoint no longer loads:
            # re-queue from the newest restorable state.
            entry["status"] = "pending"
            scheduler._status[job_id] = "queued"
            scheduler._jobs.append(
                BatchJob(
                    job_id=job_id,
                    config=config,
                    num_steps=num_steps,
                    order=int(entry["order"]),
                    initial_fluid=fluid,
                    initial_structure=structure,
                    attempt=attempt,
                    start_step=step,
                )
            )
            requeued += 1
        scheduler._record(
            "scheduler_resumed",
            restored=restored,
            requeued=requeued,
            workdir=workdir,
        )
        metrics = scheduler._metrics()
        if metrics is not None:
            metrics.counter("batch.resumes").inc()
        scheduler._save_manifest()
        return scheduler

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> dict[str, BatchResult]:
        """Run every submitted simulation; returns results by job id.

        Jobs are grouped by :func:`compatibility_key` (incompatible
        configs never share a batch) and each group runs as one batch
        of up to ``max_batch`` slots with continuous slot refill.
        Failed jobs granted a retry re-enter the queue as a new wave
        (a damped-tau retry belongs to a different compatibility
        group); the loop runs until every job reaches a terminal
        state.  The queue is drained on return — a scheduler can be
        reused for a new wave of submissions afterwards.  Results
        reconstructed by :meth:`resume` are merged in.
        """
        results: dict[str, BatchResult] = dict(self._restored)
        self._restored = {}
        jobs, self._jobs = self._jobs, []
        group_counter = 0
        self._running = True
        try:
            while jobs:
                groups: dict[tuple, list[BatchJob]] = {}
                for job in jobs:
                    groups.setdefault(compatibility_key(job.config), []).append(
                        job
                    )
                retries: list[BatchJob] = []
                for group in groups.values():
                    self._run_group(group_counter, group, results, retries)
                    group_counter += 1
                jobs = retries
        finally:
            self._running = False
            self._group_key = None
            # Requests targeting jobs that reached a terminal state (or
            # were never admitted) are stale; drop them so they cannot
            # cancel a future job reusing the id.
            with self._cancel_lock:
                self._cancel_requests -= set(results)
        return results

    @property
    def has_pending(self) -> bool:
        """True when a :meth:`run` would do work (queued jobs or
        results restored by :meth:`resume` awaiting collection)."""
        return bool(self._jobs) or bool(self._restored)

    # ------------------------------------------------------------------
    # online tuning
    # ------------------------------------------------------------------
    def apply_tuning(
        self,
        max_batch: int | None = None,
        scatter_method: str | None = None,
    ) -> dict:
        """Apply re-tuned knobs to a (possibly running) scheduler.

        Thread-safe, and deliberately restricted to the two knobs that
        cannot change any job's trajectory:

        * ``max_batch`` — results are composition-independent (pinned
          by the scheduler suite), so resizing is benign.  The value is
          read at the start of each group (``_run_group``), so a change
          lands at the next compatible batch wave, never mid-wave.
        * ``scatter_method`` — both kernel-4 implementations are
          bit-identical (they accumulate contributions in the same
          order), so switching takes effect immediately, even for
          in-flight slots.

        Returns the knobs actually applied; journals ``tuning_applied``.
        Invalid values raise :class:`~repro.errors.ConfigurationError`
        without applying anything.
        """
        if max_batch is not None and max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be positive, got {max_batch}"
            )
        applied: dict = {}
        if scatter_method is not None:
            from repro.core.ib.spreading import set_scatter_method

            set_scatter_method(scatter_method)  # validates the name
            applied["scatter_method"] = scatter_method
        if max_batch is not None:
            self.max_batch = int(max_batch)
            applied["max_batch"] = self.max_batch
        if applied:
            self._record("tuning_applied", **applied)
        return applied

    # ------------------------------------------------------------------
    @property
    def _persist(self) -> bool:
        return self.workdir is not None

    def _metrics(self):
        return self.telemetry.metrics if self.telemetry is not None else None

    def _record(self, kind: str, step: int = -1, **detail) -> None:
        self.incidents.record(kind, step=step, **detail)

    def _run_group(
        self,
        group_index: int,
        jobs: list[BatchJob],
        results: dict[str, BatchResult],
        retries: list[BatchJob],
    ) -> None:
        start = time.perf_counter()
        config = jobs[0].config
        self._group_key = compatibility_key(config)
        batch = min(self.max_batch, len(jobs))
        grid = BatchedFluidGrid(
            config.fluid_shape,
            batch,
            tau=config.effective_tau,
            collision_operator=config.collision_operator,
        )
        solver = BatchedLBMIBSolver(
            grid,
            delta=config.build_delta(),
            boundaries=config.build_boundaries(),
            dt=config.dt,
            external_force=config.external_force,
            tracer=self.telemetry.tracer if self.telemetry is not None else None,
            guard=self._guard,
        )
        metrics = self._metrics()
        if metrics is not None:
            metrics.gauge("batch.capacity").set(batch)

        queue: deque[BatchJob] = deque(jobs)
        slots: list[BatchJob | None] = [None] * batch
        if self.fault_injector is not None:
            injector = self.fault_injector

            def fault_hook(
                _tid: int, _step: int, _solver=solver, _slots=slots
            ) -> None:
                # Batched convention: a fault's ``tid`` names the batch
                # *slot* and its ``step`` is the job-local absolute step
                # about to execute, so a plan targets one simulation
                # deterministically regardless of batch composition.
                for slot, job in enumerate(_slots):
                    if job is not None:
                        injector.on_step(
                            slot,
                            job.start_step + _solver.slot_steps[slot],
                            _solver.grid.view(slot),
                        )

            solver.fault_hook = fault_hook
        for slot in range(batch):
            job = self._next_job(queue, results)
            if job is None:
                break
            self._admit(solver, slots, slot, job)

        while any(job is not None for job in slots):
            sweep_start = time.perf_counter()
            solver.step()
            sweep_seconds = time.perf_counter() - sweep_start
            if metrics is not None:
                metrics.counter("batch.steps").inc()
                metrics.counter("batch.sim_steps").inc(solver.occupancy)
            handled: set[int] = set()
            if self._guard is not None:
                for ejection in self._guard.take_ejections():
                    job = slots[ejection.slot]
                    if job is None:
                        continue
                    handled.add(ejection.slot)
                    self._dispose_failure(
                        solver,
                        slots,
                        ejection.slot,
                        results,
                        retries,
                        queue,
                        error_type=type(ejection.error).__name__,
                        message=str(ejection.error),
                        invariant=ejection.invariant,
                        failing_step=job.start_step + ejection.job_step,
                        state=(ejection.fluid, ejection.structure),
                        quarantined=ejection.quarantined,
                        chain=_error_chain(ejection.error),
                        ejected=True,
                    )
            # Cooperative cancellation drain: requested slots are
            # retired at the step boundary by the same benign slot
            # parking the guard-ejection path uses (only the victim's
            # sub-arrays are written; siblings stay bit-identical).
            for slot, job in enumerate(slots):
                if job is None or slot in handled:
                    continue
                if self._cancel_requested(job.job_id):
                    handled.add(slot)
                    self._retire(
                        solver,
                        slots,
                        slot,
                        results,
                        "cancelled",
                        steps=job.start_step + solver.slot_steps[slot],
                    )
                    self._refill(solver, slots, slot, queue, results)
            probe = (
                self.check_finite_every
                and solver.time_step % self.check_finite_every == 0
            )
            for slot, job in enumerate(slots):
                if job is None or slot in handled:
                    continue
                step_abs = job.start_step + solver.slot_steps[slot]
                if probe and not solver.slot_finite(slot):
                    strikes = self._strikes[job.job_id] = (
                        self._strikes.get(job.job_id, 0) + 1
                    )
                    self._record(
                        "slot_diverged",
                        step=step_abs,
                        job=job.job_id,
                        slot=slot,
                        strikes=strikes,
                    )
                    message = "non-finite fields detected by the divergence probe"
                    self._dispose_failure(
                        solver,
                        slots,
                        slot,
                        results,
                        retries,
                        queue,
                        error_type="StabilityError",
                        message=message,
                        invariant="finite_probe",
                        failing_step=step_abs,
                        state=None,
                        quarantined=strikes >= self.quarantine_after,
                        chain=(f"StabilityError: {message}",),
                        ejected=False,
                    )
                elif step_abs >= job.num_steps:
                    self._retire(
                        solver, slots, slot, results, "completed", steps=step_abs
                    )
                    self._refill(solver, slots, slot, queue, results)
                elif (
                    self._persist
                    and self.checkpoint_every
                    and step_abs % self.checkpoint_every == 0
                ):
                    fluid = solver.grid.gather_slot(slot)
                    self._write_checkpoint(
                        job.job_id, fluid, solver.structures[slot], step_abs
                    )
            if metrics is not None:
                metrics.gauge("batch.occupancy").set(solver.occupancy)
            if self.step_hook is not None:
                self.step_hook(
                    SchedulerTick(
                        group_index=group_index,
                        batch_step=solver.time_step,
                        occupancy=solver.occupancy,
                        capacity=batch,
                        step_seconds=sweep_seconds,
                        jobs=tuple(
                            (job.job_id, job.start_step + solver.slot_steps[s])
                            for s, job in enumerate(slots)
                            if job is not None
                        ),
                    )
                )

        if self.telemetry is not None:
            elapsed = time.perf_counter() - start
            self.telemetry.tracer.record(
                f"batch.group{group_index}", 0, start, elapsed, cat="batch"
            )

    # ------------------------------------------------------------------
    # failure lifecycle
    # ------------------------------------------------------------------
    def _dispose_failure(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        results: dict[str, BatchResult],
        retries: list[BatchJob],
        queue: deque,
        *,
        error_type: str,
        message: str,
        invariant: str,
        failing_step: int,
        state: tuple[FluidGrid, ImmersedStructure | None] | None,
        quarantined: bool,
        chain: tuple[str, ...],
        ejected: bool,
    ) -> None:
        """Route one slot failure: retry, quarantine, or terminal result."""
        job = slots[slot]
        assert job is not None
        metrics = self._metrics()
        if quarantined:
            self._record(
                "job_quarantined",
                step=failing_step,
                job=job.job_id,
                attempt=job.attempt,
                error=message,
            )
            # Guard ejections already counted their quarantine trip.
            if not ejected and metrics is not None:
                metrics.counter("batch.quarantined").inc()
        policy = self.retry_policy
        if policy is not None and job.attempt < policy.max_attempts and not quarantined:
            fluid, structure, start = self._restart_state(job)
            retry = BatchJob(
                job_id=job.job_id,
                config=policy.damped(job.config),
                num_steps=job.num_steps,
                order=job.order,
                initial_fluid=fluid,
                initial_structure=structure,
                attempt=job.attempt + 1,
                start_step=start,
            )
            retries.append(retry)
            self._status[job.job_id] = "queued"
            self._record(
                "job_retry",
                step=failing_step,
                job=job.job_id,
                attempt=retry.attempt,
                from_step=start,
                tau=retry.config.effective_tau,
                error=message,
            )
            if metrics is not None:
                metrics.counter("batch.retries").inc()
            if self._persist:
                entry = self._manifest[job.job_id]
                entry["status"] = "pending"
                entry["attempt"] = retry.attempt
                entry["config"] = retry.config.to_dict()
                self._save_manifest()
            slots[slot] = None
            if solver.active[slot]:  # guard ejections already parked the slot
                solver.clear_slot(slot)
            self._refill(solver, slots, slot, queue, results)
            return
        failure = FailureInfo(
            job_id=job.job_id,
            error_type=error_type,
            message=message,
            invariant=invariant,
            failing_step=failing_step,
            slot=slot,
            attempt=job.attempt,
            quarantined=quarantined,
            chain=chain,
            incident_log=self.incidents.jsonl_path,
        )
        status = "failed" if ejected else "diverged"
        self._retire(
            solver,
            slots,
            slot,
            results,
            status,
            steps=failing_step,
            state=state,
            failure=failure,
        )
        self._refill(solver, slots, slot, queue, results)

    def _restart_state(
        self, job: BatchJob
    ) -> tuple[FluidGrid | None, ImmersedStructure | None, int]:
        """Best restorable ``(fluid, structure, start_step)`` for a retry.

        Preference order: newest loadable on-disk checkpoint (corrupt
        ones are journaled and skipped), the submit-time initial-state
        checkpoint, the in-memory state this attempt started from, and
        finally a fresh configured state at step 0.
        """
        if self._persist:
            entry = self._manifest.get(job.job_id)
            if entry is not None:
                state = self._restore_entry(entry, job.job_id)
                if state is not None:
                    return state
        return job.initial_fluid, job.initial_structure, job.start_step

    def _restore_entry(
        self, entry: dict, job_id: str
    ) -> tuple[FluidGrid, ImmersedStructure | None, int] | None:
        """Newest loadable checkpoint state for a manifest entry."""
        for path, _step in reversed(list(self._ckpts.get(job_id, []))):
            state = self._load_checkpoint(path, job_id)
            if state is not None:
                return state
        init = entry.get("init_checkpoint")
        if init:
            state = self._load_checkpoint(init, job_id, drop=False)
            if state is not None:
                return state[0], state[1], 0
        return None

    def _load_checkpoint(
        self, path: str, job_id: str, drop: bool = True
    ) -> tuple[FluidGrid, ImmersedStructure | None, int] | None:
        """Load one checkpoint, journaling and dropping it when unusable."""
        try:
            fluid, structure, step = load_checkpoint(path)
        except CheckpointError as exc:
            self._record(
                "checkpoint_corrupt", job=job_id, path=path, error=str(exc)
            )
            if drop:
                self._drop_checkpoint(job_id, path)
            return None
        if not (
            np.isfinite(fluid.density).all() and np.isfinite(fluid.df).all()
        ):
            # Written before the divergence was detected (coarse probe
            # cadence): restarting from it would fail instantly.
            self._record(
                "checkpoint_unstable", step=step, job=job_id, path=path
            )
            if drop:
                self._drop_checkpoint(job_id, path)
            return None
        return fluid, structure, int(step)

    def _drop_checkpoint(self, job_id: str, path: str) -> None:
        trail = [e for e in self._ckpts.get(job_id, []) if e[0] != path]
        self._ckpts[job_id] = trail
        try:
            os.unlink(path)
        except OSError:
            pass
        entry = self._manifest.get(job_id)
        if entry is not None:
            entry["checkpoints"] = [[p, s] for p, s in trail]
            self._save_manifest()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _write_checkpoint(
        self,
        job_id: str,
        fluid: FluidGrid,
        structure: ImmersedStructure | None,
        step: int,
    ) -> None:
        path = os.path.join(
            self.workdir, f"ckpt-{_safe_id(job_id)}-{step:08d}.npz"
        )
        save_checkpoint(path, fluid, structure, time_step=step)
        if self.fault_injector is not None:
            self.fault_injector.after_checkpoint(path, step)
        trail = [e for e in self._ckpts.get(job_id, []) if e[1] != step]
        trail.append((path, step))
        self._ckpts[job_id] = trail = rotate_checkpoints(
            trail, self.keep_checkpoints
        )
        entry = self._manifest[job_id]
        entry["checkpoints"] = [[p, s] for p, s in trail]
        entry["steps_completed"] = step
        self._save_manifest()
        self._record("checkpoint_saved", step=step, job=job_id, path=path)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("batch.checkpoints").inc()

    def _save_manifest(self) -> None:
        if not self._persist:
            return
        final = os.path.join(self.workdir, MANIFEST_NAME)
        tmp = final + ".tmp"
        payload = {
            "version": _MANIFEST_VERSION,
            "counter": self._counter,
            "jobs": self._manifest,
        }
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)

    # ------------------------------------------------------------------
    # slot plumbing
    # ------------------------------------------------------------------
    def _admit(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        job: BatchJob,
    ) -> None:
        config = job.config
        if job.initial_fluid is not None:
            fluid = adopt_state(
                job.initial_fluid, config.effective_tau, config.collision_operator
            )
        else:
            fluid = FluidGrid(
                config.fluid_shape,
                tau=config.effective_tau,
                collision_operator=config.collision_operator,
            )
        if job.initial_structure is not None:
            # The slot mutates its structure in place; keep the job's
            # restart state pristine for a possible further retry.
            structure = job.initial_structure.copy()
        else:
            structure = config.build_structure()
        solver.load_slot(slot, fluid, structure, job_id=job.job_id)
        slots[slot] = job
        self._status[job.job_id] = "running"
        if self._persist:
            entry = self._manifest.get(job.job_id)
            if entry is not None:
                entry["status"] = "running"
                self._save_manifest()

    def _retire(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        results: dict[str, BatchResult],
        status: str,
        steps: int | None = None,
        state: tuple[FluidGrid, ImmersedStructure | None] | None = None,
        failure: FailureInfo | None = None,
    ) -> None:
        job = slots[slot]
        assert job is not None
        if steps is None:
            steps = job.start_step + solver.slot_steps[slot]
        if state is not None:
            fluid, structure = state
        else:
            fluid = solver.grid.gather_slot(slot)
            structure = solver.structures[slot]
        results[job.job_id] = BatchResult(
            job_id=job.job_id,
            status=status,
            steps_completed=steps,
            fluid=fluid,
            structure=structure,
            slot=slot,
            attempts=job.attempt,
            failure=failure,
        )
        slots[slot] = None
        if solver.active[slot]:  # guard ejections already parked the slot
            solver.clear_slot(slot)
        self._status[job.job_id] = status
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(
                {
                    "completed": "batch.sims_completed",
                    "cancelled": "batch.sims_cancelled",
                }.get(status, "batch.sims_diverged")
            ).inc()
            if failure is not None:
                metrics.counter("batch.jobs_failed").inc()
        if status == "completed":
            self._strikes.pop(job.job_id, None)
            if self._guard is not None:
                self._guard.forgive(job.job_id)
            self._record(
                "job_completed", step=steps, job=job.job_id, attempt=job.attempt
            )
        elif status == "cancelled":
            self._strikes.pop(job.job_id, None)
            if self._guard is not None:
                self._guard.forgive(job.job_id)
            self._record(
                "job_cancelled",
                step=steps,
                job=job.job_id,
                attempt=job.attempt,
                queued=False,
            )
        else:
            self._record(
                "job_failed",
                step=steps,
                job=job.job_id,
                status=status,
                attempt=job.attempt,
                error=None if failure is None else failure.message,
            )
        if self._persist:
            if status == "completed":
                # Final-state checkpoint: resume() rebuilds the result
                # from it without re-running the job.
                self._write_checkpoint(job.job_id, fluid, structure, steps)
            entry = self._manifest.get(job.job_id)
            if entry is not None:
                entry["status"] = status
                entry["steps_completed"] = steps
                entry["attempt"] = job.attempt
                entry["failure"] = None if failure is None else failure.to_dict()
                self._save_manifest()

    def _next_job(
        self, queue: deque, results: dict[str, BatchResult]
    ) -> BatchJob | None:
        """Next admissible job for the running group.

        Pops the group queue first (entries with a pending cancellation
        are retired as ``"cancelled"`` instead of admitted), then asks
        the ``refill_source`` — continuous admission — until it returns
        an admissible request or runs dry.
        """
        while queue:
            job = queue.popleft()
            if self._cancel_requested(job.job_id):
                results[job.job_id] = self._cancelled_result(job)
                continue
            return job
        if self.refill_source is None or self._group_key is None:
            return None
        while True:
            request = self.refill_source(self._group_key)
            if request is None:
                return None
            job_id = self.submit(
                request.config,
                request.num_steps,
                job_id=request.job_id,
                initial_fluid=request.initial_fluid,
                initial_structure=request.initial_structure,
            )
            job = next(j for j in self._jobs if j.job_id == job_id)
            if compatibility_key(job.config) != self._group_key:
                # A mismatched refill must not corrupt the running batch
                # with incompatible physics — and aborting mid-batch
                # would lose the wave's sibling results.  Leave the job
                # in self._jobs: it runs as its own group in a later
                # wave (the submit above already persisted it).
                self._record(
                    "refill_incompatible",
                    job=job_id,
                    group=repr(self._group_key),
                )
                continue
            self._jobs.remove(job)
            if self._cancel_requested(job_id):
                results[job_id] = self._cancelled_result(job)
                continue
            return job

    def _refill(
        self,
        solver: BatchedLBMIBSolver,
        slots: list[BatchJob | None],
        slot: int,
        queue: deque,
        results: dict[str, BatchResult],
    ) -> None:
        job = self._next_job(queue, results)
        if job is None:
            return
        self._admit(solver, slots, slot, job)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("batch.refills").inc()


def _safe_id(job_id: str) -> str:
    """Filesystem-safe form of a job id for checkpoint file names."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", job_id)
