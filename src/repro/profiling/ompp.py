"""OmpP-style parallel-region profiling (paper Table II).

The paper uses the OmpP profiler to attribute time to parallel regions
and quantify load imbalance.  :class:`ParallelProfile` performs the
same analysis over an :class:`~repro.parallel.trace.ExecutionTrace`
(which both parallel solvers populate) plus the instrumented barriers:

* per-region total/mean/max thread time,
* whole-program load imbalance ``(max - mean) / max`` over per-thread
  busy time — the metric of Table II's last column,
* barrier wait shares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.barrier import InstrumentedBarrier
from repro.parallel.trace import ExecutionTrace

__all__ = ["RegionStats", "ParallelProfile"]


@dataclass(frozen=True)
class RegionStats:
    """Aggregate statistics of one parallel region (kernel)."""

    name: str
    total_seconds: float
    mean_thread_seconds: float
    max_thread_seconds: float

    @property
    def imbalance(self) -> float:
        """``(max - mean) / max`` of per-thread time in this region."""
        if self.max_thread_seconds <= 0:
            return 0.0
        return (
            self.max_thread_seconds - self.mean_thread_seconds
        ) / self.max_thread_seconds


class ParallelProfile:
    """OmpP-like analysis of a parallel solver run."""

    def __init__(
        self,
        trace: ExecutionTrace,
        barriers: dict[str, InstrumentedBarrier] | None = None,
    ) -> None:
        self.trace = trace
        self.barriers = barriers or {}

    def region_stats(self) -> list[RegionStats]:
        """Per-kernel statistics, ordered by total time descending."""
        per_kernel_thread: dict[str, np.ndarray] = {}
        for ev in self.trace.events:
            arr = per_kernel_thread.setdefault(
                ev.kernel, np.zeros(self.trace.num_threads)
            )
            arr[ev.tid] += ev.seconds
        stats = [
            RegionStats(
                name=k,
                total_seconds=float(v.sum()),
                mean_thread_seconds=float(v.mean()),
                max_thread_seconds=float(v.max()),
            )
            for k, v in per_kernel_thread.items()
        ]
        stats.sort(key=lambda s: s.total_seconds, reverse=True)
        return stats

    def whole_program_imbalance(self, by: str = "time") -> float:
        """Load imbalance relative to the whole program (Table II).

        Parameters
        ----------
        by:
            ``"time"`` uses per-thread busy seconds (what OmpP sees);
            ``"work"`` uses per-thread work items (deterministic,
            partition-derived).
        """
        if by == "time":
            busy = self.trace.seconds_by_thread()
            peak = busy.max()
            if peak <= 0:
                return 0.0
            return float((peak - busy.mean()) / peak)
        if by == "work":
            return self.trace.load_imbalance()
        raise ValueError(f"by must be 'time' or 'work', got {by!r}")

    def barrier_wait_seconds(self) -> float:
        """Total time threads spent waiting at the instrumented barriers."""
        return sum(b.stats.total_wait_seconds for b in self.barriers.values())

    def as_table(self) -> str:
        """Render the per-region profile as fixed-width text."""
        lines = [
            f"{'Region':42s} {'Total(s)':>9} {'Mean(s)':>9} {'Max(s)':>9} {'Imb':>6}",
            "-" * 80,
        ]
        for st in self.region_stats():
            lines.append(
                f"{st.name:42s} {st.total_seconds:>9.4f} "
                f"{st.mean_thread_seconds:>9.4f} {st.max_thread_seconds:>9.4f} "
                f"{100 * st.imbalance:>5.1f}%"
            )
        lines.append("-" * 80)
        lines.append(
            f"whole-program load imbalance: "
            f"{100 * self.whole_program_imbalance():.1f}% (by time), "
            f"{100 * self.whole_program_imbalance(by='work'):.1f}% (by work)"
        )
        return "\n".join(lines)
