"""Fixed-width text tables in the paper's style.

Every experiment driver renders its results through
:func:`render_table` so that benchmark output visually matches the
tables of the paper (a header row, aligned columns, a rule).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_seconds", "format_percent"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Column widths adapt to content; numeric-looking cells are
    right-aligned, text cells left-aligned.
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols} (headers: {headers})"
            )
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in str_rows)) if str_rows else len(str(headers[c]))
        for c in range(ncols)
    ]
    numeric = [
        all(_is_numeric(r[c]) for r in str_rows) if str_rows else False
        for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append("-" * (sum(widths) + 2 * (ncols - 1)))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def _is_numeric(s: str) -> bool:
    if not s:
        return False
    t = s.rstrip("%x")
    try:
        float(t)
        return True
    except ValueError:
        return False


def format_seconds(seconds: float) -> str:
    """Human-oriented duration string."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def format_percent(fraction: float) -> str:
    """A fraction as a percent string."""
    return f"{100.0 * fraction:.2f}%"
