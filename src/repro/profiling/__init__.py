"""Profiling toolchain: the gprof / OmpP / PAPI substitutes.

``gprof``  — flat per-kernel profile of the sequential solver (Table I)
``ompp``   — parallel-region profile and load imbalance (Table II)
``timers`` — stopwatch utilities
``report`` — paper-style fixed-width table rendering
"""

from repro.profiling.gprof import FlatProfile
from repro.profiling.ompp import ParallelProfile, RegionStats
from repro.profiling.timers import Stopwatch, Timer

__all__ = ["FlatProfile", "ParallelProfile", "RegionStats", "Stopwatch", "Timer"]
