"""gprof-style flat profiling of the sequential solver (paper Table I).

:class:`FlatProfile` plugs into
:class:`~repro.core.solver.SequentialLBMIBSolver` as its
``kernel_timer`` callback and accumulates per-kernel wall time; the
resulting table ("kernel, percentage of total time", descending) is the
library's reproduction of the paper's gprof analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.kernels import KERNEL_NAMES

__all__ = ["FlatProfile"]


@dataclass
class FlatProfile:
    """Accumulated per-kernel seconds, gprof style."""

    seconds: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def __call__(self, kernel: str, elapsed: float) -> None:
        """Record one kernel invocation (the ``kernel_timer`` hook)."""
        self.seconds[kernel] += elapsed
        self.calls[kernel] += 1

    @property
    def total_seconds(self) -> float:
        """Total profiled time."""
        return sum(self.seconds.values())

    def percentages(self) -> dict[str, float]:
        """Kernel shares of the total in percent, descending."""
        total = self.total_seconds
        if total == 0:
            return {}
        items = sorted(self.seconds.items(), key=lambda kv: kv[1], reverse=True)
        return {k: 100.0 * v / total for k, v in items}

    def kernel_index(self, kernel: str) -> int:
        """The paper's 1-based kernel index (Algorithm 1 order)."""
        return KERNEL_NAMES.index(kernel) + 1

    def as_table(self) -> str:
        """Render the profile like paper Table I."""
        lines = [
            f"{'Idx':>3}  {'Kernel Name':40s} {'Seconds':>10} {'% of Total':>10}",
            "-" * 68,
        ]
        for kernel, pct in self.percentages().items():
            lines.append(
                f"{self.kernel_index(kernel):>2})  {kernel:40s} "
                f"{self.seconds[kernel]:>10.4f} {pct:>9.2f}%"
            )
        lines.append("-" * 68)
        lines.append(f"{'Total':>46s} {self.total_seconds:>10.4f} {100.0:>9.2f}%")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all accumulated data."""
        self.seconds.clear()
        self.calls.clear()
