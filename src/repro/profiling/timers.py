"""Small timing utilities shared by the profilers and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Timer"]


@dataclass
class Stopwatch:
    """Accumulates elapsed time over multiple start/stop episodes."""

    elapsed: float = 0.0
    _started: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Begin an episode; raises if already running."""
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        """End the episode; returns its duration and accumulates it."""
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        dt = time.perf_counter() - self._started
        self._started = None
        self.elapsed += dt
        return dt

    def reset(self) -> None:
        """Zero the accumulated time (must be stopped)."""
        if self._started is not None:
            raise RuntimeError("stopwatch running; stop it before reset")
        self.elapsed = 0.0


class Timer:
    """Context manager measuring one block's wall time.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
