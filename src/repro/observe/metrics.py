"""Metrics registry: counters, gauges, histograms and quantile sketches.

One :class:`MetricsRegistry` per telemetry session; solvers, the
resilient runner, and the verification layer record into it through
dotted metric names (``resilience.rollbacks``, ``verify.invariant_checks``,
``parallel.barrier_wait_seconds``...).  A snapshot is a plain JSON
document that round-trips through :meth:`MetricsRegistry.from_snapshot`,
so benchmark artifacts and incident reports can embed it directly.

:class:`Quantiles` serves the SLO questions a plain min/sum/max
:class:`Histogram` cannot answer — tail latency (p99 step time, p90
queue latency) for the simulation service.  It keeps a *deterministic*
bounded reservoir: a systematic sample of every ``stride``-th
observation, with the stride doubled (and the buffer decimated) each
time the buffer fills, so the memory is O(capacity), the result is
reproducible run-to-run, and quantile error shrinks with capacity.

All instruments are thread-safe (one registry-wide lock; every
recording site is orders of magnitude colder than the solver kernels).
"""

from __future__ import annotations

import json
import math
import os
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Quantiles"]


class Counter:
    """Monotonically increasing count (steps, retries, checks...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (queue depth, current tau, thread count...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming distribution summary: count, sum, min, max.

    Enough to answer the questions the paper's tables ask (totals,
    means, worst case) without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = lock

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class Quantiles:
    """Deterministic bounded-reservoir quantile sketch (p50/p90/p99...).

    Retains every ``stride``-th observation; when the buffer reaches
    ``capacity`` it is decimated (every other retained sample dropped)
    and the stride doubled.  Memory stays O(capacity), the retained set
    is a pure function of the observation sequence — no randomness — so
    snapshots and tests are reproducible, and quantiles are computed by
    nearest-rank over the sorted retained samples.
    """

    __slots__ = ("name", "count", "stride", "capacity", "samples", "_lock")

    def __init__(self, name: str, lock: threading.Lock, capacity: int = 2048) -> None:
        if capacity < 2:
            raise ValueError(f"quantile capacity must be >= 2, got {capacity}")
        self.name = name
        self.count = 0
        self.stride = 1
        self.capacity = int(capacity)
        self.samples: list[float] = []
        self._lock = lock

    def observe(self, value: float) -> None:
        """Fold one sample into the sketch."""
        value = float(value)
        with self._lock:
            if self.count % self.stride == 0:
                self.samples.append(value)
                if len(self.samples) >= self.capacity:
                    self.samples = self.samples[::2]
                    self.stride *= 2
            self.count += 1

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile over the retained samples (None when empty)."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float | None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(rank, 0)]


class MetricsRegistry:
    """Get-or-create store of named instruments.

    >>> registry = MetricsRegistry()
    >>> registry.counter("sim.steps").inc(5)
    >>> registry.snapshot()["counters"]["sim.steps"]
    5
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._quantiles: dict[str, Quantiles] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name, self._lock)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, self._lock)
            return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, self._lock)
            return inst

    def quantiles(self, name: str, capacity: int = 2048) -> Quantiles:
        """The quantile sketch called ``name``, created on first use."""
        with self._lock:
            inst = self._quantiles.get(name)
            if inst is None:
                inst = self._quantiles[name] = Quantiles(
                    name, self._lock, capacity=capacity
                )
            return inst

    # ------------------------------------------------------------------
    # snapshot / round-trip
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The registry as a plain JSON-serializable document."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.min if h.count else None,
                        "max": h.max if h.count else None,
                        "mean": h.mean,
                    }
                    for n, h in sorted(self._histograms.items())
                },
                "quantiles": {
                    n: {
                        "count": q.count,
                        "stride": q.stride,
                        "capacity": q.capacity,
                        "samples": list(q.samples),
                        "p50": q._quantile_locked(0.50),
                        "p90": q._quantile_locked(0.90),
                        "p99": q._quantile_locked(0.99),
                    }
                    for n, q in sorted(self._quantiles.items())
                },
            }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``snapshot``."""
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, rec in snapshot.get("histograms", {}).items():
            hist = registry.histogram(name)
            count = int(rec["count"])
            if count:
                # Reconstruct the exact summary: the extremes are real
                # samples; the remaining mass is balanced to keep the sum.
                hist.observe(rec["min"])
                if count > 1:
                    hist.observe(rec["max"])
                rest = count - hist.count
                if rest > 0:
                    fill = (rec["sum"] - hist.total) / rest
                    for _ in range(rest):
                        hist.observe(fill)
                # Guard against float drift flipping min/max.
                hist.total = float(rec["sum"])
                hist.min = float(rec["min"])
                hist.max = float(rec["max"])
        for name, rec in snapshot.get("quantiles", {}).items():
            sketch = registry.quantiles(name, capacity=int(rec.get("capacity", 2048)))
            sketch.count = int(rec["count"])
            sketch.stride = int(rec["stride"])
            sketch.samples = [float(v) for v in rec["samples"]]
        return registry

    def save(self, path: str | os.PathLike) -> None:
        """Write the snapshot as pretty-printed JSON."""
        path = os.fspath(path)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`save` file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_snapshot(json.load(fh))
