"""Metrics registry: counters, gauges, and histograms with JSON export.

One :class:`MetricsRegistry` per telemetry session; solvers, the
resilient runner, and the verification layer record into it through
dotted metric names (``resilience.rollbacks``, ``verify.invariant_checks``,
``parallel.barrier_wait_seconds``...).  A snapshot is a plain JSON
document that round-trips through :meth:`MetricsRegistry.from_snapshot`,
so benchmark artifacts and incident reports can embed it directly.

All instruments are thread-safe (one registry-wide lock; every
recording site is orders of magnitude colder than the solver kernels).
"""

from __future__ import annotations

import json
import math
import os
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (steps, retries, checks...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (queue depth, current tau, thread count...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming distribution summary: count, sum, min, max.

    Enough to answer the questions the paper's tables ask (totals,
    means, worst case) without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = lock

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of named instruments.

    >>> registry = MetricsRegistry()
    >>> registry.counter("sim.steps").inc(5)
    >>> registry.snapshot()["counters"]["sim.steps"]
    5
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name, self._lock)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, self._lock)
            return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, self._lock)
            return inst

    # ------------------------------------------------------------------
    # snapshot / round-trip
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The registry as a plain JSON-serializable document."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.min if h.count else None,
                        "max": h.max if h.count else None,
                        "mean": h.mean,
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``snapshot``."""
        registry = cls()
        for name, value in snapshot.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, rec in snapshot.get("histograms", {}).items():
            hist = registry.histogram(name)
            count = int(rec["count"])
            if count:
                # Reconstruct the exact summary: the extremes are real
                # samples; the remaining mass is balanced to keep the sum.
                hist.observe(rec["min"])
                if count > 1:
                    hist.observe(rec["max"])
                rest = count - hist.count
                if rest > 0:
                    fill = (rec["sum"] - hist.total) / rest
                    for _ in range(rest):
                        hist.observe(fill)
                # Guard against float drift flipping min/max.
                hist.total = float(rec["sum"])
                hist.min = float(rec["min"])
                hist.max = float(rec["max"])
        return registry

    def save(self, path: str | os.PathLike) -> None:
        """Write the snapshot as pretty-printed JSON."""
        path = os.fspath(path)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`save` file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_snapshot(json.load(fh))
