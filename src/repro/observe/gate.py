"""Benchmark-regression gate: diff two BENCH artifacts under a tolerance.

``python -m repro.observe compare baseline.json candidate.json --tol 0.5``
(or ``make bench-gate``) loads two benchmark records — e.g. the
checked-in ``benchmarks/baselines/BENCH_fused.json`` and a fresh run —
flattens every numeric leaf into a dotted key, and fails when a gated
key regresses beyond the relative tolerance:

* keys ending in ``_seconds`` or ``_bytes`` are *lower-is-better*:
  regression when ``candidate > baseline * (1 + tol)``;
* keys containing ``speedup`` or ending in ``_per_second`` (throughput
  rates) are *higher-is-better*: regression when
  ``candidate < baseline * (1 - tol)``;
* descriptive keys (``workload.*``, shapes, counts) are *identity*
  keys: any difference is schema drift and fails with a clear error —
  comparing runs of different sizes is meaningless, not "within
  tolerance".

A gated key present on one side only is likewise reported explicitly
(``missing``/``unexpected``) instead of being silently skipped, so a
renamed metric cannot disable its own gate.
"""

from __future__ import annotations

import fnmatch
import json
import os
from dataclasses import dataclass, field

from repro.errors import LBMIBError

__all__ = [
    "GateError",
    "KeyVerdict",
    "GateReport",
    "flatten_numeric",
    "classify_key",
    "compare_benchmarks",
    "load_bench",
]

#: Default relative tolerance; benchmark timings on shared machines are
#: noisy, so the default gate only catches step-change regressions
#: (the acceptance demo is an injected 2x slowdown).
DEFAULT_TOLERANCE = 0.5


class GateError(LBMIBError):
    """Schema drift between two benchmark records (not a slowdown)."""


def load_bench(path: str | os.PathLike) -> dict:
    """Load one benchmark JSON record, with a helpful failure message."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except FileNotFoundError:
        raise GateError(
            f"benchmark record {path!r} does not exist; run `make bench-fused` "
            "to produce one, or point the gate at the checked-in baseline"
        ) from None
    except json.JSONDecodeError as exc:
        raise GateError(f"benchmark record {path!r} is not valid JSON: {exc}") from None
    if not isinstance(record, dict):
        raise GateError(
            f"benchmark record {path!r} must be a JSON object, "
            f"got {type(record).__name__}"
        )
    return record


def flatten_numeric(record: dict, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a nested record as ``dotted.key -> value``.

    Lists are indexed (``fluid_shape.0``); booleans and strings are
    skipped (they never gate, and identity keys are checked separately).
    """
    flat: dict[str, float] = {}

    def walk(obj, key: str) -> None:
        if isinstance(obj, bool):
            return
        if isinstance(obj, (int, float)):
            flat[key] = float(obj)
        elif isinstance(obj, dict):
            for name, child in obj.items():
                walk(child, f"{key}.{name}" if key else str(name))
        elif isinstance(obj, (list, tuple)):
            for i, child in enumerate(obj):
                walk(child, f"{key}.{i}" if key else str(i))

    walk(record, prefix)
    return flat


def classify_key(key: str) -> str:
    """Gate direction of one dotted key.

    Returns ``"lower"`` (lower is better), ``"higher"`` (higher is
    better), or ``"identity"`` (must match exactly — workload shape,
    counts, configuration echoes).
    """
    if key.startswith("workload.") or ".workload." in key:
        return "identity"
    # Any path segment ending in _seconds/_bytes marks a cost subtree
    # (covers per_kernel_seconds.<kernel name> style nesting).
    if any(
        seg.endswith("_seconds") or seg.endswith("_bytes")
        for seg in key.split(".")
    ):
        return "lower"
    leaf = key.rsplit(".", 1)[-1]
    if "speedup" in leaf or leaf.endswith("_per_second"):
        return "higher"
    return "identity"


@dataclass(frozen=True)
class KeyVerdict:
    """The gate's decision on one dotted key."""

    key: str
    direction: str  # "lower" | "higher" | "identity"
    baseline: float | None
    candidate: float | None
    status: str  # "ok" | "regression" | "drift" | "missing" | "unexpected"

    @property
    def ratio(self) -> float | None:
        """``candidate / baseline`` when both sides exist and divide."""
        if self.baseline in (None, 0.0) or self.candidate is None:
            return None
        return self.candidate / self.baseline

    def describe(self) -> str:
        """One human-readable report line."""
        ratio = self.ratio
        ratio_s = f" ({ratio:.2f}x)" if ratio is not None else ""
        return (
            f"[{self.status:>10}] {self.key}: "
            f"baseline={self.baseline} candidate={self.candidate}{ratio_s}"
        )


@dataclass(frozen=True)
class GateReport:
    """Full outcome of one baseline-vs-candidate comparison."""

    tolerance: float
    verdicts: list[KeyVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every gated key passed."""
        return not self.failures

    @property
    def failures(self) -> list[KeyVerdict]:
        """Verdicts that fail the gate."""
        return [v for v in self.verdicts if v.status != "ok"]

    def render(self) -> str:
        """Fixed-width text report, failures first."""
        gated = [v for v in self.verdicts if v.direction != "identity"]
        lines = [
            f"benchmark gate: {len(gated)} gated keys, "
            f"tolerance {self.tolerance:.0%}, "
            f"{len(self.failures)} failure(s)",
        ]
        for v in self.failures:
            lines.append("  " + v.describe())
        for v in self.verdicts:
            if v.status == "ok" and v.direction != "identity":
                lines.append("  " + v.describe())
        return "\n".join(lines)


def compare_benchmarks(
    baseline: dict,
    candidate: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    keys: list[str] | None = None,
    bytes_slack: float = 4096.0,
) -> GateReport:
    """Gate ``candidate`` against ``baseline``.

    Parameters
    ----------
    baseline / candidate:
        Parsed benchmark records (e.g. ``BENCH_fused.json`` contents).
    tolerance:
        Relative tolerance for the directional keys.
    keys:
        Optional fnmatch patterns; when given, only matching dotted keys
        are gated (identity keys are always checked — a gate that
        compares two different workloads is lying).
    bytes_slack:
        Absolute slack added to ``_bytes`` keys, so a zero-byte baseline
        (the fused fluid path retains nothing) does not turn every
        positive candidate into an infinite-ratio regression.

    Raises
    ------
    GateError
        On schema drift: an identity key differing, or a gated key
        present on only one side.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base_flat = flatten_numeric(baseline)
    cand_flat = flatten_numeric(candidate)
    verdicts: list[KeyVerdict] = []
    drift: list[str] = []

    def selected(key: str) -> bool:
        return keys is None or any(fnmatch.fnmatch(key, pat) for pat in keys)

    for key in sorted(set(base_flat) | set(cand_flat)):
        direction = classify_key(key)
        base = base_flat.get(key)
        cand = cand_flat.get(key)
        if base is None or cand is None:
            if direction == "identity" or selected(key):
                status = "missing" if cand is None else "unexpected"
                verdicts.append(KeyVerdict(key, direction, base, cand, status))
                side = "candidate" if cand is None else "baseline"
                drift.append(f"key {key!r} is absent from the {side} record")
            continue
        if direction == "identity":
            if base != cand:
                verdicts.append(KeyVerdict(key, direction, base, cand, "drift"))
                drift.append(
                    f"identity key {key!r} differs: baseline={base} "
                    f"candidate={cand} (the two records describe different "
                    "workloads — regenerate the baseline, don't widen the "
                    "tolerance)"
                )
            else:
                verdicts.append(KeyVerdict(key, direction, base, cand, "ok"))
            continue
        if not selected(key):
            continue
        if direction == "lower":
            slack = bytes_slack if key.rsplit(".", 1)[-1].endswith("_bytes") else 0.0
            regressed = cand > base * (1.0 + tolerance) + slack
        else:  # higher is better
            regressed = cand < base * (1.0 - tolerance)
        verdicts.append(
            KeyVerdict(key, direction, base, cand,
                       "regression" if regressed else "ok")
        )

    if drift:
        raise GateError(
            "benchmark schema drift between baseline and candidate:\n  "
            + "\n  ".join(drift)
        )
    return GateReport(tolerance=tolerance, verdicts=verdicts)
