"""Span-based tracer: per-kernel / per-cube / per-thread timelines.

The paper's entire performance story is told through instrumentation —
gprof kernel percentages (Table I) and OmpP per-region wait metrics
(Table II) — and this module is the library's unified substitute.  A
:class:`Tracer` collects :class:`Span` records (a named interval on one
thread, optionally tagged with the time step and the cube it touched)
from any solver variant and exports them three ways:

* ``chrome://tracing`` JSON (:meth:`Tracer.to_chrome_trace` /
  :meth:`Tracer.save_chrome_trace`) — the per-thread timeline view that
  makes barrier wait and load imbalance visible at a glance;
* a gprof-style :class:`~repro.profiling.gprof.FlatProfile`
  (:meth:`Tracer.flat_profile`) — the Table I analysis;
* an OmpP-style :class:`~repro.profiling.ompp.ParallelProfile` via an
  :class:`~repro.parallel.trace.ExecutionTrace` bridge
  (:meth:`Tracer.execution_trace` / :meth:`Tracer.parallel_profile`) —
  the Table II analysis.

The disabled path is a ``None`` tracer attribute on the solvers: the
hot loops test ``if tracer is not None`` and skip all bookkeeping, so
an untraced run pays one attribute load and one pointer comparison per
instrumentation site (measured < 5% on the fused whole-step benchmark).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

__all__ = ["Span", "Tracer", "span_tree_valid"]


@dataclass(frozen=True, slots=True)
class Span:
    """One named interval on one thread.

    Attributes
    ----------
    name:
        Span label — for solver spans, the Algorithm-1 kernel name.
    cat:
        Category for trace-viewer filtering (``"kernel"``, ``"cube"``,
        ``"phase"``, ``"barrier"``...).
    tid:
        Thread (or rank) id the interval ran on.
    step:
        Simulation time step, or ``-1`` when not applicable.
    cube:
        Linear cube index for per-cube spans, or ``-1``.
    start:
        Start time in seconds on the tracer's clock (``perf_counter``).
    duration:
        Interval length in seconds.
    """

    name: str
    cat: str
    tid: int
    step: int
    cube: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Span end time in seconds."""
        return self.start + self.duration


class _SpanHandle:
    """Context manager recording one span on exit (see :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_step", "_cube", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int,
                 step: int, cube: int) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._step = step
        self._cube = cube
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        self._tracer.record(
            self._name,
            self._tid,
            self._start,
            end - self._start,
            step=self._step,
            cube=self._cube,
            cat=self._cat,
        )


class Tracer:
    """Thread-safe collector of :class:`Span` records.

    Parameters
    ----------
    name:
        Trace label, used as the chrome-trace process name.
    pid:
        Chrome-trace process id; merge several tracers into one file by
        giving each a distinct ``pid`` (see :func:`merge_chrome_traces`).
    """

    def __init__(self, name: str = "lbm-ib", pid: int = 0) -> None:
        self.name = name
        self.pid = pid
        self.epoch = time.perf_counter()
        self._spans: list[Span] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        tid: int,
        start: float,
        duration: float,
        step: int = -1,
        cube: int = -1,
        cat: str = "kernel",
    ) -> None:
        """Append one finished span (thread-safe).

        ``start`` is a ``time.perf_counter()`` reading taken by the
        caller *before* the work, so recording cost never pollutes the
        measured interval.
        """
        span = Span(name, cat, int(tid), int(step), int(cube),
                    float(start), float(duration))
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, tid: int = 0, step: int = -1, cube: int = -1,
             cat: str = "kernel") -> _SpanHandle:
        """Context manager measuring one block as a span.

        >>> tracer = Tracer()
        >>> with tracer.span("step", cat="phase"):
        ...     with tracer.span("collide"):
        ...         pass
        >>> [s.name for s in tracer.spans]
        ['collide', 'step']
        """
        return _SpanHandle(self, name, cat, tid, step, cube)

    @property
    def spans(self) -> list[Span]:
        """Snapshot of the recorded spans (recording order)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        """Drop all recorded spans (the epoch is kept)."""
        with self._lock:
            self._spans.clear()

    # ------------------------------------------------------------------
    # chrome-trace export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """The trace as a ``chrome://tracing`` JSON object.

        Complete (``"ph": "X"``) events with microsecond timestamps
        relative to the tracer epoch; ``args`` carries the step and, for
        per-cube spans, the cube id.  Load the file at
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.pid,
                "tid": 0,
                "args": {"name": self.name},
            }
        ]
        for s in self.spans:
            args: dict = {}
            if s.step >= 0:
                args["step"] = s.step
            if s.cube >= 0:
                args["cube"] = s.cube
            events.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "pid": self.pid,
                    "tid": s.tid,
                    "ts": (s.start - self.epoch) * 1e6,
                    "dur": s.duration * 1e6,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path: str | os.PathLike) -> None:
        """Write :meth:`to_chrome_trace` as JSON to ``path``."""
        save_chrome_trace(path, self.to_chrome_trace())

    # ------------------------------------------------------------------
    # unification bridges to the existing profilers
    # ------------------------------------------------------------------
    def flat_profile(self, cat: str = "kernel"):
        """Aggregate spans into a gprof-style flat profile (Table I)."""
        from repro.profiling.gprof import FlatProfile

        profile = FlatProfile()
        for s in self.spans:
            if s.cat == cat:
                profile(s.name, s.duration)
        return profile

    def execution_trace(self, num_threads: int | None = None, cat: str = "kernel"):
        """Bridge to the parallel layer's :class:`ExecutionTrace`.

        Work-item counts are not tracked by spans, so they are reported
        as zero — the time-based analyses (region stats, imbalance by
        time) are exact, the work-based ones degenerate to zero.
        """
        from repro.parallel.trace import ExecutionTrace

        spans = [s for s in self.spans if s.cat == cat]
        if num_threads is None:
            num_threads = max((s.tid for s in spans), default=0) + 1
        trace = ExecutionTrace(num_threads)
        for s in spans:
            trace.record(s.step, s.name, s.tid, s.duration, 0)
        return trace

    def parallel_profile(self, num_threads: int | None = None, barriers=None):
        """OmpP-style per-region profile over the recorded spans (Table II)."""
        from repro.profiling.ompp import ParallelProfile

        return ParallelProfile(self.execution_trace(num_threads), barriers)


def save_chrome_trace(path: str | os.PathLike, trace: dict) -> None:
    """Write a chrome-trace object as JSON (parent dirs created)."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")


def merge_chrome_traces(*traces: dict) -> dict:
    """Concatenate several chrome-trace objects into one file.

    Give each source tracer a distinct ``pid`` so the viewer shows them
    as separate processes on a shared timeline.
    """
    events: list[dict] = []
    for trace in traces:
        events.extend(trace["traceEvents"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree_valid(spans: list[Span], slack: float = 1e-9) -> bool:
    """Whether each thread's spans form a proper interval forest.

    Two spans on the same thread must either be disjoint or properly
    nested (one entirely inside the other, as a ``span()`` context
    manager stack produces); partial overlap means the trace was
    recorded with mismatched start times and would render as garbage.
    ``slack`` absorbs clock granularity at shared endpoints.
    """
    by_tid: dict[int, list[Span]] = {}
    for s in spans:
        by_tid.setdefault(s.tid, []).append(s)
    for tid_spans in by_tid.values():
        ordered = sorted(tid_spans, key=lambda s: (s.start, -s.duration))
        stack: list[Span] = []
        for s in ordered:
            while stack and s.start >= stack[-1].end - slack:
                stack.pop()
            if stack and s.end > stack[-1].end + slack:
                return False  # partial overlap
            stack.append(s)
    return True
