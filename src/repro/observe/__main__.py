"""Command-line entry points of the observability layer.

``python -m repro.observe compare BASELINE.json CANDIDATE.json [--tol X]``
    The benchmark-regression gate (exit 0 = pass, 1 = regression,
    2 = schema drift / unreadable record).  ``make bench-gate`` wraps
    this against the checked-in baseline.

``python -m repro.observe trace-example [--output trace.json]``
    Runs a small FSI workload on the sequential solver (all nine
    Algorithm-1 kernels as per-step spans) and on the cube-parallel
    solver (per-cube spans tagged with thread and cube ids), and writes
    one merged ``chrome://tracing`` file plus a metrics snapshot next to
    it.  ``make trace-example`` wraps this.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.observe import Telemetry, merge_chrome_traces, save_chrome_trace
from repro.observe.gate import (
    DEFAULT_TOLERANCE,
    GateError,
    compare_benchmarks,
    load_bench,
)


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        baseline = load_bench(args.baseline)
        candidate = load_bench(args.candidate)
        report = compare_benchmarks(
            baseline,
            candidate,
            tolerance=args.tol,
            keys=args.keys or None,
        )
    except GateError as exc:
        print(f"bench-gate: SCHEMA ERROR\n{exc}", file=sys.stderr)
        return 2
    print(report.render())
    if not report.ok:
        print("bench-gate: FAIL", file=sys.stderr)
        return 1
    print("bench-gate: PASS")
    return 0


def _cmd_trace_example(args: argparse.Namespace) -> int:
    # Imported lazily: `compare` must work without numpy in the picture.
    from repro.api import Simulation
    from repro.experiments.workloads import scaled_profiling_config

    steps = args.steps

    sequential = Telemetry(name="sequential", pid=0)
    config = scaled_profiling_config(scale=args.scale, solver="sequential")
    with Simulation(config, telemetry=sequential) as sim:
        sim.run(steps)
        sequential.collect(sim)

    cube = Telemetry(name=f"cube x{args.threads} threads", pid=1)
    cube_config = scaled_profiling_config(
        scale=args.scale, solver="cube", num_threads=args.threads
    )
    with Simulation(cube_config, telemetry=cube) as sim:
        sim.run(steps)
        cube.collect(sim)

    out = pathlib.Path(args.output)
    save_chrome_trace(
        out,
        merge_chrome_traces(
            sequential.tracer.to_chrome_trace(), cube.tracer.to_chrome_trace()
        ),
    )
    metrics_path = out.with_name(out.stem + "_metrics.json")
    cube.metrics.save(metrics_path)

    kernels = sorted({s.name for s in sequential.tracer.spans if s.cat == "kernel"})
    print(f"wrote {out} ({len(sequential.tracer)} sequential spans, "
          f"{len(cube.tracer)} cube spans over {steps} steps)")
    print(f"wrote {metrics_path}")
    print("sequential kernels traced: " + ", ".join(kernels))
    print("open the trace at chrome://tracing or https://ui.perfetto.dev")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="telemetry tools: benchmark gate and trace example",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="diff two BENCH records under a tolerance"
    )
    compare.add_argument("baseline", help="baseline BENCH JSON path")
    compare.add_argument("candidate", help="candidate BENCH JSON path")
    compare.add_argument(
        "--tol", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative tolerance (default {DEFAULT_TOLERANCE})",
    )
    compare.add_argument(
        "--keys", nargs="*", default=None,
        help="fnmatch patterns restricting the gated keys "
             "(e.g. '*.step_seconds')",
    )
    compare.set_defaults(fn=_cmd_compare)

    trace = sub.add_parser(
        "trace-example",
        help="trace a small run (sequential + cube) to chrome-trace JSON",
    )
    trace.add_argument(
        "--output", default="benchmarks/results/trace_example.json",
        help="chrome-trace output path",
    )
    trace.add_argument("--steps", type=int, default=3, help="steps to trace")
    trace.add_argument(
        "--scale", type=int, default=8,
        help="grid divisor of the Table-I workload (8 = tiny smoke grid)",
    )
    trace.add_argument(
        "--threads", type=int, default=2, help="cube-solver thread count"
    )
    trace.set_defaults(fn=_cmd_trace_example)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
