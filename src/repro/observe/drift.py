"""Sliding-window drift detection over a scalar telemetry signal.

The online re-tuning loop needs a small, deterministic answer to one
question: *has the step time moved away from what the tuner measured?*
:class:`DriftDetector` keeps a bounded window of recent samples,
summarises it with the nearest-rank median (robust to the occasional
stall the autotuner's min-of-R discipline also defends against), and
confirms drift only after ``patience`` consecutive windows exceed the
baseline by ``threshold`` — a single slow sweep never triggers.

After a confirmed drift the caller re-tunes and calls
:meth:`DriftDetector.rebaseline`, which adopts the new expectation and
opens a ``cooldown`` period during which no further drift can be
confirmed — re-tuning is expensive and oscillation would be worse than
the drift.

The detector is deliberately signal-agnostic (plain floats in, bool
out) so it lives in :mod:`repro.observe` next to the other sketches;
:mod:`repro.tuning.online` binds it to scheduler ticks.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError

__all__ = ["DriftDetector"]


def _nearest_rank_median(values: list[float]) -> float:
    """Deterministic nearest-rank median (no interpolation)."""
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


class DriftDetector:
    """Confirmed-drift watchdog over a stream of scalar samples.

    Parameters
    ----------
    expected:
        Baseline value the stream is judged against.  ``None`` makes
        the detector self-baselining: the first full window's median
        becomes the expectation (no calibrated absolute model needed).
    threshold:
        Drift ratio: a window median above ``expected * threshold``
        counts one strike.
    window:
        Samples per sliding window; judgment starts once it fills.
    patience:
        Consecutive striking samples required to confirm drift.
    cooldown:
        Samples after a :meth:`rebaseline` during which drift cannot
        be confirmed (strikes do not even accumulate).
    """

    def __init__(
        self,
        expected: float | None = None,
        threshold: float = 1.5,
        window: int = 8,
        patience: int = 3,
        cooldown: int = 32,
    ) -> None:
        if expected is not None and expected <= 0:
            raise ConfigurationError(
                f"expected baseline must be positive, got {expected}"
            )
        if threshold <= 1.0:
            raise ConfigurationError(
                f"drift threshold must exceed 1.0, got {threshold}"
            )
        if window < 1 or patience < 1 or cooldown < 0:
            raise ConfigurationError(
                f"window ({window}) and patience ({patience}) must be "
                f"positive, cooldown ({cooldown}) non-negative"
            )
        self.expected = expected
        self.threshold = threshold
        self.window = window
        self.patience = patience
        self.cooldown = cooldown
        self.strikes = 0
        self._samples: deque[float] = deque(maxlen=window)
        self._seen = 0
        self._quiet_until = 0

    # ------------------------------------------------------------------
    @property
    def median(self) -> float | None:
        """Current window median (``None`` until the window fills)."""
        if len(self._samples) < self.window:
            return None
        return _nearest_rank_median(list(self._samples))

    def observe(self, value: float) -> bool:
        """Feed one sample; ``True`` when drift is confirmed.

        A confirmation does not reset the detector — call
        :meth:`rebaseline` once the corrective action lands, otherwise
        the very next sample confirms again.
        """
        self._seen += 1
        self._samples.append(float(value))
        median = self.median
        if median is None:
            return False
        if self.expected is None:
            # Self-baselining: the first full window defines normal.
            self.expected = median
            return False
        if self._seen < self._quiet_until:
            self.strikes = 0
            return False
        if median > self.expected * self.threshold:
            self.strikes += 1
        else:
            self.strikes = 0
        return self.strikes >= self.patience

    def rebaseline(self, expected: float | None = None) -> None:
        """Adopt a new expectation and open the cooldown window.

        ``expected=None`` adopts the current window median (the
        post-retune reality), falling back to keeping the old baseline
        when the window has not refilled.
        """
        if expected is None:
            expected = self.median if self.median is not None else self.expected
        if expected is not None and expected <= 0:
            raise ConfigurationError(
                f"expected baseline must be positive, got {expected}"
            )
        self.expected = expected
        self.strikes = 0
        self._samples.clear()
        self._quiet_until = self._seen + self.cooldown
