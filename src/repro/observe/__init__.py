"""Unified observability layer: tracing, metrics, and the benchmark gate.

The paper's performance analysis rests on three instruments — gprof
flat profiles (Table I), OmpP parallel-region profiles (Table II), and
PAPI hardware counters (Figure 5).  This package is the library's
first-class telemetry subsystem that subsumes the ad-hoc pieces under
:mod:`repro.profiling`:

``tracer``   — span-based per-kernel/per-cube/per-thread timelines with
               ``chrome://tracing`` export and bridges to the gprof /
               OmpP analyses;
``metrics``  — a counters/gauges/histograms registry with JSON snapshot
               round-trip;
``gate``     — the benchmark-regression gate
               (``python -m repro.observe compare A.json B.json``).

:class:`Telemetry` bundles one tracer and one registry and is the
object the :class:`~repro.api.Simulation` facade accepts::

    from repro.api import Simulation, SimulationConfig
    from repro.observe import Telemetry

    telemetry = Telemetry()
    sim = Simulation(SimulationConfig(fluid_shape=(16, 16, 16)),
                     telemetry=telemetry)
    sim.run(10)
    telemetry.collect(sim)                   # barrier/lock/trace stats
    telemetry.tracer.save_chrome_trace("trace.json")
    telemetry.metrics.save("metrics.json")

When no telemetry is attached every solver sees ``tracer is None`` and
skips all bookkeeping — the disabled path costs one attribute load per
instrumentation site (gated at < 5% on the fused step benchmark).
"""

from __future__ import annotations

from repro.observe.drift import DriftDetector
from repro.observe.gate import (
    GateError,
    GateReport,
    KeyVerdict,
    compare_benchmarks,
    flatten_numeric,
    load_bench,
)
from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry, Quantiles
from repro.observe.tracer import (
    Span,
    Tracer,
    merge_chrome_traces,
    save_chrome_trace,
    span_tree_valid,
)

__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "span_tree_valid",
    "merge_chrome_traces",
    "save_chrome_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Quantiles",
    "DriftDetector",
    "GateError",
    "GateReport",
    "KeyVerdict",
    "compare_benchmarks",
    "flatten_numeric",
    "load_bench",
]


class Telemetry:
    """One tracer plus one metrics registry, wired as a unit.

    Parameters
    ----------
    name:
        Trace label (chrome-trace process name).
    pid:
        Chrome-trace process id for multi-trace merges.
    """

    def __init__(self, name: str = "lbm-ib", pid: int = 0) -> None:
        self.tracer = Tracer(name=name, pid=pid)
        self.metrics = MetricsRegistry()

    def collect(self, sim) -> None:
        """Fold a simulation's solver-side statistics into the registry.

        Harvests whatever the underlying solver variant exposes:
        instrumented-barrier crossings and wait times, owner-lock
        acquisition/contention counts, the executed-task count of the
        async scheduler, and per-kernel busy seconds from the execution
        trace.  Call after :meth:`~repro.api.Simulation.run`.
        """
        # Accept a Simulation facade or a bare solver object; never
        # touch Simulation.solver (it force-builds the lazy variants).
        solver = getattr(sim, "_solver", None)
        if solver is None:
            solver = sim
        self.metrics.counter("sim.steps").inc(0)  # materialize the key
        barriers = getattr(solver, "barriers", None)
        if barriers:
            wait = self.metrics.histogram("parallel.barrier_wait_seconds")
            crossings = self.metrics.counter("parallel.barrier_crossings")
            for barrier in barriers.values():
                stats = barrier.stats
                crossings.inc(stats.crossings)
                if stats.crossings:
                    wait.observe(stats.total_wait_seconds)
        locks = getattr(solver, "locks", None)
        if locks is not None:
            self.metrics.counter("parallel.lock_acquisitions").inc(
                locks.total_acquisitions()
            )
            self.metrics.counter("parallel.lock_contentions").inc(
                locks.total_contentions()
            )
        tasks = getattr(solver, "tasks_executed", None)
        if tasks:
            self.metrics.counter("parallel.tasks_executed").inc(int(tasks))
        trace = getattr(solver, "trace", None)
        if trace is not None:
            for kernel, seconds in trace.seconds_by_kernel().items():
                self.metrics.histogram(f"kernel.{kernel}.seconds").observe(seconds)
            self.metrics.gauge("parallel.load_imbalance").set(
                trace.load_imbalance()
            )
