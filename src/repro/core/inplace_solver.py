"""Single-lattice in-place LBM-IB solver (``variant="inplace"``).

:class:`InplaceLBMIBSolver` runs the same nine-kernel time step as the
fused solver but on **one** D3Q19 lattice: ``df_new``, the pointer swap
and kernel 9 do not exist.  The LBM half alternates the two AA-pattern
phase kernels of :mod:`repro.core.lbm.inplace` — each advancing exactly
one time step — tracked by the grid's ``aa_phase`` flag:

* **even step** (phase 0 -> 1): in-place collision with an
  opposite-direction register swap
  (:func:`~repro.core.lbm.inplace.aa_even_collide_swap`); boundary
  repairs are written through the encoding
  (:meth:`~repro.core.lbm.boundaries.Boundary.apply_aa_even`) and
  kernel 7 takes its moments with pull reads
  (:func:`~repro.core.lbm.inplace.update_velocity_fields_aa`);
* **odd step** (phase 1 -> 0): pull-swap gather + collide + push-stream
  (:func:`~repro.core.lbm.inplace.aa_odd_collide_stream`), after which
  the lattice is natural again and the existing fused boundary and
  kernel-7 paths apply unchanged.

IB coupling (kernels 1-4, 8) reads only the macroscopic fields and the
fiber state, which are phase-independent, so it is shared verbatim with
the fused solver.  The differential oracle gates the variant against
``sequential`` with zero divergence for BGK and TRT; the payoff is the
halved lattice footprint (one ``(19, Nx, Ny, Nz)`` buffer instead of
two — ``BENCH_inplace.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

from repro.constants import DT
from repro.core import kernels
from repro.core.coupling import update_velocity_fields_inplace
from repro.core.ib import motion as _motion
from repro.core.ib import spreading as _spreading
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.boundaries import Boundary, face_index, validate_boundaries
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.inplace import (
    aa_even_collide_swap,
    aa_odd_collide_stream,
    update_velocity_fields_aa,
)
from repro.errors import ConfigurationError

__all__ = ["InplaceLBMIBSolver"]


@dataclass
class InplaceLBMIBSolver:
    """Run the LBM-IB method on a single AA-pattern lattice.

    Constructor parameters mirror
    :class:`~repro.core.fused_solver.FusedLBMIBSolver` exactly; the
    ``fluid`` grid must be single-lattice
    (``FluidGrid(..., single_lattice=True)``).
    """

    fluid: FluidGrid
    structure: ImmersedStructure | None
    delta: DeltaKernel = field(default_factory=default_delta)
    boundaries: Sequence[Boundary] = field(default_factory=list)
    dt: float = DT
    kernel_timer: Callable[[str, float], None] | None = None
    check_stability_every: int = 0
    external_force: tuple[float, float, float] | None = None
    fault_hook: Callable[[int, int], None] | None = None
    tracer: "Tracer | None" = None
    time_step: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.fluid.df_new is not None:
            raise ConfigurationError(
                "InplaceLBMIBSolver requires a single-lattice grid "
                "(FluidGrid(..., single_lattice=True)); a two-lattice grid "
                "would silently waste the footprint the variant exists to save"
            )
        validate_boundaries(list(self.boundaries))
        self._stencil_cache = _spreading.StencilCache()
        self._ext: np.ndarray | None = None
        if self.external_force is not None:
            self._ext = np.asarray(
                self.external_force, dtype=self.fluid.force.dtype
            ).reshape(3, 1, 1, 1)
            self.fluid.force[...] = self._ext
        self._build_capture_plan()

    def _build_capture_plan(self) -> None:
        """Preallocate face buffers for boundaries that read df_post.

        Identical to the fused solver's plan: both phase kernels hand
        every finalized post-collision slab to the capture hook during
        the sweep — before any repair can clobber a face another
        boundary still needs — so one plan serves even and odd steps.
        """
        shape = self.fluid.shape
        face_dtype = self.fluid.df.dtype
        plan: dict[int, list[tuple[tuple, np.ndarray]]] = {}
        self._aa_boundaries: list[tuple[Boundary, dict[int, np.ndarray]]] = []
        for boundary in self.boundaries:
            faces: dict[int, np.ndarray] = {}
            deps = boundary.post_dependencies()
            if deps:
                idx = face_index(boundary.axis, boundary.side, shape)
                face_shape = self.fluid.df[0][idx].shape
                for direction in deps:
                    buf = np.empty(face_shape, dtype=face_dtype)
                    faces[direction] = buf
                    plan.setdefault(int(direction), []).append((idx, buf))
            self._aa_boundaries.append((boundary, faces))
        self._capture_plan = plan
        self._capture = self._capture_faces if plan else None

    def _capture_faces(self, direction: int, post: np.ndarray) -> None:
        for idx, buf in self._capture_plan.get(direction, ()):
            buf[...] = post[idx]

    # ------------------------------------------------------------------
    def _timed(self, name: str, fn: Callable[[], None]) -> None:
        tracer = self.tracer
        if tracer is None and self.kernel_timer is None:
            fn()
            return
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if self.kernel_timer is not None:
            self.kernel_timer(name, elapsed)
        if tracer is not None:
            tracer.record(name, 0, start, elapsed, step=self.time_step)

    def _even_step(self) -> None:
        aa_even_collide_swap(self.fluid, capture=self._capture)
        df = self.fluid.df
        for boundary, faces in self._aa_boundaries:
            boundary.apply_aa_even(faces, df)

    def _odd_step(self) -> None:
        aa_odd_collide_stream(self.fluid, capture=self._capture)
        df = self.fluid.df
        for boundary, faces in self._aa_boundaries:
            boundary.apply_fused(faces, df)

    def _spread_forces(self) -> None:
        for sheet in self.structure.sheets:
            _spreading.spread_forces(
                sheet, self.delta, self.fluid.force, cache=self._stencil_cache
            )

    def _move_fibers(self) -> None:
        for sheet in self.structure.sheets:
            _motion.move_fibers(
                sheet,
                self.delta,
                self.fluid.velocity,
                dt=self.dt,
                cache=self._stencil_cache,
            )

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one time step through the phase kernel due next."""
        if self.fault_hook is not None:
            self.fault_hook(0, self.time_step)
        fluid, structure = self.fluid, self.structure

        # --- IB related (kernels 1-4, unchanged physics) ---
        if structure is not None:
            self._timed(
                "compute_bending_force_in_fibers",
                lambda: kernels.compute_bending_force_in_fibers(structure),
            )
            self._timed(
                "compute_stretching_force_in_fibers",
                lambda: kernels.compute_stretching_force_in_fibers(structure),
            )
            self._timed(
                "compute_elastic_force_in_fibers",
                lambda: kernels.compute_elastic_force_in_fibers(structure),
            )
            self._stencil_cache.begin_step()
            self._timed("spread_force_from_fibers_to_fluid", self._spread_forces)

        # --- LBM related: one AA phase kernel = one time step ---
        if fluid.aa_phase == 0:
            self._timed("aa_even_collide_swap", self._even_step)
            self._timed(
                "update_fluid_velocity",
                lambda: update_velocity_fields_aa(
                    fluid, fluid.arena.vector("aa_momentum")
                ),
            )
        else:
            self._timed("aa_odd_collide_stream", self._odd_step)
            self._timed(
                "update_fluid_velocity",
                lambda: update_velocity_fields_inplace(
                    fluid, fluid.arena.vector("aa_momentum"), df=fluid.df
                ),
            )

        # --- FSI coupling related ---
        if structure is not None:
            self._timed("move_fibers", self._move_fibers)
            self._stencil_cache.end_step()
        # No kernel 9 and no pointer swap: the single lattice already
        # holds the step's state (encoded or natural per aa_phase).

        if self._ext is None:
            fluid.force[...] = 0.0
        else:
            fluid.force[...] = self._ext

        self.time_step += 1
        if (
            self.check_stability_every
            and self.time_step % self.check_stability_every == 0
        ):
            fluid.validate_stable()
            if structure is not None:
                from repro.errors import StabilityError

                for sheet in structure.sheets:
                    if not np.isfinite(sheet.positions).all():
                        raise StabilityError(
                            "fiber positions contain non-finite values; the "
                            "structure solver has become unstable (reduce "
                            "stiffness or the time step)"
                        )

    def run(self, num_steps: int, observer=None) -> None:
        """Run ``num_steps`` time steps, optionally reporting each step."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for _ in range(num_steps):
            self.step()
            if observer is not None:
                observer(self.time_step, self)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Shallow diagnostic snapshot of the headline state arrays."""
        return {
            "velocity": self.fluid.velocity.copy(),
            "density": self.fluid.density.copy(),
            "force": self.fluid.force.copy(),
            "fiber_positions": (
                [s.positions.copy() for s in self.structure.sheets]
                if self.structure is not None
                else []
            ),
        }
