"""The sequential LBM-IB solver (paper Algorithm 1).

:class:`SequentialLBMIBSolver` creates/accepts an immersed structure and
a 3D fluid grid, then executes the nine computational kernels repeatedly
to simulate each time step.  Optional per-kernel timing hooks feed the
gprof-style profiler used to regenerate paper Table I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

from repro.constants import DT
from repro.core import kernels
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.boundaries import Boundary, validate_boundaries
from repro.core.lbm.fields import FluidGrid

__all__ = ["SequentialLBMIBSolver", "StepObserver"]

#: Signature of a per-step observer: ``observer(step_index, solver)``.
StepObserver = Callable[[int, "SequentialLBMIBSolver"], None]


@dataclass
class SequentialLBMIBSolver:
    """Run the LBM-IB method sequentially, one kernel after another.

    Parameters
    ----------
    fluid:
        The Eulerian fluid grid.
    structure:
        The Lagrangian immersed structure (fiber sheets).
    delta:
        Smoothed delta kernel; defaults to Peskin's 4-point cosine.
    boundaries:
        Face boundary conditions applied after streaming; an empty list
        means fully periodic.
    dt:
        Time step (1 in lattice units).
    kernel_timer:
        Optional callable ``timer(kernel_name, seconds)`` invoked after
        every kernel (used by :mod:`repro.profiling.gprof`).
    check_stability_every:
        Validate fields for NaN/Inf every this many steps (0 disables).
    external_force:
        Optional constant body-force density (3-vector) applied to every
        fluid node on top of the spread elastic force; used to drive
        channel flows (e.g. the Poiseuille validation).
    fault_hook:
        Optional ``hook(tid, step)`` called at the top of every step
        (tid is always 0 here); installed by the resilience layer's
        :class:`~repro.resilience.faults.FaultInjector` to corrupt
        fields or kill the run at a chosen step.
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer` receiving one
        span per kernel per step (``None`` = telemetry disabled, the
        zero-overhead default).
    """

    fluid: FluidGrid
    structure: ImmersedStructure | None
    delta: DeltaKernel = field(default_factory=default_delta)
    boundaries: Sequence[Boundary] = field(default_factory=list)
    dt: float = DT
    kernel_timer: Callable[[str, float], None] | None = None
    check_stability_every: int = 0
    external_force: tuple[float, float, float] | None = None
    fault_hook: Callable[[int, int], None] | None = None
    tracer: "Tracer | None" = None
    time_step: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        validate_boundaries(list(self.boundaries))
        if self.external_force is not None:
            self._seed_external_force()

    def _seed_external_force(self) -> None:
        f = np.asarray(self.external_force, dtype=self.fluid.force.dtype)
        self.fluid.force[...] = f[:, None, None, None]

    # ------------------------------------------------------------------
    def _timed(self, name: str, fn: Callable[[], None]) -> None:
        tracer = self.tracer
        if tracer is None and self.kernel_timer is None:
            fn()
            return
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if self.kernel_timer is not None:
            self.kernel_timer(name, elapsed)
        if tracer is not None:
            tracer.record(name, 0, start, elapsed, step=self.time_step)

    def _apply_boundaries(self) -> None:
        for boundary in self.boundaries:
            boundary.apply(self.fluid.df, self.fluid.df_new)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one time step (the 9 kernels)."""
        if self.fault_hook is not None:
            self.fault_hook(0, self.time_step)
        fluid, structure, delta = self.fluid, self.structure, self.delta

        # --- IB related ---
        if structure is not None:
            self._timed(
                "compute_bending_force_in_fibers",
                lambda: kernels.compute_bending_force_in_fibers(structure),
            )
            self._timed(
                "compute_stretching_force_in_fibers",
                lambda: kernels.compute_stretching_force_in_fibers(structure),
            )
            self._timed(
                "compute_elastic_force_in_fibers",
                lambda: kernels.compute_elastic_force_in_fibers(structure),
            )
            # reset=False: the force field already holds exactly the
            # external body force (re-seeded at the end of every step).
            self._timed(
                "spread_force_from_fibers_to_fluid",
                lambda: kernels.spread_force_from_fibers_to_fluid(
                    structure, fluid, delta, reset=False
                ),
            )

        # --- LBM related ---
        self._timed(
            "compute_fluid_collision",
            lambda: kernels.compute_fluid_collision(fluid),
        )
        self._timed(
            "stream_fluid_velocity_distribution",
            lambda: (
                kernels.stream_fluid_velocity_distribution(fluid),
                self._apply_boundaries(),
            )[0],
        )

        # --- FSI coupling related ---
        self._timed(
            "update_fluid_velocity",
            lambda: kernels.update_fluid_velocity(fluid),
        )
        if structure is not None:
            self._timed(
                "move_fibers",
                lambda: kernels.move_fibers(structure, fluid, delta, dt=self.dt),
            )
        self._timed(
            "copy_fluid_velocity_distribution",
            lambda: kernels.copy_fluid_velocity_distribution(fluid),
        )
        # The spread force has served kernels 5-8; reset it here so every
        # solver variant (sequential, OpenMP, cube) leaves the same
        # post-step state: the force field holds only the constant
        # external body force (if any) between steps.
        if self.external_force is None:
            fluid.force[...] = 0.0
        else:
            self._seed_external_force()

        self.time_step += 1
        if (
            self.check_stability_every
            and self.time_step % self.check_stability_every == 0
        ):
            fluid.validate_stable()
            if structure is not None:
                from repro.errors import StabilityError

                for sheet in structure.sheets:
                    if not np.isfinite(sheet.positions).all():
                        raise StabilityError(
                            "fiber positions contain non-finite values; the "
                            "structure solver has become unstable (reduce "
                            "stiffness or the time step)"
                        )

    def run(self, num_steps: int, observer: StepObserver | None = None) -> None:
        """Run ``num_steps`` time steps, optionally reporting each step."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for _ in range(num_steps):
            self.step()
            if observer is not None:
                observer(self.time_step, self)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Shallow diagnostic snapshot of the headline state arrays."""
        return {
            "velocity": self.fluid.velocity.copy(),
            "density": self.fluid.density.copy(),
            "force": self.fluid.force.copy(),
            "fiber_positions": (
                [s.positions.copy() for s in self.structure.sheets]
                if self.structure is not None
                else []
            ),
        }
