"""Pure-Python loop reference kernels.

These implementations mirror the paper's per-node pseudocode literally —
triple loops over fluid nodes, a loop over the 19 directions, loops over
fiber nodes and their neighbours.  They are deliberately slow and exist
only as an independent oracle: the test suite checks the vectorized
production kernels against them on tiny inputs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import DT, DTYPE, Q
from repro.core.ib.delta import DeltaKernel
from repro.core.ib.fiber import FiberSheet
from repro.core.lbm.lattice import E, W

__all__ = [
    "equilibrium_node",
    "macroscopic_loop",
    "collide_loop",
    "update_velocity_loop",
    "stream_loop",
    "spread_loop",
    "interpolate_loop",
    "bending_force_loop",
    "stretching_force_loop",
]


def equilibrium_node(rho: float, u) -> np.ndarray:
    """Equilibrium of a single node, computed with scalar arithmetic."""
    u = np.asarray(u, dtype=DTYPE)
    out = np.empty(Q, dtype=DTYPE)
    usq = float(u @ u)
    for i in range(Q):
        eu = float(E[i] @ u)
        out[i] = W[i] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
    return out


def macroscopic_loop(df: np.ndarray, force: np.ndarray | None = None):
    """Per-node density/velocity moments with explicit loops.

    Returns ``(density, velocity)`` with shapes ``S`` and ``(3, *S)``.
    """
    _, nx, ny, nz = df.shape
    density = np.zeros((nx, ny, nz), dtype=DTYPE)
    velocity = np.zeros((3, nx, ny, nz), dtype=DTYPE)
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                rho = 0.0
                mom = np.zeros(3, dtype=DTYPE)
                for i in range(Q):
                    f = df[i, x, y, z]
                    rho += f
                    mom += f * E[i]
                if force is not None:
                    mom += 0.5 * DT * force[:, x, y, z]
                density[x, y, z] = rho
                velocity[:, x, y, z] = mom / rho
    return density, velocity


def collide_loop(
    df: np.ndarray,
    tau: float,
    velocity_shifted: np.ndarray,
) -> np.ndarray:
    """BGK collision toward the shifted-velocity equilibrium, node by node.

    Mirrors kernel 5 of the velocity-shift forcing scheme: the density
    is the local zeroth moment, but the equilibrium velocity is the
    stored ``u*`` written by the previous step's kernel 7.
    """
    _, nx, ny, nz = df.shape
    out = np.empty_like(df)
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                rho = 0.0
                for i in range(Q):
                    rho += df[i, x, y, z]
                u_star = velocity_shifted[:, x, y, z]
                feq = equilibrium_node(rho, u_star)
                for i in range(Q):
                    out[i, x, y, z] = df[i, x, y, z] - (df[i, x, y, z] - feq[i]) / tau
    return out


def update_velocity_loop(
    df_new: np.ndarray, force: np.ndarray, tau: float
):
    """Kernel 7 oracle: per-node physical and shifted velocities.

    Returns ``(density, velocity, velocity_shifted)``.
    """
    _, nx, ny, nz = df_new.shape
    density = np.zeros((nx, ny, nz), dtype=DTYPE)
    velocity = np.zeros((3, nx, ny, nz), dtype=DTYPE)
    velocity_shifted = np.zeros((3, nx, ny, nz), dtype=DTYPE)
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                rho = 0.0
                mom = np.zeros(3, dtype=DTYPE)
                for i in range(Q):
                    f = df_new[i, x, y, z]
                    rho += f
                    mom += f * E[i]
                f_vec = force[:, x, y, z]
                density[x, y, z] = rho
                velocity[:, x, y, z] = (mom + 0.5 * DT * f_vec) / rho
                velocity_shifted[:, x, y, z] = (mom + tau * DT * f_vec) / rho
    return density, velocity, velocity_shifted


def stream_loop(df_post: np.ndarray) -> np.ndarray:
    """Push streaming with explicit loops and periodic wrap."""
    _, nx, ny, nz = df_post.shape
    out = np.zeros_like(df_post)
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                for i in range(Q):
                    dx, dy, dz = (int(c) for c in E[i])
                    out[i, (x + dx) % nx, (y + dy) % ny, (z + dz) % nz] = df_post[
                        i, x, y, z
                    ]
    return out


def _delta_weight(delta: DeltaKernel, r: float) -> float:
    return float(delta.weight_1d(np.asarray([r], dtype=DTYPE))[0])


def spread_loop(
    sheet: FiberSheet, delta: DeltaKernel, grid_shape: tuple[int, int, int]
) -> np.ndarray:
    """Loop-based force spreading; returns a fresh force field."""
    nx, ny, nz = grid_shape
    force = np.zeros((3, nx, ny, nz), dtype=DTYPE)
    s = delta.support
    for fi in range(sheet.num_fibers):
        for ni in range(sheet.nodes_per_fiber):
            if not sheet.active[fi, ni]:
                continue
            pos = sheet.positions[fi, ni]
            f_l = sheet.elastic_force[fi, ni] * sheet.area_element
            if s % 2 == 0:
                base = [math.floor(pos[a]) - (s // 2 - 1) for a in range(3)]
            else:
                base = [round(pos[a]) - (s - 1) // 2 for a in range(3)]
            for ox in range(s):
                for oy in range(s):
                    for oz in range(s):
                        gx, gy, gz = base[0] + ox, base[1] + oy, base[2] + oz
                        w = (
                            _delta_weight(delta, gx - pos[0])
                            * _delta_weight(delta, gy - pos[1])
                            * _delta_weight(delta, gz - pos[2])
                        )
                        force[:, gx % nx, gy % ny, gz % nz] += w * f_l
    return force


def interpolate_loop(
    sheet: FiberSheet, delta: DeltaKernel, velocity: np.ndarray
) -> np.ndarray:
    """Loop-based velocity interpolation; returns ``(nf, nn, 3)``."""
    _, nx, ny, nz = velocity.shape
    out = np.zeros_like(sheet.positions)
    s = delta.support
    for fi in range(sheet.num_fibers):
        for ni in range(sheet.nodes_per_fiber):
            if not sheet.active[fi, ni]:
                continue
            pos = sheet.positions[fi, ni]
            if s % 2 == 0:
                base = [math.floor(pos[a]) - (s // 2 - 1) for a in range(3)]
            else:
                base = [round(pos[a]) - (s - 1) // 2 for a in range(3)]
            acc = np.zeros(3, dtype=DTYPE)
            for ox in range(s):
                for oy in range(s):
                    for oz in range(s):
                        gx, gy, gz = base[0] + ox, base[1] + oy, base[2] + oz
                        w = (
                            _delta_weight(delta, gx - pos[0])
                            * _delta_weight(delta, gy - pos[1])
                            * _delta_weight(delta, gz - pos[2])
                        )
                        acc += w * velocity[:, gx % nx, gy % ny, gz % nz]
            out[fi, ni] = acc
    return out


def bending_force_loop(sheet: FiberSheet) -> np.ndarray:
    """Loop-based bending force with free sheet edges; returns ``(nf, nn, 3)``."""

    def active(fi: int, ni: int) -> bool:
        nf, nn = sheet.active.shape
        return 0 <= fi < nf and 0 <= ni < nn and bool(sheet.active[fi, ni])

    def curvature(fi: int, ni: int, axis: int) -> np.ndarray:
        da = (1, 0) if axis == 0 else (0, 1)
        lo = (fi - da[0], ni - da[1])
        hi = (fi + da[0], ni + da[1])
        if not (active(*lo) and active(fi, ni) and active(*hi)):
            return np.zeros(3, dtype=DTYPE)
        return (
            sheet.positions[lo]
            - 2.0 * sheet.positions[fi, ni]
            + sheet.positions[hi]
        )

    out = np.zeros_like(sheet.positions)
    nf, nn = sheet.active.shape
    for fi in range(nf):
        for ni in range(nn):
            if not sheet.active[fi, ni]:
                continue
            total = np.zeros(3, dtype=DTYPE)
            for axis in (0, 1):
                da = (1, 0) if axis == 0 else (0, 1)
                c_lo = curvature(fi - da[0], ni - da[1], axis)
                c_mid = curvature(fi, ni, axis)
                c_hi = curvature(fi + da[0], ni + da[1], axis)
                total += c_lo - 2.0 * c_mid + c_hi
            out[fi, ni] = -sheet.bend_coefficient * total
    return out


def stretching_force_loop(sheet: FiberSheet) -> np.ndarray:
    """Loop-based stretching force; returns ``(nf, nn, 3)``."""

    def active(fi: int, ni: int) -> bool:
        nf, nn = sheet.active.shape
        return 0 <= fi < nf and 0 <= ni < nn and bool(sheet.active[fi, ni])

    out = np.zeros_like(sheet.positions)
    nf, nn = sheet.active.shape
    neighbours = (
        ((0, -1), sheet.rest_spacing_fiber),
        ((0, 1), sheet.rest_spacing_fiber),
        ((-1, 0), sheet.rest_spacing_cross),
        ((1, 0), sheet.rest_spacing_cross),
    )
    for fi in range(nf):
        for ni in range(nn):
            if not sheet.active[fi, ni]:
                continue
            total = np.zeros(3, dtype=DTYPE)
            for (dfi, dni), rest in neighbours:
                mi, mj = fi + dfi, ni + dni
                if not active(mi, mj):
                    continue
                d = sheet.positions[mi, mj] - sheet.positions[fi, ni]
                dist = float(np.linalg.norm(d))
                if dist > 0.0:
                    total += sheet.stretch_coefficient * (1.0 - rest / dist) * d
            out[fi, ni] = total
    return out
