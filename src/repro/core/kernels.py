"""The nine LBM-IB computational kernels (paper Section III-B).

Function names follow the paper exactly.  Every kernel takes the shared
state objects (:class:`~repro.core.ib.fiber.ImmersedStructure`,
:class:`~repro.core.lbm.fields.FluidGrid`) and is free of hidden module
state, so the same kernels serve the sequential solver (Algorithm 1),
the OpenMP-style solver (Algorithms 2-3) and the cube-based solver
(Algorithm 4).

Per-time-step order (Algorithm 1)::

    IB related:        1) compute_bending_force_in_fibers
                       2) compute_stretching_force_in_fibers
                       3) compute_elastic_force_in_fibers
                       4) spread_force_from_fibers_to_fluid
    LBM related:       5) compute_fluid_collision
                       6) stream_fluid_velocity_distribution
    FSI coupling:      7) update_fluid_velocity
                       8) move_fibers
                       9) copy_fluid_velocity_distribution
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT
from repro.core import coupling
from repro.core.ib import forces as _forces
from repro.core.ib import motion as _motion
from repro.core.ib import spreading as _spreading
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm import collision as _collision
from repro.core.lbm import streaming as _streaming
from repro.core.lbm.fields import FluidGrid

__all__ = [
    "KERNEL_NAMES",
    "compute_bending_force_in_fibers",
    "compute_stretching_force_in_fibers",
    "compute_elastic_force_in_fibers",
    "spread_force_from_fibers_to_fluid",
    "compute_fluid_collision",
    "stream_fluid_velocity_distribution",
    "update_fluid_velocity",
    "move_fibers",
    "copy_fluid_velocity_distribution",
]

#: Kernel names in Algorithm 1 order, indexed 1..9 as in the paper.
KERNEL_NAMES: tuple[str, ...] = (
    "compute_bending_force_in_fibers",
    "compute_stretching_force_in_fibers",
    "compute_elastic_force_in_fibers",
    "spread_force_from_fibers_to_fluid",
    "compute_fluid_collision",
    "stream_fluid_velocity_distribution",
    "update_fluid_velocity",
    "move_fibers",
    "copy_fluid_velocity_distribution",
)


# ----------------------------------------------------------------------
# IB related (fiber kernels)
# ----------------------------------------------------------------------
def compute_bending_force_in_fibers(structure: ImmersedStructure) -> None:
    """Kernel 1: bending force at every fiber node (8-neighbour stencil)."""
    for sheet in structure.sheets:
        _forces.compute_bending_force(sheet)


def compute_stretching_force_in_fibers(structure: ImmersedStructure) -> None:
    """Kernel 2: stretching force against the four nearest neighbours."""
    for sheet in structure.sheets:
        _forces.compute_stretching_force(sheet)


def compute_elastic_force_in_fibers(structure: ImmersedStructure) -> None:
    """Kernel 3: elastic force = bending + stretching (+ tethers)."""
    for sheet in structure.sheets:
        _forces.compute_elastic_force(sheet)


def spread_force_from_fibers_to_fluid(
    structure: ImmersedStructure,
    fluid: FluidGrid,
    delta: DeltaKernel | None = None,
    reset: bool = True,
) -> None:
    """Kernel 4: exert elastic forces onto the fluid influential domains.

    Parameters
    ----------
    reset:
        Zero the fluid force field first (default); the parallel solvers
        zero it once and then accumulate per-thread with ``reset=False``.
    """
    if delta is None:
        delta = default_delta()
    if reset:
        fluid.force[...] = 0.0
    for sheet in structure.sheets:
        _spreading.spread_forces(sheet, delta, fluid.force)


# ----------------------------------------------------------------------
# LBM related (fluid kernels)
# ----------------------------------------------------------------------
def compute_fluid_collision(fluid: FluidGrid) -> None:
    """Kernel 5: BGK collision, in place on ``fluid.df``.

    Relaxes every node's 19 populations toward the equilibrium built
    with the *shifted* velocity written by the previous step's kernel 7
    (the velocity-shift forcing scheme); the collision itself never
    reads the force field, which is what lets the cube-based algorithm
    run loops 1 and 2 without an intervening barrier.
    """
    from repro.core.lbm import macroscopic

    # Accumulate the density moment at the grid's compute dtype (float64
    # under the mixed policy; a no-op for the uniform policies).
    density = macroscopic.compute_density(fluid.df, dtype=fluid.precision.compute)
    _collision.collide(
        fluid.df,
        density,
        fluid.velocity_shifted,
        fluid.tau,
        operator=fluid.collision_operator,
        magic_lambda=fluid.trt_magic,
    )


def stream_fluid_velocity_distribution(fluid: FluidGrid) -> None:
    """Kernel 6: push post-collision populations to the 18 neighbours.

    Writes into the new-distribution buffer ``fluid.df_new`` (periodic
    wrap; physical boundaries are repaired by the solver's boundary
    conditions immediately afterwards).
    """
    _streaming.stream(fluid.df, fluid.df_new)


# ----------------------------------------------------------------------
# FSI-coupling related
# ----------------------------------------------------------------------
def update_fluid_velocity(fluid: FluidGrid) -> None:
    """Kernel 7: macroscopic velocity from ``df_new`` + the elastic force.

    The new velocity combines the streamed distributions (kernel 6) with
    the force spread in kernel 4, exactly as the paper describes: the
    physical velocity (half-step correction, used to move the fibers)
    and the shifted collision velocity consumed by the next step's
    kernel 5.
    """
    coupling.update_velocity_fields(fluid)


def move_fibers(
    structure: ImmersedStructure,
    fluid: FluidGrid,
    delta: DeltaKernel | None = None,
    dt: float = DT,
) -> None:
    """Kernel 8: interpolate fluid velocity and move every fiber node."""
    if delta is None:
        delta = default_delta()
    for sheet in structure.sheets:
        _motion.move_fibers(sheet, delta, fluid.velocity, dt=dt)


def copy_fluid_velocity_distribution(fluid: FluidGrid) -> None:
    """Kernel 9: copy the new-distribution buffer back to the present one."""
    np.copyto(fluid.df, fluid.df_new)
