"""FSI coupling: how the elastic force enters the fluid update.

The paper's kernel structure routes the structure's elastic force into
the fluid exclusively through kernel 7 (``update_fluid_velocity``):
kernel 5 (collision) never reads the force field, which is why
Algorithm 4 needs no barrier between the spreading loop and the
collision loop.  This corresponds to the *velocity-shift* forcing
scheme (Shan & Chen 1993):

* the collision relaxes toward the equilibrium built with the shifted
  velocity ``u* = u + tau_odd F / rho``, where ``tau_odd`` is the
  relaxation time of the *odd* (momentum-carrying) moments — ``tau``
  for BGK, ``tau-`` for TRT.  Scaling the shift by the odd relaxation
  time injects exactly ``F dt`` of momentum per step for either
  operator;
* the physical velocity reported by kernel 7 and used to move the
  fibers carries the half-step correction ``u = (m + F dt / 2) / rho``
  where ``m = sum_i e_i f_i``.

For a force-free fluid both velocities coincide and the scheme reduces
to plain BGK.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT
from repro.core.lbm import macroscopic
from repro.core.lbm.fields import FluidGrid

__all__ = [
    "update_velocity_fields",
    "update_velocity_fields_inplace",
    "shifted_velocities",
]


def shifted_velocities(
    df: np.ndarray,
    force: np.ndarray,
    tau: float,
    out_velocity: np.ndarray | None = None,
    out_velocity_shifted: np.ndarray | None = None,
    out_density: np.ndarray | None = None,
    accum_dtype=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Physical and shifted velocities from distributions plus force.

    Returns ``(velocity, velocity_shifted, density)`` where::

        rho        = sum_i f_i
        velocity   = (sum_i e_i f_i + F dt / 2) / rho     (physical)
        velocity*  = (sum_i e_i f_i + tau F dt) / rho     (for collision)

    ``accum_dtype`` pins the density-reduction accumulator (the grid's
    compute dtype under the mixed policy).
    """
    density = macroscopic.compute_density(df, out=out_density, dtype=accum_dtype)
    momentum = macroscopic.compute_momentum_density(df)

    if out_velocity is None:
        out_velocity = np.empty_like(momentum)
    if out_velocity_shifted is None:
        out_velocity_shifted = np.empty_like(momentum)

    force = np.asarray(force)
    np.add(momentum, (tau * DT) * force, out=out_velocity_shifted)
    out_velocity_shifted /= density[None, ...]
    momentum += (0.5 * DT) * force
    np.divide(momentum, density[None, ...], out=out_velocity)
    return out_velocity, out_velocity_shifted, density


def update_velocity_fields(fluid: FluidGrid) -> None:
    """Kernel 7 body: refresh density, velocity and shifted velocity.

    Takes moments of the *new* (post-streaming) buffer together with the
    force spread in kernel 4 of the current step.
    """
    shifted_velocities(
        fluid.df_new,
        fluid.force,
        fluid.tau_odd,
        out_velocity=fluid.velocity,
        out_velocity_shifted=fluid.velocity_shifted,
        out_density=fluid.density,
        accum_dtype=fluid.precision.compute,
    )


def update_velocity_fields_inplace(
    fluid: FluidGrid, momentum: np.ndarray, df: np.ndarray | None = None
) -> None:
    """Allocation-free kernel 7 used by the fused and in-place solvers.

    Numerically identical to :func:`update_velocity_fields` (the force
    term is added to the momentum instead of the other way round —
    floating-point addition commutes bit-exactly), but every temporary
    lands in a caller-supplied or grid-owned buffer:

    Parameters
    ----------
    momentum:
        Scratch buffer ``(3, Nx, Ny, Nz)`` receiving ``sum_i e_i f_i``
        (typically ``fluid.arena.vector("momentum")``).
    df:
        Distribution buffer to take moments of.  Defaults to
        ``fluid.df_new`` (the fused solver's post-streaming buffer);
        the single-lattice in-place solver passes ``fluid.df`` after an
        odd step, when the freshly streamed state lives there.
    """
    if df is None:
        df = fluid.df_new
    macroscopic.compute_density(df, out=fluid.density, dtype=fluid.precision.compute)
    macroscopic.compute_momentum_density(df, out=momentum)
    rho = fluid.density

    shifted = fluid.velocity_shifted
    np.multiply(fluid.force, fluid.tau_odd * DT, out=shifted)
    shifted += momentum

    velocity = fluid.velocity
    np.multiply(fluid.force, 0.5 * DT, out=velocity)
    velocity += momentum

    # Divide component-wise: an in-place ufunc with a *broadcast*
    # divisor falls back to numpy's buffered inner loop and allocates;
    # the same-shape form doesn't (and is elementwise identical).
    for comp in range(3):
        shifted[comp] /= rho
        velocity[comp] /= rho
