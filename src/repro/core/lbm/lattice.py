"""The D3Q19 lattice model (paper Figure 2).

A particle at a lattice node may stay at rest (direction 0) or move along
18 discrete directions: the six axis-aligned unit vectors and the twelve
face-diagonal vectors.  This module defines the velocity set, quadrature
weights, opposite-direction table, and slice views used by the collision,
streaming, and bounce-back kernels.

Direction ordering
------------------
``0``        rest particle
``1..6``     +x, -x, +y, -y, +z, -z               (weight 1/18)
``7..18``    the twelve (±1, ±1, 0)-type diagonals (weight 1/36)
"""

from __future__ import annotations

import numpy as np

from repro.constants import CS2, DIM, Q

__all__ = [
    "Q",
    "DIM",
    "E",
    "E_FLOAT",
    "W",
    "OPPOSITE",
    "AXIS_DIRECTIONS",
    "DIAGONAL_DIRECTIONS",
    "REST_DIRECTION",
    "lattice_moments_ok",
    "direction_index",
]

#: Integer particle velocities, shape (19, 3).
E: np.ndarray = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
        [-1, 1, 0],
        [1, 0, 1],
        [-1, 0, -1],
        [1, 0, -1],
        [-1, 0, 1],
        [0, 1, 1],
        [0, -1, -1],
        [0, 1, -1],
        [0, -1, 1],
    ],
    dtype=np.int64,
)

#: Floating point copy of :data:`E` used in arithmetic kernels.
E_FLOAT: np.ndarray = E.astype(np.float64)

#: Quadrature weights, shape (19,).
W: np.ndarray = np.array(
    [1.0 / 3.0]
    + [1.0 / 18.0] * 6
    + [1.0 / 36.0] * 12,
    dtype=np.float64,
)

#: Index of the rest direction.
REST_DIRECTION: int = 0

#: Indices of the six axis-aligned directions.
AXIS_DIRECTIONS: np.ndarray = np.arange(1, 7)

#: Indices of the twelve diagonal directions.
DIAGONAL_DIRECTIONS: np.ndarray = np.arange(7, 19)


def _build_opposite() -> np.ndarray:
    opp = np.empty(Q, dtype=np.int64)
    for i in range(Q):
        target = -E[i]
        matches = np.nonzero((E == target).all(axis=1))[0]
        if matches.size != 1:  # pragma: no cover - construction invariant
            raise AssertionError("D3Q19 velocity set is not symmetric")
        opp[i] = matches[0]
    return opp


#: ``OPPOSITE[i]`` is the direction with velocity ``-E[i]``.
OPPOSITE: np.ndarray = _build_opposite()


def direction_index(vector) -> int:
    """Return the direction index whose velocity equals ``vector``.

    Raises :class:`ValueError` if ``vector`` is not one of the 19 lattice
    velocities.
    """
    v = np.asarray(vector, dtype=np.int64)
    if v.shape != (DIM,):
        raise ValueError(f"expected a 3-vector, got shape {v.shape}")
    matches = np.nonzero((E == v).all(axis=1))[0]
    if matches.size != 1:
        raise ValueError(f"{v.tolist()} is not a D3Q19 lattice velocity")
    return int(matches[0])


def lattice_moments_ok(rtol: float = 1e-14) -> bool:
    """Check the moment (isotropy) conditions of the D3Q19 quadrature.

    The weights and velocities must satisfy::

        sum_i w_i            = 1
        sum_i w_i e_ia       = 0
        sum_i w_i e_ia e_ib  = cs^2 delta_ab
        sum_i w_i e_ia e_ib e_ic = 0

    These conditions guarantee that the discrete equilibrium reproduces
    the Navier-Stokes equations to second order.
    """
    ok = np.isclose(W.sum(), 1.0, rtol=rtol)
    first = np.einsum("i,ia->a", W, E_FLOAT)
    ok &= np.allclose(first, 0.0, atol=rtol)
    second = np.einsum("i,ia,ib->ab", W, E_FLOAT, E_FLOAT)
    ok &= np.allclose(second, CS2 * np.eye(DIM), rtol=rtol, atol=rtol)
    third = np.einsum("i,ia,ib,ic->abc", W, E_FLOAT, E_FLOAT, E_FLOAT)
    ok &= np.allclose(third, 0.0, atol=rtol)
    return bool(ok)
