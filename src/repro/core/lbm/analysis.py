"""Derived flow quantities (the "characteristics" of paper Figure 3).

Each fluid node records properties such as velocity, pressure, vorticity
and shear stress.  This module computes those derived fields from the
primitive LBM state: pressure from density via the lattice equation of
state, vorticity and strain rate from central differences of the
velocity field, and kinetic energy / enstrophy integrals used by the
validation tests (e.g. Taylor-Green decay).
"""

from __future__ import annotations

import numpy as np

from repro.constants import CS2, DTYPE

__all__ = [
    "pressure",
    "noneq_stress",
    "velocity_gradient",
    "vorticity",
    "strain_rate",
    "shear_stress",
    "kinetic_energy",
    "enstrophy",
    "max_velocity_magnitude",
]


def pressure(density: np.ndarray) -> np.ndarray:
    """Lattice equation of state ``p = cs^2 * rho``."""
    return CS2 * np.asarray(density, dtype=DTYPE)


def noneq_stress(
    df: np.ndarray,
    density: np.ndarray,
    velocity: np.ndarray,
    tau: float,
) -> np.ndarray:
    """Deviatoric stress from the non-equilibrium distribution moments.

    LBM offers the viscous stress *locally* — no finite differences —
    through the second moment of the non-equilibrium part::

        sigma_ab = -(1 - 1/(2 tau)) * sum_i e_ia e_ib (f_i - f_i^eq)

    This is the "shear stress" property a fluid node records in paper
    Figure 3, computable per node from its own 19 populations.

    Parameters
    ----------
    df:
        Distributions ``(19, *S)``.
    density, velocity:
        Macroscopic moments of ``df``.
    tau:
        Relaxation time of the even (stress-carrying) moments.

    Returns
    -------
    numpy.ndarray
        Stress tensor ``(3, 3, *S)``.
    """
    from repro.core.lbm import equilibrium as _eq
    from repro.core.lbm.lattice import E_FLOAT

    feq = _eq.equilibrium(density, velocity)
    fneq = df - feq
    moment = np.einsum("ia,ib,i...->ab...", E_FLOAT, E_FLOAT, fneq)
    return -(1.0 - 0.5 / tau) * moment


def velocity_gradient(velocity: np.ndarray) -> np.ndarray:
    """Gradient tensor ``G[a, b] = d u_a / d x_b`` via periodic central differences.

    Parameters
    ----------
    velocity:
        Velocity field ``(3, Nx, Ny, Nz)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(3, 3, Nx, Ny, Nz)``.
    """
    velocity = np.asarray(velocity, dtype=DTYPE)
    grad = np.empty((3, 3) + velocity.shape[1:], dtype=DTYPE)  # backend-lint: ok (float64 diagnostics)
    for a in range(3):
        for b in range(3):
            grad[a, b] = 0.5 * (
                np.roll(velocity[a], -1, axis=b) - np.roll(velocity[a], 1, axis=b)
            )
    return grad


def vorticity(velocity: np.ndarray) -> np.ndarray:
    """Vorticity ``omega = curl(u)``, shape ``(3, Nx, Ny, Nz)``."""
    g = velocity_gradient(velocity)
    curl = np.empty_like(velocity, dtype=DTYPE)
    curl[0] = g[2, 1] - g[1, 2]
    curl[1] = g[0, 2] - g[2, 0]
    curl[2] = g[1, 0] - g[0, 1]
    return curl


def strain_rate(velocity: np.ndarray) -> np.ndarray:
    """Symmetric strain-rate tensor ``S = (G + G^T)/2``, shape ``(3,3,*S)``."""
    g = velocity_gradient(velocity)
    return 0.5 * (g + np.swapaxes(g, 0, 1))


def shear_stress(velocity: np.ndarray, density: np.ndarray, nu: float) -> np.ndarray:
    """Viscous shear-stress tensor ``sigma = 2 rho nu S``, shape ``(3,3,*S)``."""
    s = strain_rate(velocity)
    return 2.0 * nu * np.asarray(density, dtype=DTYPE)[None, None] * s


def kinetic_energy(velocity: np.ndarray, density: np.ndarray | None = None) -> float:
    """Total kinetic energy ``sum 1/2 rho |u|^2`` over the grid."""
    u_sq = np.einsum("a...,a...->...", velocity, velocity)
    if density is None:
        return float(0.5 * u_sq.sum())
    return float(0.5 * (np.asarray(density, dtype=DTYPE) * u_sq).sum())


def enstrophy(velocity: np.ndarray) -> float:
    """Total enstrophy ``sum 1/2 |curl u|^2`` over the grid."""
    w = vorticity(velocity)
    return float(0.5 * np.einsum("a...,a...->...", w, w).sum())


def max_velocity_magnitude(velocity: np.ndarray) -> float:
    """Maximum ``|u|`` over the grid; used for Mach-number stability checks."""
    u_sq = np.einsum("a...,a...->...", velocity, velocity)
    return float(np.sqrt(u_sq.max()))
