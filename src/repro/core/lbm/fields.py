"""Fluid-grid data structure (paper Figure 3).

The 3D fluid grid is a structured ``Nx x Ny x Nz`` mesh.  Each fluid node
carries a 19-component velocity distribution, macroscopic density and
velocity, and the elastic force density spread from the immersed
structure.  Following the paper, two distribution buffers are kept: the
*present* buffer ``df`` and the *new* buffer ``df_new``; kernel 9
(:func:`repro.core.kernels.copy_fluid_velocity_distribution`) copies the
new buffer back to the present buffer at the end of every time step.

The storage is structure-of-arrays with the direction axis leading
(``(19, Nx, Ny, Nz)``), which keeps each direction's field contiguous for
vectorized per-direction kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import Q, RHO0
from repro.core.backend import (
    Precision,
    backend_for,
    resolve_precision,
    state_tolerance,
)
from repro.core.lbm import equilibrium
from repro.errors import ConfigurationError

__all__ = ["FluidGrid"]


@dataclass
class FluidGrid:
    """State of the Eulerian fluid on a structured 3D mesh.

    Parameters
    ----------
    shape:
        Grid dimensions ``(Nx, Ny, Nz)``.
    tau:
        BGK relaxation time; must exceed 0.5 for a positive viscosity.

    Attributes
    ----------
    df:
        Present velocity-distribution buffer, shape ``(19, Nx, Ny, Nz)``.
    df_new:
        New (post-streaming) distribution buffer, same shape.
    density:
        Macroscopic mass density ``rho``, shape ``(Nx, Ny, Nz)``.
    velocity:
        Physical macroscopic velocity ``u`` (includes the half-step
        force correction), shape ``(3, Nx, Ny, Nz)``.  This is the
        velocity the fibers move with (kernel 8).
    velocity_shifted:
        Equilibrium (collision) velocity ``u* = u + (tau - 1/2) F / rho``
        of the velocity-shift forcing scheme; written by kernel 7 and
        consumed by the *next* step's collision (kernel 5).  Keeping the
        force coupling entirely inside kernel 7 is what makes the
        paper's three-barrier cube schedule race-free.
    force:
        Elastic force density spread from the immersed structure,
        shape ``(3, Nx, Ny, Nz)``.  Reset to zero at the start of every
        time step before spreading.
    """

    shape: tuple[int, int, int]
    tau: float = 1.0
    #: Collision operator used by kernel 5: ``"bgk"`` (paper) or ``"trt"``.
    collision_operator: str = "bgk"
    #: TRT magic number Lambda (only used when ``collision_operator="trt"``).
    #: The default 3/16 makes straight halfway bounce-back walls exact
    #: for parabolic (Poiseuille) profiles.
    trt_magic: float = 3.0 / 16.0
    #: ``True`` allocates only ``df`` (``df_new`` is ``None``): the
    #: storage layout of the in-place AA-pattern solver
    #: (:mod:`repro.core.lbm.inplace`), which streams within a single
    #: lattice and never needs the second buffer.
    single_lattice: bool = False
    #: Precision policy: a name from :data:`repro.core.backend.PRECISIONS`
    #: (``"float64"`` | ``"float32"`` | ``"mixed"``) or a
    #: :class:`~repro.core.backend.Precision` instance.  Storage dtype
    #: governs the field arrays below; compute dtype governs the scratch
    #: arena (and thereby every hot-path accumulator).  Normalized to a
    #: ``Precision`` in ``__post_init__``.
    precision: "str | Precision" = "float64"
    #: AA-pattern storage phase: 0 = ``df`` holds the natural
    #: (post-streaming) layout, 1 = ``df`` holds the AA-encoded layout
    #: written by an even step (post-collision values in the *opposite*
    #: direction slot, streaming deferred).  Always 0 for two-lattice
    #: grids.
    aa_phase: int = field(default=0, init=False, repr=False)
    df: np.ndarray = field(init=False, repr=False)
    df_new: np.ndarray | None = field(init=False, repr=False)
    density: np.ndarray = field(init=False, repr=False)
    velocity: np.ndarray = field(init=False, repr=False)
    velocity_shifted: np.ndarray = field(init=False, repr=False)
    force: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        shape = tuple(int(n) for n in self.shape)
        if len(shape) != 3 or any(n < 1 for n in shape):
            raise ConfigurationError(
                f"fluid grid shape must be three positive integers, got {self.shape}"
            )
        if not self.tau > 0.5:
            raise ConfigurationError(
                f"BGK relaxation time must be > 0.5, got {self.tau}"
            )
        from repro.core.lbm.collision import COLLISION_OPERATORS

        if self.collision_operator not in COLLISION_OPERATORS:
            raise ConfigurationError(
                f"unknown collision operator {self.collision_operator!r}; "
                f"choose from {COLLISION_OPERATORS}"
            )
        self.shape = shape
        nx, ny, nz = shape
        self.precision = resolve_precision(self.precision)
        backend = backend_for(self.precision)
        self._backend = backend
        self.df = backend.empty((Q, nx, ny, nz))
        self.df_new = None if self.single_lattice else backend.empty((Q, nx, ny, nz))
        self.density = backend.full((nx, ny, nz), RHO0)
        self.velocity = backend.zeros((3, nx, ny, nz))
        self.velocity_shifted = backend.zeros((3, nx, ny, nz))
        self.force = backend.zeros((3, nx, ny, nz))
        self._arena = None
        self.initialize_equilibrium()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def initialize_equilibrium(
        self,
        density: np.ndarray | float | None = None,
        velocity: np.ndarray | None = None,
    ) -> None:
        """Set both distribution buffers to the discrete equilibrium.

        Parameters
        ----------
        density:
            Initial density field (scalar or ``(Nx, Ny, Nz)`` array).
            Defaults to the current ``self.density``.
        velocity:
            Initial velocity field ``(3, Nx, Ny, Nz)``.  Defaults to the
            current ``self.velocity``.
        """
        if density is not None:
            self.density[...] = density
        if velocity is not None:
            self.velocity[...] = np.asarray(velocity)
        self.velocity_shifted[...] = self.velocity
        equilibrium.equilibrium(self.density, self.velocity, out=self.df)
        self.aa_phase = 0
        if self.df_new is not None:
            self.df_new[...] = self.df

    # ------------------------------------------------------------------
    # hot-path helpers
    # ------------------------------------------------------------------
    @property
    def arena(self):
        """Lazily created scratch arena for allocation-free kernels.

        Buffers live as long as the grid; the fused solver's steady
        state performs zero numpy allocations because every temporary
        it needs comes from here.
        """
        if self._arena is None:
            from repro.core.arena import ScratchArena

            # The arena carries the *compute* dtype: under the mixed
            # policy every moment/equilibrium scratch accumulates in
            # float64 even though the lattice is stored in float32.
            self._arena = ScratchArena(self.shape, dtype=self.precision.compute)
        return self._arena

    def swap_distributions(self) -> None:
        """Exchange ``df`` and ``df_new`` (two-lattice ping-pong).

        The fused solver replaces kernel 9's full-buffer copy with this
        pointer swap: after a fused step the freshly streamed state is
        already in ``df_new``, so swapping the references publishes it
        as the present buffer for free.  ``df_new`` then holds the
        *previous* step's distributions (finite, but stale).
        """
        if self.df_new is None:
            raise ConfigurationError(
                "single-lattice grid has no df_new to swap; the in-place "
                "solver streams within df and never calls this"
            )
        self.df, self.df_new = self.df_new, self.df

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    @property
    def tau_odd(self) -> float:
        """Relaxation time governing the odd (momentum) moments.

        BGK relaxes every moment with ``tau``; TRT relaxes the odd part
        with ``tau- = Lambda / (tau - 1/2) + 1/2``.  The velocity-shift
        forcing scheme must scale its shift with *this* value so that
        each step injects exactly ``F dt`` of momentum regardless of the
        collision operator.
        """
        if self.collision_operator == "trt":
            return self.trt_magic / (self.tau - 0.5) + 0.5
        return self.tau

    @property
    def num_nodes(self) -> int:
        """Total number of fluid nodes ``Nx * Ny * Nz``."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def nbytes(self) -> int:
        """Total bytes held by the field arrays (both buffers included)."""
        return (
            self.df.nbytes
            + (0 if self.df_new is None else self.df_new.nbytes)
            + self.density.nbytes
            + self.velocity.nbytes
            + self.velocity_shifted.nbytes
            + self.force.nbytes
        )

    def total_mass(self) -> float:
        """Total fluid mass, computed from the present distributions."""
        return float(self.df.sum())

    def total_momentum(self) -> np.ndarray:
        """Total fluid momentum vector from the present distributions."""
        from repro.core.lbm.lattice import E_FLOAT

        return np.einsum("ia,ixyz->a", E_FLOAT, self.df)

    def copy(self) -> "FluidGrid":
        """Deep copy of the whole fluid state."""
        clone = FluidGrid(
            self.shape,
            tau=self.tau,
            collision_operator=self.collision_operator,
            trt_magic=self.trt_magic,
            single_lattice=self.single_lattice,
            precision=self.precision,
        )
        clone.aa_phase = self.aa_phase
        clone.df[...] = self.df
        if self.df_new is not None:
            clone.df_new[...] = self.df_new
        clone.density[...] = self.density
        clone.velocity[...] = self.velocity
        clone.velocity_shifted[...] = self.velocity_shifted
        clone.force[...] = self.force
        return clone

    def state_allclose(
        self,
        other: "FluidGrid",
        rtol: float | None = None,
        atol: float | None = None,
    ) -> bool:
        """True if every field of ``other`` matches this grid within tolerance.

        Defaults resolve per precision policy (float64: ``1e-12/1e-13``,
        the historical values; single-precision storage relaxes to
        ``1e-5/1e-6``) — the loosest policy of the two grids wins, so a
        float32-vs-float64 comparison is judged at float32 resolution.
        """
        if rtol is None or atol is None:
            tols = [state_tolerance(self.precision)]
            if isinstance(other, FluidGrid):
                tols.append(state_tolerance(other.precision))
            default_rtol = max(t[0] for t in tols)
            default_atol = max(t[1] for t in tols)
            rtol = default_rtol if rtol is None else rtol
            atol = default_atol if atol is None else atol
        return (
            self.shape == other.shape
            and np.allclose(self.df, other.df, rtol=rtol, atol=atol)
            and (
                self.df_new is None
                or other.df_new is None
                or np.allclose(self.df_new, other.df_new, rtol=rtol, atol=atol)
            )
            and np.allclose(self.density, other.density, rtol=rtol, atol=atol)
            and np.allclose(self.velocity, other.velocity, rtol=rtol, atol=atol)
            and np.allclose(self.velocity_shifted, other.velocity_shifted, rtol=rtol, atol=atol)
            and np.allclose(self.force, other.force, rtol=rtol, atol=atol)
        )

    def validate_finite(self) -> None:
        """Raise :class:`~repro.errors.StabilityError` if any field has NaN/Inf."""
        from repro.errors import StabilityError

        for name in ("df", "df_new", "density", "velocity", "velocity_shifted", "force"):
            arr = getattr(self, name)
            if arr is None:  # single-lattice grid has no df_new
                continue
            if not np.isfinite(arr).all():
                raise StabilityError(
                    f"fluid field '{name}' contains non-finite values; "
                    "the simulation has become unstable (reduce forcing or "
                    "increase tau)"
                )

    def validate_stable(self, max_velocity: float = 0.5) -> None:
        """Finite check plus the lattice Mach-number limit.

        LBM is only valid well below the lattice speed of sound
        (``|u| << cs = 1/sqrt(3)``); a velocity beyond ``max_velocity``
        means the run has already left the physical regime even if all
        values are still finite.
        """
        from repro.errors import StabilityError

        self.validate_finite()
        u_sq = np.einsum("axyz,axyz->xyz", self.velocity, self.velocity)
        peak = float(np.sqrt(u_sq.max()))
        if peak > max_velocity:
            raise StabilityError(
                f"fluid velocity magnitude {peak:.3g} exceeds the lattice "
                f"Mach limit {max_velocity}; the simulation is unstable "
                "(reduce forcing/stiffness or increase tau)"
            )
