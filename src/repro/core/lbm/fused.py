"""Fused collide-and-stream sweep (kernels 5 + 6 in one lattice pass).

The sequential solver walks the full ``(19, Nx, Ny, Nz)`` lattice three
times per step for the LBM half: collision (kernel 5), streaming
(kernel 6) and the buffer copy (kernel 9).  On a memory-bound manycore
node that triples the distribution traffic.  This module performs
moments, equilibrium, collision and the periodic streaming shift in a
*single* traversal, direction by direction:

* per-node density and the ``1.5 |u|^2`` equilibrium term are computed
  once up front into arena scratch buffers;
* for each direction ``i`` the equilibrium slab is built in a reused
  scratch buffer (``e_i . u`` needs no multiplies — every D3Q19
  component is -1, 0 or +1, so it is one or two adds), the collision is
  applied *in place* on ``df[i]`` (the pre-collision values are never
  needed again), and the post-collision slab is immediately shifted
  into ``df_new[i]`` via the precomputed block-copy table of
  :func:`repro.core.lbm.streaming.periodic_shift_table`;
* callers that must see post-collision values the sweep would otherwise
  discard (bounce-back walls) register a ``capture`` callback invoked
  with each finalized post-collision slab.

The whole-lattice post-collision array and the separate ``feq`` lattice
of the unfused path simply never exist, and after warmup the sweep
performs zero numpy allocations (all scratch comes from
``fluid.arena``).  The arithmetic replicates the batch kernels
operation for operation, so the differential oracle sees no divergence
against the ``sequential`` variant for either collision operator.

Equilibrium per direction (same operation order as
:func:`repro.core.lbm.equilibrium.equilibrium`)::

    f_i^eq = w_i * rho * (4.5 (e_i.u)^2 + 3 (e_i.u) - 1.5 |u|^2 + 1)

BGK in place (same order as :func:`repro.core.lbm.collision.bgk_collide`)::

    df_i = (1 - omega) df_i + omega f_i^eq

TRT processes direction pairs ``(i, opp(i))`` together, exploiting
``e_opp(i) = -e_i`` so the squared term and the ``|u|^2`` term are
shared between the pair.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.constants import Q
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.lattice import E, OPPOSITE, W
from repro.core.lbm.streaming import periodic_shift_table

__all__ = ["fused_collide_stream"]

#: Callback receiving each finalized post-collision slab ``(i, df_i)``.
CaptureHook = Callable[[int, np.ndarray], None]

#: Nonzero lattice-velocity components per direction: ``(axis, sign)``.
_COMPONENTS: tuple[tuple[tuple[int, int], ...], ...] = tuple(
    tuple((a, int(E[i, a])) for a in range(3) if E[i, a] != 0) for i in range(Q)
)

#: TRT direction pairs ``(i, opp(i))`` with ``i < opp(i)`` (rest excluded).
_TRT_PAIRS: tuple[tuple[int, int], ...] = tuple(
    (i, int(OPPOSITE[i])) for i in range(Q) if 0 < i < OPPOSITE[i]
)


def _direction_velocity(u: np.ndarray, i: int, out: np.ndarray) -> np.ndarray:
    """``e_i . u`` without multiplications (components are -1/0/+1)."""
    (a0, s0), *rest = _COMPONENTS[i]
    if s0 > 0:
        np.copyto(out, u[a0])
    else:
        np.negative(u[a0], out=out)
    for a, s in rest:
        if s > 0:
            out += u[a]
        else:
            out -= u[a]
    return out


def _feq_direction(
    rho: np.ndarray,
    eu: np.ndarray | None,
    usq15: np.ndarray,
    w: float,
    feq: np.ndarray,
    tmp: np.ndarray,
    sign: float = 1.0,
) -> np.ndarray:
    """Equilibrium slab for one direction into ``feq`` (arena scratch).

    ``eu=None`` selects the rest direction (``e_0 = 0``).  ``sign=-1``
    evaluates the *opposite* direction from the same ``eu`` buffer
    (``e_opp.u = -e_i.u``; the squared term is shared), which is how the
    TRT pair loop avoids recomputing the dot product.
    """
    if eu is None:
        np.subtract(1.0, usq15, out=feq)
    else:
        np.multiply(eu, eu, out=feq)
        feq *= 4.5
        np.multiply(eu, 3.0 * sign, out=tmp)
        feq += tmp
        feq -= usq15
        feq += 1.0
    feq *= rho
    feq *= w
    return feq


def _moments(fluid: FluidGrid) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Density and the ``1.5 |u*|^2`` term into arena scratch buffers."""
    arena = fluid.arena
    u = fluid.velocity_shifted
    rho = arena.scalar("fused_rho")
    # Accumulate the zeroth moment at the arena's (compute) dtype: under
    # the mixed policy this sums float32 distributions in float64.
    np.sum(fluid.df, axis=0, out=rho, dtype=rho.dtype)
    usq15 = arena.scalar("fused_usq15")
    tmp = arena.scalar("fused_tmp")
    np.multiply(u[0], u[0], out=usq15)
    np.multiply(u[1], u[1], out=tmp)
    usq15 += tmp
    np.multiply(u[2], u[2], out=tmp)
    usq15 += tmp
    usq15 *= 1.5
    return rho, usq15, tmp


def _emit(
    i: int,
    post: np.ndarray,
    df_new: np.ndarray,
    table,
    capture: CaptureHook | None,
) -> None:
    """Hand the finalized slab to the capture hook, then stream it."""
    if capture is not None:
        capture(i, post)
    for dst, src in table[i]:
        df_new[(i,) + dst] = post[src]


def _fused_bgk(fluid: FluidGrid, table, capture: CaptureHook | None) -> None:
    arena = fluid.arena
    df, df_new = fluid.df, fluid.df_new
    u = fluid.velocity_shifted
    rho, usq15, tmp = _moments(fluid)
    eu = arena.scalar("fused_eu")
    feq = arena.scalar("fused_feq")
    omega = 1.0 / fluid.tau
    keep = 1.0 - omega
    for i in range(Q):
        post = df[i]
        if i == 0:
            _feq_direction(rho, None, usq15, float(W[0]), feq, tmp)
        else:
            _direction_velocity(u, i, eu)
            _feq_direction(rho, eu, usq15, float(W[i]), feq, tmp)
        post *= keep
        feq *= omega
        post += feq
        _emit(i, post, df_new, table, capture)


def _fused_trt(fluid: FluidGrid, table, capture: CaptureHook | None) -> None:
    arena = fluid.arena
    df, df_new = fluid.df, fluid.df_new
    u = fluid.velocity_shifted
    rho, usq15, tmp = _moments(fluid)
    eu = arena.scalar("fused_eu")
    feq_i = arena.scalar("fused_feq")
    feq_j = arena.scalar("fused_feq_j")
    even = arena.scalar("fused_even")
    odd = arena.scalar("fused_odd")

    tau = fluid.tau
    omega_plus = 1.0 / tau
    omega_minus = 1.0 / (fluid.trt_magic / (tau - 0.5) + 0.5)

    # Rest direction: the odd half vanishes, leaving a pure BGK relax
    # with omega+ (bit-identical to the batch TRT path, where
    # even = 0.5*(diff + diff) = diff and odd = 0 exactly).
    post = df[0]
    _feq_direction(rho, None, usq15, float(W[0]), feq_i, tmp)
    np.subtract(post, feq_i, out=feq_i)
    feq_i *= omega_plus
    post -= feq_i
    _emit(0, post, df_new, table, capture)

    for i, j in _TRT_PAIRS:
        _direction_velocity(u, i, eu)
        _feq_direction(rho, eu, usq15, float(W[i]), feq_i, tmp)
        _feq_direction(rho, eu, usq15, float(W[j]), feq_j, tmp, sign=-1.0)
        # Reuse the feq buffers for the non-equilibrium parts.
        np.subtract(df[i], feq_i, out=feq_i)
        np.subtract(df[j], feq_j, out=feq_j)
        np.add(feq_i, feq_j, out=even)
        even *= 0.5
        even *= omega_plus
        np.subtract(feq_i, feq_j, out=odd)
        odd *= 0.5
        odd *= omega_minus
        post_i, post_j = df[i], df[j]
        post_i -= even
        post_i -= odd
        post_j -= even
        post_j += odd
        _emit(i, post_i, df_new, table, capture)
        _emit(j, post_j, df_new, table, capture)


def fused_collide_stream(
    fluid: FluidGrid, capture: CaptureHook | None = None
) -> None:
    """Collide ``fluid.df`` in place and stream into ``fluid.df_new``.

    Equivalent to kernel 5 followed by kernel 6 (periodic wrap), but in
    one traversal of the distribution lattice and — after warmup — with
    zero numpy allocations.  Physical boundaries still need repairing
    afterwards; boundaries that read post-collision values declare them
    via :meth:`~repro.core.lbm.boundaries.Boundary.post_dependencies`
    and receive the face layers captured by ``capture``.

    Parameters
    ----------
    fluid:
        The fluid grid; ``df`` is left holding the post-collision state
        (as after the unfused kernel 5) and ``df_new`` the streamed one.
    capture:
        Optional hook ``capture(i, df_i)`` called once per direction
        with the finalized post-collision slab before it is streamed.
    """
    table = periodic_shift_table(fluid.shape)
    if fluid.collision_operator == "trt":
        _fused_trt(fluid, table, capture)
    else:
        _fused_bgk(fluid, table, capture)
