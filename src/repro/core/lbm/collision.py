"""BGK collision with Guo forcing (paper kernel 5, ``compute_fluid_collision``).

The single-relaxation-time (BGK) collision relaxes the distributions
toward the local equilibrium::

    f_i <- f_i - (f_i - f_i^eq) / tau + S_i * dt

The source term ``S_i`` couples the elastic force density ``F`` spread
from the immersed structure into the fluid, using the second-order
scheme of Guo, Zheng & Shi (2002)::

    S_i = (1 - 1/(2 tau)) w_i [ 3 (e_i - u) + 9 (e_i . u) e_i ] . F

The macroscopic velocity entering both the equilibrium and the source
term already includes the half-step force correction (see
:func:`repro.core.lbm.macroscopic.compute_velocity`).
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT, DTYPE, Q
from repro.core.lbm import equilibrium as _eq
from repro.core.lbm.lattice import E_FLOAT, OPPOSITE, W

__all__ = ["bgk_collide", "trt_collide", "collide", "guo_source_term", "COLLISION_OPERATORS"]


def guo_source_term(
    velocity: np.ndarray,
    force: np.ndarray,
    tau: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Guo forcing source term ``S_i`` for every node.

    Parameters
    ----------
    velocity:
        Macroscopic velocity ``(3, *S)`` (with half-force correction).
    force:
        Body-force density ``(3, *S)``.
    tau:
        BGK relaxation time.

    Returns
    -------
    numpy.ndarray
        ``S_i`` of shape ``(19, *S)`` (per unit time; multiply by ``dt``
        when adding to the distributions).
    """
    velocity = np.asarray(velocity)
    if velocity.dtype.kind != "f":
        velocity = velocity.astype(DTYPE)
    force = np.asarray(force)
    if force.dtype.kind != "f":
        force = force.astype(DTYPE)
    spatial = velocity.shape[1:]
    if out is None:
        out = np.empty(
            (Q,) + spatial, dtype=np.result_type(velocity, force)
        )

    prefactor = (1.0 - 0.5 / tau) * W  # shape (19,)
    eu = np.tensordot(E_FLOAT, velocity, axes=([1], [0]))  # (19, *S)
    ef = np.tensordot(E_FLOAT, force, axes=([1], [0]))  # (19, *S)
    uf = np.einsum("a...,a...->...", velocity, force)  # (*S,)

    # [3 (e_i - u) + 9 (e_i.u) e_i] . F  =  3 e_i.F - 3 u.F + 9 (e_i.u)(e_i.F)
    np.multiply(eu, ef, out=out)
    out *= 9.0
    out += 3.0 * ef
    out -= 3.0 * uf
    out *= prefactor.reshape((Q,) + (1,) * len(spatial))
    return out


def bgk_collide(
    df: np.ndarray,
    density: np.ndarray,
    velocity: np.ndarray,
    tau: float,
    force: np.ndarray | None = None,
    out: np.ndarray | None = None,
    feq_scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the BGK collision (plus optional Guo forcing) to ``df``.

    Parameters
    ----------
    df:
        Pre-collision distributions, shape ``(19, *S)``.
    density, velocity:
        Macroscopic moments of ``df`` (velocity must already include the
        half-step force correction when ``force`` is given).
    tau:
        Relaxation time (> 0.5).
    force:
        Optional body-force density ``(3, *S)``.
    out:
        Optional output array; defaults to colliding in place into ``df``.
    feq_scratch:
        Optional scratch buffer of shape ``(19, *S)`` reused for the
        equilibrium to avoid per-step allocation.

    Returns
    -------
    numpy.ndarray
        Post-collision distributions (``out`` or ``df``).
    """
    feq = _eq.equilibrium(density, velocity, out=feq_scratch)
    omega = 1.0 / tau
    if out is None:
        out = df
    # out = df - omega * (df - feq)  computed without temporaries:
    # out = (1 - omega) * df + omega * feq
    if out is df:
        df *= 1.0 - omega
        feq *= omega
        df += feq
        # restore feq scale in case caller reuses the scratch (cheap and safe)
        if feq_scratch is not None:
            feq *= tau
    else:
        np.multiply(df, 1.0 - omega, out=out)
        out += omega * feq

    if force is not None:
        source = guo_source_term(velocity, force, tau)
        source *= DT
        out += source
    return out


def trt_collide(
    df: np.ndarray,
    density: np.ndarray,
    velocity: np.ndarray,
    tau: float,
    magic_lambda: float = 3.0 / 16.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Two-relaxation-time (TRT) collision (Ginzburg et al.).

    The populations are split into even and odd parts about the
    direction inversion ``i -> opp(i)``::

        f_i^+ = (f_i + f_opp(i)) / 2      relaxed with omega+ = 1/tau
        f_i^- = (f_i - f_opp(i)) / 2      relaxed with omega-

    ``omega+`` sets the shear viscosity exactly as BGK's ``1/tau``;
    ``omega-`` is the free parameter, fixed through the *magic number*
    ``Lambda = (1/omega+ - 1/2)(1/omega- - 1/2)``.  With
    ``Lambda = 3/16`` straight halfway bounce-back walls become exact
    for parabolic profiles, removing BGK's viscosity-dependent slip
    error (Ginzburg & d'Humieres).

    Mass and momentum are conserved identically to BGK (the even part
    carries density, the odd part momentum, and both relaxations leave
    the conserved moments of the equilibrium difference untouched).
    """
    if magic_lambda <= 0.0:
        raise ValueError(f"magic_lambda must be positive, got {magic_lambda}")
    tau_minus = magic_lambda / (tau - 0.5) + 0.5
    omega_plus = 1.0 / tau
    omega_minus = 1.0 / tau_minus

    feq = _eq.equilibrium(density, velocity)
    diff = df - feq
    diff_rev = diff[OPPOSITE]
    even = 0.5 * (diff + diff_rev)
    odd = 0.5 * (diff - diff_rev)
    if out is None:
        out = df
    if out is not df:
        out[...] = df
    out -= omega_plus * even
    out -= omega_minus * odd
    return out


#: Names of the available collision operators.
COLLISION_OPERATORS: tuple[str, ...] = ("bgk", "trt")


def collide(
    df: np.ndarray,
    density: np.ndarray,
    velocity: np.ndarray,
    tau: float,
    operator: str = "bgk",
    magic_lambda: float = 3.0 / 16.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch to the configured collision operator (kernel 5 body)."""
    if operator == "bgk":
        return bgk_collide(df, density, velocity, tau, out=out)
    if operator == "trt":
        return trt_collide(df, density, velocity, tau, magic_lambda=magic_lambda, out=out)
    raise ValueError(
        f"unknown collision operator {operator!r}; choose from {COLLISION_OPERATORS}"
    )
