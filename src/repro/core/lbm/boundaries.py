"""Physical boundary conditions for the LBM fluid.

Streaming (:mod:`repro.core.lbm.streaming`) wraps periodically; each
boundary-condition object then *repairs* the distributions on its face
after streaming.  All conditions operate on a face of the box, selected
by ``axis`` (0 = x, 1 = y, 2 = z) and ``side`` (``"low"`` for the 0-index
face, ``"high"`` for the last-index face).

Implemented conditions
----------------------
:class:`PeriodicBoundary`
    No-op marker; the default wrap-around behaviour.
:class:`BounceBackWall`
    Halfway bounce-back no-slip wall; with a nonzero ``wall_velocity`` it
    becomes a moving wall (Ladd momentum correction) usable as a simple
    velocity inlet for tunnel flows (paper Figure 7).
:class:`OutflowBoundary`
    Zero-gradient outflow: incoming populations are copied from the
    adjacent interior layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DTYPE, RHO0
from repro.core.lbm.lattice import E, OPPOSITE, Q, W
from repro.errors import ConfigurationError

__all__ = [
    "Boundary",
    "PeriodicBoundary",
    "BounceBackWall",
    "OutflowBoundary",
    "face_index",
]

_SIDES = ("low", "high")


def face_index(axis: int, side: str, shape: tuple[int, int, int]) -> tuple:
    """Index tuple selecting the boundary layer of ``axis``/``side``."""
    if axis not in (0, 1, 2):
        raise ConfigurationError(f"axis must be 0, 1 or 2, got {axis}")
    if side not in _SIDES:
        raise ConfigurationError(f"side must be 'low' or 'high', got {side!r}")
    layer = 0 if side == "low" else shape[axis] - 1
    idx: list = [slice(None)] * 3
    idx[axis] = layer
    return tuple(idx)


@dataclass
class Boundary:
    """Base class for face boundary conditions.

    Subclasses implement :meth:`apply`, called once per time step after
    streaming with the post-collision buffer ``df_post`` (source of the
    stream) and the streamed buffer ``df_new`` (to repair in place).
    """

    axis: int
    side: str

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ConfigurationError(f"axis must be 0, 1 or 2, got {self.axis}")
        if self.side not in _SIDES:
            raise ConfigurationError(
                f"side must be 'low' or 'high', got {self.side!r}"
            )

    def incoming_directions(self) -> np.ndarray:
        """Directions whose velocity points from this face into the domain."""
        component = E[:, self.axis]
        if self.side == "low":
            return np.nonzero(component > 0)[0]
        return np.nonzero(component < 0)[0]

    def apply(self, df_post: np.ndarray, df_new: np.ndarray) -> None:
        raise NotImplementedError

    # -- fused-sweep protocol ------------------------------------------
    def post_dependencies(self) -> tuple[int, ...]:
        """Directions whose *post-collision* face layer this boundary reads.

        The fused collide-and-stream sweep never materializes the full
        post-collision lattice, so boundaries that read ``df_post`` (like
        bounce-back walls) declare the directions they need here; the
        fused solver captures just those face layers during the sweep and
        hands them to :meth:`apply_fused`.
        """
        return ()

    def apply_fused(
        self, post_faces: dict[int, np.ndarray], df_new: np.ndarray
    ) -> None:
        """Repair ``df_new`` using captured post-collision face layers.

        ``post_faces`` maps each direction from :meth:`post_dependencies`
        to the post-collision values on this boundary's face.  The
        default covers boundaries that never read ``df_post``.
        """
        self.apply(None, df_new)  # type: ignore[arg-type]

    # -- in-place AA-pattern protocol ----------------------------------
    def apply_aa_even(
        self, post_faces: dict[int, np.ndarray], df: np.ndarray
    ) -> None:
        """Repair an *AA-encoded* lattice after an even in-place step.

        After :func:`repro.core.lbm.inplace.aa_even_collide_swap` the
        streaming is deferred: the virtual post-streaming value
        ``f_i(x, t+1)`` lives at storage location
        ``df[opp(i)](x - e_i)`` (periodic wrap).  A repair that the
        two-lattice path writes to ``df_new[i]`` on this face must
        therefore land on the *opposite* face of the axis, tangentially
        shifted by ``-e_i`` — a pure index permutation, so the repaired
        virtual state is bit-identical to the sequential one.

        Boundary types that predate the in-place variant fail loudly
        here instead of silently skipping the repair.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the AA-pattern "
            "even-phase repair; variant='inplace' cannot use it"
        )


@dataclass
class PeriodicBoundary(Boundary):
    """Periodic face; streaming already handled it, so ``apply`` is a no-op."""

    def apply(self, df_post: np.ndarray, df_new: np.ndarray) -> None:  # noqa: D102
        return

    def apply_aa_even(
        self, post_faces: dict[int, np.ndarray], df: np.ndarray
    ) -> None:
        """The deferred wrap of the odd step's pull reads is periodic too."""
        return


@dataclass
class BounceBackWall(Boundary):
    """Halfway bounce-back wall, optionally moving with ``wall_velocity``.

    For every direction ``i`` entering the domain at the wall layer::

        f_i(x_b, t+1) = f_opp(i)^post(x_b, t) + 6 w_i rho0 (e_i . u_w)

    The correction term (Ladd 1994) imparts the wall's tangential
    momentum, which turns the wall into a simple velocity inlet — the
    mechanism our tunnel-flow example uses to drive the flow past the
    flexible sheet.
    """

    wall_velocity: tuple[float, float, float] = (0.0, 0.0, 0.0)
    wall_density: float = RHO0

    def apply(self, df_post: np.ndarray, df_new: np.ndarray) -> None:  # noqa: D102
        shape = df_post.shape[1:]
        idx = face_index(self.axis, self.side, shape)
        u_w = np.asarray(self.wall_velocity, dtype=DTYPE)
        moving = bool(np.any(u_w != 0.0))
        for i in self.incoming_directions():
            value = df_post[(OPPOSITE[i],) + idx]
            if moving:
                value = value + 6.0 * W[i] * self.wall_density * float(E[i] @ u_w)
            df_new[(i,) + idx] = value

    def post_dependencies(self) -> tuple[int, ...]:  # noqa: D102
        return tuple(int(OPPOSITE[i]) for i in self.incoming_directions())

    def apply_fused(
        self, post_faces: dict[int, np.ndarray], df_new: np.ndarray
    ) -> None:
        """Bounce back from captured face layers, allocation-free.

        Writing the captured layer first and adding the scalar Ladd
        correction in place matches :meth:`apply` bit-for-bit while
        avoiding the temporary it creates for moving walls.
        """
        shape = df_new.shape[1:]
        idx = face_index(self.axis, self.side, shape)
        u_w = np.asarray(self.wall_velocity, dtype=DTYPE)
        moving = bool(np.any(u_w != 0.0))
        for i in self.incoming_directions():
            target = df_new[(i,) + idx]
            target[...] = post_faces[int(OPPOSITE[i])]
            if moving:
                target += 6.0 * W[i] * self.wall_density * float(E[i] @ u_w)

    def apply_aa_even(
        self, post_faces: dict[int, np.ndarray], df: np.ndarray
    ) -> None:
        """Bounce back through the AA encoding (even-phase repair).

        The reflected value for incoming direction ``i`` at boundary
        cell ``x_b`` is the captured post-collision face of ``opp(i)``
        plus the scalar Ladd correction — same arithmetic as
        :meth:`apply_fused`.  It is then written where the virtual
        ``f_i(x_b, t+1)`` is stored: slot ``opp(i)`` on the face layer
        ``x_axis - e_i`` (wrapping to the opposite face of the axis),
        with the face rolled by the tangential components of ``-e_i``.
        Rolls and the layer move are permutations, so the repaired
        virtual state matches the two-lattice repair bit for bit.
        """
        shape = df.shape[1:]
        n = shape[self.axis]
        idx = face_index(self.axis, self.side, shape)
        boundary_layer = 0 if self.side == "low" else n - 1
        face_axes = tuple(a for a in range(3) if a != self.axis)
        u_w = np.asarray(self.wall_velocity, dtype=DTYPE)
        moving = bool(np.any(u_w != 0.0))
        for i in self.incoming_directions():
            e = E[i]
            value = post_faces[int(OPPOSITE[i])].copy()
            if moving:
                value += 6.0 * W[i] * self.wall_density * float(E[i] @ u_w)
            for pos, a in enumerate(face_axes):
                if e[a]:
                    value = np.roll(value, -int(e[a]), axis=pos)
            target = list(idx)
            target[self.axis] = (boundary_layer - int(e[self.axis])) % n
            df[(int(OPPOSITE[i]),) + tuple(target)] = value


@dataclass
class OutflowBoundary(Boundary):
    """Zero-gradient outflow: copy incoming populations from the interior.

    ``f_i(x_b, t+1) = f_i(x_b - n, t+1)`` where ``n`` is the outward
    normal, i.e. the unknown populations are extrapolated (order 0) from
    the neighbouring interior layer.
    """

    def apply(self, df_post: np.ndarray, df_new: np.ndarray) -> None:  # noqa: D102
        shape = df_new.shape[1:]
        if shape[self.axis] < 2:
            raise ConfigurationError(
                "outflow boundary needs at least two layers along its axis"
            )
        boundary_idx = face_index(self.axis, self.side, shape)
        interior: list = list(boundary_idx)
        interior[self.axis] = 1 if self.side == "low" else shape[self.axis] - 2
        interior_idx = tuple(interior)
        for i in self.incoming_directions():
            df_new[(i,) + boundary_idx] = df_new[(i,) + interior_idx]

    def apply_aa_even(
        self, post_faces: dict[int, np.ndarray], df: np.ndarray
    ) -> None:
        """Zero-gradient outflow through the AA encoding.

        Copying the virtual ``f_i`` from the interior layer to the
        boundary layer shifts *both* storage locations by the same
        ``-e_i``, so the tangential rolls cancel and the repair is a
        direct storage layer copy in slot ``opp(i)``: from layer
        ``interior - e_axis`` to layer ``boundary - e_axis`` (wrapped).
        Reading the live lattice (not the captured faces) sees repairs
        already applied by earlier boundaries, exactly like the
        two-lattice path's reads of ``df_new``.
        """
        shape = df.shape[1:]
        n = shape[self.axis]
        if n < 2:
            raise ConfigurationError(
                "outflow boundary needs at least two layers along its axis"
            )
        boundary_layer = 0 if self.side == "low" else n - 1
        interior_layer = 1 if self.side == "low" else n - 2
        template = list(face_index(self.axis, self.side, shape))
        for i in self.incoming_directions():
            s = int(E[i][self.axis])
            target = list(template)
            target[self.axis] = (boundary_layer - s) % n
            source = list(template)
            source[self.axis] = (interior_layer - s) % n
            slot = int(OPPOSITE[i])
            df[(slot,) + tuple(target)] = df[(slot,) + tuple(source)]


def validate_boundaries(boundaries: list[Boundary]) -> None:
    """Reject duplicate face assignments."""
    seen: set[tuple[int, str]] = set()
    for b in boundaries:
        key = (b.axis, b.side)
        if key in seen:
            raise ConfigurationError(
                f"multiple boundary conditions assigned to axis={b.axis} side={b.side!r}"
            )
        seen.add(key)
