"""Streaming step (paper kernel 6, ``stream_fluid_velocity_distribution``).

After collision, the post-collision distribution of every fluid node is
propagated (push-streamed) to its 18 immediate neighbours along the
lattice directions of Figure 2; the rest population stays in place.
Periodic wrap-around is built in; non-periodic physical boundaries are
corrected afterwards by the boundary-condition objects in
:mod:`repro.core.lbm.boundaries`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import Q
from repro.core.lbm.lattice import E

__all__ = ["stream", "stream_direction", "shift_slices"]


def stream_direction(field: np.ndarray, direction: int, out: np.ndarray) -> None:
    """Push-stream one direction's field by its lattice velocity.

    ``out[x + e] = field[x]`` with periodic wrap, i.e. a cyclic shift of
    ``field`` by ``E[direction]``.
    """
    ex, ey, ez = (int(c) for c in E[direction])
    if ex == 0 and ey == 0 and ez == 0:
        out[...] = field
        return
    out[...] = np.roll(field, shift=(ex, ey, ez), axis=(0, 1, 2))


def stream(df_post: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Stream all 19 directions from ``df_post`` into ``out``.

    Parameters
    ----------
    df_post:
        Post-collision distributions, shape ``(19, Nx, Ny, Nz)``.
    out:
        Destination buffer of the same shape (the grid's ``df_new``).
    """
    if df_post.shape != out.shape:
        raise ValueError(
            f"source shape {df_post.shape} != destination shape {out.shape}"
        )
    for i in range(Q):
        stream_direction(df_post[i], i, out[i])
    return out


def shift_slices(extent: int, shift: int) -> tuple[slice, slice]:
    """Source/destination slice pair realizing a non-periodic shift.

    Returns ``(src, dst)`` such that ``dst_array[dst] = src_array[src]``
    moves data by ``shift`` along an axis of length ``extent`` without
    wrap-around.  Used by the cube-based solver to split a periodic
    stream into an interior part and cross-cube face transfers.
    """
    if abs(shift) >= extent:
        raise ValueError(f"|shift| must be < extent ({shift} vs {extent})")
    if shift > 0:
        return slice(0, extent - shift), slice(shift, extent)
    if shift < 0:
        return slice(-shift, extent), slice(0, extent + shift)
    return slice(0, extent), slice(0, extent)
