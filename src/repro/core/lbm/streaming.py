"""Streaming step (paper kernel 6, ``stream_fluid_velocity_distribution``).

After collision, the post-collision distribution of every fluid node is
propagated (push-streamed) to its 18 immediate neighbours along the
lattice directions of Figure 2; the rest population stays in place.
Periodic wrap-around is built in; non-periodic physical boundaries are
corrected afterwards by the boundary-condition objects in
:mod:`repro.core.lbm.boundaries`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import Q
from repro.core.lbm.lattice import E

__all__ = [
    "stream",
    "stream_direction",
    "shift_slices",
    "periodic_shift_table",
]

#: Slice pair ``(dst, src)`` realizing one contiguous block of a shift.
_BlockPair = tuple[tuple[slice, slice, slice], tuple[slice, slice, slice]]

#: grid shape -> per-direction tuple of (dst, src) block pairs.  A cyclic
#: shift by ``E[i]`` decomposes into at most 8 contiguous block copies
#: (bulk/wrap per axis); precomputing them once per grid shape removes
#: both the per-call slice arithmetic and the full temporary that
#: ``np.roll`` would allocate on every direction of every step.
_SHIFT_TABLE_CACHE: dict[tuple[int, int, int], tuple[tuple[_BlockPair, ...], ...]] = {}


def _axis_pieces(extent: int, shift: int) -> list[tuple[slice, slice]]:
    """``(dst, src)`` slice pairs covering a cyclic shift along one axis."""
    s = shift % extent
    if s == 0:
        return [(slice(0, extent), slice(0, extent))]
    return [
        (slice(s, extent), slice(0, extent - s)),  # bulk
        (slice(0, s), slice(extent - s, extent)),  # wrap-around
    ]


def periodic_shift_table(
    grid_shape: tuple[int, int, int],
) -> tuple[tuple[_BlockPair, ...], ...]:
    """Per-direction block-copy plans for a periodic push-stream.

    Entry ``i`` is a tuple of ``(dst, src)`` 3-tuple-of-slice pairs such
    that ``out[dst] = field[src]`` over all pairs realizes the cyclic
    shift of ``field`` by ``E[i]``.  Tables are cached per grid shape
    for the lifetime of the process (they are tiny and immutable).
    """
    key = tuple(int(n) for n in grid_shape)
    table = _SHIFT_TABLE_CACHE.get(key)
    if table is None:
        directions = []
        for i in range(Q):
            pieces = [_axis_pieces(key[a], int(E[i, a])) for a in range(3)]
            pairs = tuple(
                ((px[0], py[0], pz[0]), (px[1], py[1], pz[1]))
                for px in pieces[0]
                for py in pieces[1]
                for pz in pieces[2]
            )
            directions.append(pairs)
        table = tuple(directions)
        _SHIFT_TABLE_CACHE[key] = table
    return table


def stream_direction(field: np.ndarray, direction: int, out: np.ndarray) -> None:
    """Push-stream one direction's field by its lattice velocity.

    ``out[x + e] = field[x]`` with periodic wrap, i.e. a cyclic shift of
    ``field`` by ``E[direction]``, realized as direct block copies into
    ``out`` (no intermediate array).
    """
    table = periodic_shift_table(field.shape)
    for dst, src in table[direction]:
        out[dst] = field[src]


def stream(df_post: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Stream all 19 directions from ``df_post`` into ``out``.

    Parameters
    ----------
    df_post:
        Post-collision distributions, shape ``(19, Nx, Ny, Nz)``.
    out:
        Destination buffer of the same shape (the grid's ``df_new``).
    """
    if df_post.shape != out.shape:
        raise ValueError(
            f"source shape {df_post.shape} != destination shape {out.shape}"
        )
    table = periodic_shift_table(df_post.shape[1:])
    for i in range(Q):
        for dst, src in table[i]:
            out[(i,) + dst] = df_post[(i,) + src]
    return out


def shift_slices(extent: int, shift: int) -> tuple[slice, slice]:
    """Source/destination slice pair realizing a non-periodic shift.

    Returns ``(src, dst)`` such that ``dst_array[dst] = src_array[src]``
    moves data by ``shift`` along an axis of length ``extent`` without
    wrap-around.  Used by the cube-based solver to split a periodic
    stream into an interior part and cross-cube face transfers.
    """
    if abs(shift) >= extent:
        raise ValueError(f"|shift| must be < extent ({shift} vs {extent})")
    if shift > 0:
        return slice(0, extent - shift), slice(shift, extent)
    if shift < 0:
        return slice(-shift, extent), slice(0, extent + shift)
    return slice(0, extent), slice(0, extent)
