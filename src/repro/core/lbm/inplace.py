"""Single-lattice in-place AA-pattern collide-and-stream (``variant="inplace"``).

The fused variant (PR 3) already collapses kernels 5 + 6 + 9 into one
traversal, but still carries *two* full D3Q19 lattices (``df`` /
``df_new``) and a pointer swap — the dominant allocation of every
variant.  Following the memory-aware AA-pattern formulation (Bailey et
al. 2009; Fu & Song's memory-aware LBM follow-up, arXiv:2208.05429),
this module streams **within a single lattice**, alternating two phase
kernels that each advance exactly one time step:

Even step (``aa_phase`` 0 -> 1)
    The lattice holds the natural (post-streaming) layout.  Collide in
    place and write each post-collision slab into the *opposite*
    direction's slot of the same cell (a register swap, no neighbour
    traffic); streaming is deferred.  The storage afterwards is
    *AA-encoded*::

        df[opp(i)](x) = f_i^post(x)

    so the natural post-streaming value of the step is the virtual
    field ``f_i(x, t+1) = df[opp(i)](x - e_i)``.

Odd step (``aa_phase`` 1 -> 0)
    Gather each direction's virtual pre-collision value with a pull
    read (``df[opp(i)]`` shifted by ``e_i``), collide in scratch, and
    push-stream the post-collision slab to ``x + e_i`` — which lands
    the lattice back in the natural layout.  Reads and writes of a
    direction pair ``(i, opp(i))`` touch only that pair's two slots, so
    the sweep never overwrites a value a later pair still needs.

Every arithmetic operation replicates :mod:`repro.core.lbm.fused`
operation for operation (the moment reductions replicate the
accumulation order of ``np.sum`` / the momentum GEMM slab by slab), so
the differential oracle sees **zero divergence** against ``sequential``
— K in-place steps equal K two-lattice steps bit for bit, for even and
odd K alike.  The payoff is the memory footprint: ``df_new`` and the
kernel-9 copy do not exist, halving the lattice working set
(:mod:`repro.machine.workload` layout ``"inplace"``).

Boundary conditions interact with the two phases differently: after an
odd step the lattice is natural and the existing
:meth:`~repro.core.lbm.boundaries.Boundary.apply_fused` protocol
applies unchanged; after an even step repairs must be written *through
the encoding* — see
:meth:`~repro.core.lbm.boundaries.Boundary.apply_aa_even`.  Both phases
capture post-collision face layers for
:meth:`~repro.core.lbm.boundaries.Boundary.post_dependencies` during
the sweep, before any repair can clobber them.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT, Q
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.fused import (
    CaptureHook,
    _COMPONENTS,
    _TRT_PAIRS,
    _direction_velocity,
    _feq_direction,
    _moments,
)
from repro.core.lbm.lattice import OPPOSITE, W
from repro.core.lbm.streaming import periodic_shift_table

__all__ = [
    "aa_even_collide_swap",
    "aa_odd_collide_stream",
    "aa_gather_direction",
    "aa_decode",
    "decoded_fluid",
    "update_velocity_fields_aa",
]

#: Direction pairs ``(i, opp(i))`` with ``i < opp(i)`` (rest excluded).
#: The even step's register swap and the odd step's pull reads are both
#: defined pair-wise, for BGK and TRT alike.
_PAIRS = _TRT_PAIRS


def aa_gather_direction(
    df: np.ndarray, i: int, out: np.ndarray, table=None
) -> np.ndarray:
    """Natural (virtual) slab ``f_i`` from an AA-encoded lattice.

    ``out(x) = df[opp(i)](x - e_i)`` with periodic wrap — the pull read
    that undoes the even step's deferred streaming for one direction.
    The hot kernels pass the grid's ``periodic_shift_table`` explicitly
    so the per-direction loop stays allocation-free (resolving the table
    from ``df.shape`` builds a fresh shape tuple every call).
    """
    if table is None:
        table = periodic_shift_table(df.shape[1:])
    src_slab = df[OPPOSITE[i]]
    for dst, src in table[i]:
        out[dst] = src_slab[src]
    return out


def aa_decode(df_encoded: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Full natural lattice from an AA-encoded one (allocates unless ``out``)."""
    if out is None:
        out = np.empty_like(df_encoded)
    for i in range(Q):
        aa_gather_direction(df_encoded, i, out[i])
    return out


def decoded_fluid(fluid: FluidGrid) -> FluidGrid:
    """The grid's state in the natural layout, decoding if mid AA-cycle.

    At phase 0 the single lattice *is* natural and the live grid is
    returned; at phase 1 a regular two-lattice :class:`FluidGrid` copy
    is built (``df_new`` seeded with the decoded distributions, as after
    a sequential step) — the same gather-a-copy contract the cube and
    distributed variants use for ``Simulation.fluid``.
    """
    if fluid.aa_phase == 0:
        return fluid
    clone = FluidGrid(
        fluid.shape,
        tau=fluid.tau,
        collision_operator=fluid.collision_operator,
        trt_magic=fluid.trt_magic,
        precision=fluid.precision,
    )
    aa_decode(fluid.df, out=clone.df)
    clone.df_new[...] = clone.df
    clone.density[...] = fluid.density
    clone.velocity[...] = fluid.velocity
    clone.velocity_shifted[...] = fluid.velocity_shifted
    clone.force[...] = fluid.force
    return clone


def _require_phase(fluid: FluidGrid, phase: int, kernel: str) -> None:
    if fluid.aa_phase != phase:
        raise ValueError(
            f"{kernel} requires aa_phase={phase} but the grid is at "
            f"aa_phase={fluid.aa_phase}; even and odd kernels must alternate"
        )


# ----------------------------------------------------------------------
# even step: collide in place + opposite-direction register swap
# ----------------------------------------------------------------------
def _aa_even_bgk(fluid: FluidGrid, capture: CaptureHook | None) -> None:
    arena = fluid.arena
    df = fluid.df
    u = fluid.velocity_shifted
    rho, usq15, tmp = _moments(fluid)
    eu = arena.scalar("fused_eu")
    feq = arena.scalar("fused_feq")
    swap = arena.scalar("aa_swap")
    omega = 1.0 / fluid.tau
    keep = 1.0 - omega

    # Rest direction is its own opposite: collide in place, no swap.
    post = df[0]
    _feq_direction(rho, None, usq15, float(W[0]), feq, tmp)
    post *= keep
    feq *= omega
    post += feq
    if capture is not None:
        capture(0, post)

    for i, j in _PAIRS:
        # post_i = (1-omega) df_i + omega feq_i, landing in slot j (and
        # vice versa).  Same multiply-then-add sequence as the fused
        # kernel, just with the first product written out of place.
        _direction_velocity(u, i, eu)
        _feq_direction(rho, eu, usq15, float(W[i]), feq, tmp)
        np.multiply(df[i], keep, out=swap)
        feq *= omega
        swap += feq
        _direction_velocity(u, j, eu)
        _feq_direction(rho, eu, usq15, float(W[j]), feq, tmp)
        np.multiply(df[j], keep, out=df[i])
        feq *= omega
        df[i] += feq
        df[j][...] = swap
        if capture is not None:
            capture(i, df[j])
            capture(j, df[i])


def _aa_even_trt(fluid: FluidGrid, capture: CaptureHook | None) -> None:
    arena = fluid.arena
    df = fluid.df
    u = fluid.velocity_shifted
    rho, usq15, tmp = _moments(fluid)
    eu = arena.scalar("fused_eu")
    feq_i = arena.scalar("fused_feq")
    feq_j = arena.scalar("fused_feq_j")
    even = arena.scalar("fused_even")
    odd = arena.scalar("fused_odd")
    swap = arena.scalar("aa_swap")

    tau = fluid.tau
    omega_plus = 1.0 / tau
    omega_minus = 1.0 / (fluid.trt_magic / (tau - 0.5) + 0.5)

    post = df[0]
    _feq_direction(rho, None, usq15, float(W[0]), feq_i, tmp)
    np.subtract(post, feq_i, out=feq_i)
    feq_i *= omega_plus
    post -= feq_i
    if capture is not None:
        capture(0, post)

    for i, j in _PAIRS:
        _direction_velocity(u, i, eu)
        _feq_direction(rho, eu, usq15, float(W[i]), feq_i, tmp)
        _feq_direction(rho, eu, usq15, float(W[j]), feq_j, tmp, sign=-1.0)
        np.subtract(df[i], feq_i, out=feq_i)
        np.subtract(df[j], feq_j, out=feq_j)
        np.add(feq_i, feq_j, out=even)
        even *= 0.5
        even *= omega_plus
        np.subtract(feq_i, feq_j, out=odd)
        odd *= 0.5
        odd *= omega_minus
        # post_i = df_i - even - odd -> slot j; post_j = df_j - even + odd
        # -> slot i (same subtraction order as the fused pair update).
        np.subtract(df[i], even, out=swap)
        swap -= odd
        np.subtract(df[j], even, out=df[i])
        df[i] += odd
        df[j][...] = swap
        if capture is not None:
            capture(i, df[j])
            capture(j, df[i])


def aa_even_collide_swap(
    fluid: FluidGrid, capture: CaptureHook | None = None
) -> None:
    """Even AA step: collide the natural lattice in place, swap slots.

    Advances one full time step with zero neighbour traffic; the
    lattice is left AA-encoded (``aa_phase`` 1) with streaming
    deferred to the next odd step's pull reads.  ``capture(i, post_i)``
    receives each finalized post-collision slab (stored in slot
    ``opp(i)``) before any boundary repair runs.
    """
    _require_phase(fluid, 0, "aa_even_collide_swap")
    if fluid.collision_operator == "trt":
        _aa_even_trt(fluid, capture)
    else:
        _aa_even_bgk(fluid, capture)
    fluid.aa_phase = 1


# ----------------------------------------------------------------------
# odd step: pull-swap gather, collide in scratch, push-stream
# ----------------------------------------------------------------------
def _aa_odd_moments(
    fluid: FluidGrid, table
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Density + ``1.5 |u*|^2`` for an AA-encoded lattice.

    The gathered slabs carry exactly the natural distribution values,
    and accumulating them in ascending direction order replicates
    ``np.sum(df_nat, axis=0)`` bit for bit (outer-axis reductions
    accumulate slab by slab in order).
    """
    arena = fluid.arena
    df = fluid.df
    u = fluid.velocity_shifted
    rho = arena.scalar("fused_rho")
    g = arena.scalar("aa_gather")
    np.copyto(rho, df[0])  # rest slab needs no gather (opp(0) = 0, e_0 = 0)
    for k in range(1, Q):
        aa_gather_direction(df, k, g, table)
        rho += g
    usq15 = arena.scalar("fused_usq15")
    tmp = arena.scalar("fused_tmp")
    np.multiply(u[0], u[0], out=usq15)
    np.multiply(u[1], u[1], out=tmp)
    usq15 += tmp
    np.multiply(u[2], u[2], out=tmp)
    usq15 += tmp
    usq15 *= 1.5
    return rho, usq15, tmp


def _push(df: np.ndarray, i: int, post: np.ndarray, table) -> None:
    for dst, src in table[i]:
        df[(i,) + dst] = post[src]


def _aa_odd_bgk(fluid: FluidGrid, table, capture: CaptureHook | None) -> None:
    arena = fluid.arena
    df = fluid.df
    u = fluid.velocity_shifted
    rho, usq15, tmp = _aa_odd_moments(fluid, table)
    eu = arena.scalar("fused_eu")
    feq = arena.scalar("fused_feq")
    g_i = arena.scalar("aa_gather")
    g_j = arena.scalar("aa_gather_j")
    omega = 1.0 / fluid.tau
    keep = 1.0 - omega

    post = df[0]
    _feq_direction(rho, None, usq15, float(W[0]), feq, tmp)
    post *= keep
    feq *= omega
    post += feq
    if capture is not None:
        capture(0, post)

    for i, j in _PAIRS:
        aa_gather_direction(df, i, g_i, table)  # reads slot j only
        aa_gather_direction(df, j, g_j, table)  # reads slot i only
        _direction_velocity(u, i, eu)
        _feq_direction(rho, eu, usq15, float(W[i]), feq, tmp)
        g_i *= keep
        feq *= omega
        g_i += feq
        _direction_velocity(u, j, eu)
        _feq_direction(rho, eu, usq15, float(W[j]), feq, tmp)
        g_j *= keep
        feq *= omega
        g_j += feq
        if capture is not None:
            capture(i, g_i)
            capture(j, g_j)
        _push(df, i, g_i, table)
        _push(df, j, g_j, table)


def _aa_odd_trt(fluid: FluidGrid, table, capture: CaptureHook | None) -> None:
    arena = fluid.arena
    df = fluid.df
    u = fluid.velocity_shifted
    rho, usq15, tmp = _aa_odd_moments(fluid, table)
    eu = arena.scalar("fused_eu")
    feq_i = arena.scalar("fused_feq")
    feq_j = arena.scalar("fused_feq_j")
    even = arena.scalar("fused_even")
    odd = arena.scalar("fused_odd")
    g_i = arena.scalar("aa_gather")
    g_j = arena.scalar("aa_gather_j")

    tau = fluid.tau
    omega_plus = 1.0 / tau
    omega_minus = 1.0 / (fluid.trt_magic / (tau - 0.5) + 0.5)

    post = df[0]
    _feq_direction(rho, None, usq15, float(W[0]), feq_i, tmp)
    np.subtract(post, feq_i, out=feq_i)
    feq_i *= omega_plus
    post -= feq_i
    if capture is not None:
        capture(0, post)

    for i, j in _PAIRS:
        aa_gather_direction(df, i, g_i, table)
        aa_gather_direction(df, j, g_j, table)
        _direction_velocity(u, i, eu)
        _feq_direction(rho, eu, usq15, float(W[i]), feq_i, tmp)
        _feq_direction(rho, eu, usq15, float(W[j]), feq_j, tmp, sign=-1.0)
        np.subtract(g_i, feq_i, out=feq_i)
        np.subtract(g_j, feq_j, out=feq_j)
        np.add(feq_i, feq_j, out=even)
        even *= 0.5
        even *= omega_plus
        np.subtract(feq_i, feq_j, out=odd)
        odd *= 0.5
        odd *= omega_minus
        g_i -= even
        g_i -= odd
        g_j -= even
        g_j += odd
        if capture is not None:
            capture(i, g_i)
            capture(j, g_j)
        _push(df, i, g_i, table)
        _push(df, j, g_j, table)


def aa_odd_collide_stream(
    fluid: FluidGrid, capture: CaptureHook | None = None
) -> None:
    """Odd AA step: pull-read the encoded lattice, collide, push-stream.

    Gathers each pair's virtual pre-collision slabs into scratch (the
    pair's own two slots are the only storage it reads *and* the only
    storage it writes, so the in-place push is hazard-free), collides
    with the exact fused operation order, and streams the result —
    restoring the natural layout (``aa_phase`` 0).
    """
    _require_phase(fluid, 1, "aa_odd_collide_stream")
    table = periodic_shift_table(fluid.shape)
    if fluid.collision_operator == "trt":
        _aa_odd_trt(fluid, table, capture)
    else:
        _aa_odd_bgk(fluid, table, capture)
    fluid.aa_phase = 0


# ----------------------------------------------------------------------
# kernel 7 on the encoded lattice
# ----------------------------------------------------------------------
def update_velocity_fields_aa(fluid: FluidGrid, momentum: np.ndarray) -> None:
    """Allocation-free kernel 7 reading an AA-encoded lattice.

    Numerically identical to
    :func:`repro.core.coupling.update_velocity_fields_inplace` on the
    decoded lattice: the density accumulates gathered slabs in
    ascending direction order (replicating ``np.sum``'s outer-axis
    accumulation) and the momentum adds/subtracts each slab per nonzero
    lattice-velocity component (replicating the GEMM reduction of
    :func:`repro.core.lbm.macroscopic.compute_momentum_density`).
    """
    _require_phase(fluid, 1, "update_velocity_fields_aa")
    arena = fluid.arena
    df = fluid.df
    rho = fluid.density
    g = arena.scalar("aa_gather")
    table = periodic_shift_table(fluid.shape)
    np.copyto(rho, df[0])
    momentum[...] = 0.0
    for k in range(1, Q):
        aa_gather_direction(df, k, g, table)
        rho += g
        for a, s in _COMPONENTS[k]:
            if s > 0:
                momentum[a] += g
            else:
                momentum[a] -= g

    shifted = fluid.velocity_shifted
    np.multiply(fluid.force, fluid.tau_odd * DT, out=shifted)
    shifted += momentum

    velocity = fluid.velocity
    np.multiply(fluid.force, 0.5 * DT, out=velocity)
    velocity += momentum

    # Same-shape divides, as in update_velocity_fields_inplace (the
    # broadcast form would allocate through numpy's buffered loop).
    for comp in range(3):
        shifted[comp] /= rho
        velocity[comp] /= rho
