"""Discrete Maxwell-Boltzmann equilibrium for the D3Q19 model.

The second-order equilibrium distribution is::

    f_i^eq = w_i * rho * [1 + 3 (e_i . u) + 9/2 (e_i . u)^2 - 3/2 u.u]

with lattice speed of sound ``cs^2 = 1/3`` absorbed into the numeric
coefficients (``1/cs^2 = 3`` etc.).
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE, Q
from repro.core.lbm.lattice import E_FLOAT, W

__all__ = ["equilibrium", "equilibrium_single"]


def equilibrium(
    density: np.ndarray | float,
    velocity: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Equilibrium distributions for a field of nodes.

    Parameters
    ----------
    density:
        Scalar or array of shape ``S`` (e.g. ``(Nx, Ny, Nz)``).
    velocity:
        Array of shape ``(3, *S)``.
    out:
        Optional output array of shape ``(19, *S)`` written in place.

    Returns
    -------
    numpy.ndarray
        Equilibrium distributions, shape ``(19, *S)``.
    """
    velocity = np.asarray(velocity, dtype=DTYPE)
    if velocity.shape[0] != 3:
        raise ValueError(
            f"velocity must have a leading component axis of size 3, got shape {velocity.shape}"
        )
    spatial = velocity.shape[1:]
    rho = np.broadcast_to(np.asarray(density, dtype=DTYPE), spatial)
    if out is None:
        out = np.empty((Q,) + spatial, dtype=DTYPE)
    elif out.shape != (Q,) + spatial:
        raise ValueError(
            f"out has shape {out.shape}, expected {(Q,) + spatial}"
        )

    # eu[i] = e_i . u  for every node, shape (19, *S)
    eu = np.tensordot(E_FLOAT, velocity, axes=([1], [0]))
    u_sq = np.einsum("a...,a...->...", velocity, velocity)

    # out = w_i * rho * (1 + 3 eu + 4.5 eu^2 - 1.5 u^2)
    np.multiply(eu, eu, out=out)
    out *= 4.5
    out += 3.0 * eu
    out -= 1.5 * u_sq
    out += 1.0
    out *= rho
    out *= W.reshape((Q,) + (1,) * len(spatial))
    return out


def equilibrium_single(density: float, velocity) -> np.ndarray:
    """Equilibrium distribution of a single node; returns shape ``(19,)``.

    Convenience wrapper used by boundary conditions and tests.
    """
    u = np.asarray(velocity, dtype=DTYPE).reshape(3, 1)
    return equilibrium(float(density), u).reshape(Q)
