"""Discrete Maxwell-Boltzmann equilibrium for the D3Q19 model.

The second-order equilibrium distribution is::

    f_i^eq = w_i * rho * [1 + 3 (e_i . u) + 9/2 (e_i . u)^2 - 3/2 u.u]

with lattice speed of sound ``cs^2 = 1/3`` absorbed into the numeric
coefficients (``1/cs^2 = 3`` etc.).
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE, Q
from repro.core.backend import lattice_constants

__all__ = ["equilibrium", "equilibrium_single"]


def equilibrium(
    density: np.ndarray | float,
    velocity: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Equilibrium distributions for a field of nodes.

    Parameters
    ----------
    density:
        Scalar or array of shape ``S`` (e.g. ``(Nx, Ny, Nz)``).
    velocity:
        Array of shape ``(3, *S)``.
    out:
        Optional output array of shape ``(19, *S)`` written in place.

    Returns
    -------
    numpy.ndarray
        Equilibrium distributions, shape ``(19, *S)``.
    """
    velocity = np.asarray(velocity)
    if velocity.dtype.kind != "f":
        velocity = velocity.astype(DTYPE)
    if velocity.shape[0] != 3:
        raise ValueError(
            f"velocity must have a leading component axis of size 3, got shape {velocity.shape}"
        )
    spatial = velocity.shape[1:]
    density = np.asarray(density)
    if density.dtype.kind != "f":
        density = density.astype(DTYPE)
    rho = np.broadcast_to(density, spatial)
    if out is None:
        # Dtype derives from the operands (float64 inputs behave exactly
        # as before); an explicit ``out`` — e.g. a float32 storage slab
        # or a float64 arena buffer under the mixed policy — wins.
        out = np.empty((Q,) + spatial, dtype=np.result_type(velocity, rho))
    elif out.shape != (Q,) + spatial:
        raise ValueError(
            f"out has shape {out.shape}, expected {(Q,) + spatial}"
        )

    # Lattice vectors at the output's width: float64 callers get the
    # original E_FLOAT/W objects back (bit-identical path), while
    # float32 storage avoids materialising full-lattice float64
    # temporaries during initialisation.
    e, w = lattice_constants(out.dtype)

    # eu[i] = e_i . u  for every node, shape (19, *S)
    eu = np.tensordot(e, velocity, axes=([1], [0]))
    u_sq = np.einsum("a...,a...->...", velocity, velocity)

    # out = w_i * rho * (1 + 3 eu + 4.5 eu^2 - 1.5 u^2)
    np.multiply(eu, eu, out=out)
    out *= 4.5
    out += 3.0 * eu
    out -= 1.5 * u_sq
    out += 1.0
    out *= rho
    out *= w.reshape((Q,) + (1,) * len(spatial))
    return out


def equilibrium_single(density: float, velocity) -> np.ndarray:
    """Equilibrium distribution of a single node; returns shape ``(19,)``.

    Convenience wrapper used by boundary conditions and tests.
    """
    u = np.asarray(velocity, dtype=DTYPE).reshape(3, 1)
    return equilibrium(float(density), u).reshape(Q)
