"""Macroscopic moments of the velocity distributions.

Density is the zeroth moment, momentum the first moment.  When a body
force ``F`` acts on the fluid (the elastic force spread from the immersed
structure), the second-order-accurate velocity includes the half-step
force correction of the Guo forcing scheme::

    rho   = sum_i f_i
    rho u = sum_i e_i f_i + F * dt / 2
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT
from repro.core.backend import lattice_constants
from repro.core.lbm.lattice import E_FLOAT

__all__ = ["compute_density", "compute_velocity", "compute_momentum_density"]


def compute_density(
    df: np.ndarray, out: np.ndarray | None = None, dtype=None
) -> np.ndarray:
    """Zeroth moment ``rho = sum_i f_i``; ``df`` has shape ``(19, *S)``.

    ``dtype`` pins the reduction accumulator (the mixed policy sums
    float32 distributions in float64); defaulting to the output's dtype
    is a no-op for the uniform-precision policies.
    """
    if dtype is None and out is not None:
        dtype = out.dtype
    return np.sum(df, axis=0, out=out, dtype=dtype)


def compute_momentum_density(df: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """First moment ``sum_i e_i f_i``; returns shape ``(3, *S)``.

    With ``out`` given (and both arrays C-contiguous at one dtype) the
    moment is computed as a direct GEMM into ``out`` — the
    allocation-free form the fused hot path relies on; the lattice
    vectors are cached per dtype so a pure-float32 grid runs a
    float32 GEMM.  Mixed storage/accumulator dtypes fall back to the
    float64-promoting ``tensordot``.
    """
    if (
        out is not None
        and df.flags.c_contiguous
        and out.flags.c_contiguous
        and df.dtype == out.dtype
    ):
        e_float, _ = lattice_constants(df.dtype)
        q = df.shape[0]
        np.matmul(e_float.T, df.reshape(q, -1), out=out.reshape(3, -1))
        return out
    mom = np.tensordot(E_FLOAT.T, df, axes=([1], [0]))
    if out is not None:
        out[...] = mom
        return out
    return mom


def compute_velocity(
    df: np.ndarray,
    force: np.ndarray | None = None,
    density: np.ndarray | None = None,
    out_velocity: np.ndarray | None = None,
    out_density: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Macroscopic ``(velocity, density)`` from distributions and body force.

    Parameters
    ----------
    df:
        Distributions, shape ``(19, *S)``.
    force:
        Optional body-force density ``(3, *S)``; contributes the Guo
        half-step momentum correction ``F dt / 2``.
    density:
        Pre-computed density to reuse; computed from ``df`` when absent.
    out_velocity, out_density:
        Optional output arrays written in place.

    Returns
    -------
    (velocity, density):
        Arrays of shape ``(3, *S)`` and ``S``.
    """
    if density is None:
        density = compute_density(df, out=out_density)
    elif out_density is not None:
        out_density[...] = density
        density = out_density

    momentum = compute_momentum_density(df)
    if force is not None:
        momentum += 0.5 * DT * np.asarray(force)

    if out_velocity is None:
        out_velocity = np.empty_like(momentum)
    np.divide(momentum, density[None, ...], out=out_velocity)
    return out_velocity, density
