"""D3Q19 lattice Boltzmann fluid solver (the "LBM" in LBM-IB).

Submodules
----------
``lattice``      velocity set, weights, opposite table (paper Figure 2)
``fields``       the :class:`~repro.core.lbm.fields.FluidGrid` state (Figure 3)
``equilibrium``  discrete Maxwell-Boltzmann equilibrium
``macroscopic``  density / velocity moments with Guo half-force correction
``collision``    BGK collision with Guo forcing (kernel 5)
``streaming``    push streaming to the 18 neighbours (kernel 6)
``boundaries``   periodic / bounce-back / moving-wall / outflow faces
``analysis``     pressure, vorticity, shear stress, energy integrals

Note: the submodule names double as the public API (for example
``from repro.core.lbm import equilibrium`` then
``equilibrium.equilibrium(rho, u)``); no submodule name is shadowed by a
re-exported function.
"""

from repro.core.lbm.lattice import E, OPPOSITE, Q, W

__all__ = ["E", "OPPOSITE", "Q", "W"]
