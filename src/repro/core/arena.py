"""Scratch-buffer arena: preallocated workspace for the hot path.

On the single-core target the per-step cost of the solver is dominated
by memory traffic, and a meaningful slice of that traffic is *allocator*
traffic: every ``np.empty`` for an equilibrium slab, a moment field, or
a ``np.roll`` temporary touches fresh pages that must be faulted in and
evicts useful cache lines.  The arena removes that entirely: named
scratch buffers are allocated once (on first request, so only the
buffers a given operator actually needs exist) and reused on every
subsequent step.  After warmup, a steady-state step of the fused solver
performs zero numpy array allocations — a property pinned by a
tracemalloc test in ``tests/verify/test_fused.py``.

Buffers are keyed by name; a request whose shape or dtype no longer
matches the stored buffer (e.g. after a grid reshape, or a per-dtype
pool request) transparently reallocates.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE

__all__ = ["ScratchArena"]


class ScratchArena:
    """Named, lazily allocated, reusable scratch buffers for one grid.

    Parameters
    ----------
    shape:
        Spatial grid shape ``(Nx, Ny, Nz)``; :meth:`scalar` buffers have
        exactly this shape, :meth:`vector` buffers are ``(3, *shape)``.
    dtype:
        Default element dtype (the library-wide :data:`DTYPE` unless the
        owning grid's precision policy says otherwise — the grid passes
        its *compute* dtype, which is the single lever that sets the
        arithmetic precision of the fused/in-place/batched hot paths).
        Individual buffers may override it, giving per-dtype pools.
    """

    def __init__(self, shape: tuple[int, int, int], dtype=DTYPE) -> None:
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        self._buffers: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def buffer(self, name: str, shape: tuple[int, ...], dtype=None) -> np.ndarray:
        """The named scratch buffer, (re)allocated on first use.

        Contents are undefined between calls; callers must fully
        overwrite the buffer (use ``out=`` forms) before reading it.
        """
        want_dtype = self.dtype if dtype is None else np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != want_dtype:
            buf = np.empty(tuple(shape), dtype=want_dtype)
            self._buffers[name] = buf
        return buf

    def scalar(self, name: str, dtype=None) -> np.ndarray:
        """Scratch field of shape ``(Nx, Ny, Nz)``."""
        return self.buffer(name, self.shape, dtype=dtype)

    def vector(self, name: str, dtype=None) -> np.ndarray:
        """Scratch field of shape ``(3, Nx, Ny, Nz)``."""
        return self.buffer(name, (3,) + self.shape, dtype=dtype)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes currently held by arena buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __contains__(self, name: str) -> bool:
        return name in self._buffers
