"""The LBM-IB method: fluid (LBM), structure (IB), and their coupling.

``repro.core.kernels`` exposes the paper's nine computational kernels;
``repro.core.solver`` runs them sequentially (Algorithm 1);
``repro.core.reference`` holds slow loop-based oracles used in tests.
"""

from repro.core.solver import SequentialLBMIBSolver

__all__ = ["SequentialLBMIBSolver"]
