"""Elastic forces of the immersed structure (paper kernels 1-3).

``compute_bending_force``
    Kernel 1: at every fiber node the bending force depends on the
    locations of its 8 neighbour nodes in the 2D sheet — two on the
    left, two on the right, two above, two below.  It derives from the
    discrete bending energy ``E_b = k_b/2 * sum |D2 X|^2`` (``D2`` the
    second difference applied along the fiber and across fibers), so
    ``F_b = -k_b * D2^T D2 X``, a fourth-difference stencil.

``compute_stretching_force``
    Kernel 2: spring tension against the four neighbours (left, right,
    top, bottom) with rest lengths equal to the sheet's rest spacings:
    ``F_s(l) = k_s sum_m (X_m - X_l) (1 - L0 / |X_m - X_l|)``.

``compute_elastic_force``
    Kernel 3: the elastic force is the sum of bending and stretching
    (plus the optional stiff tether force for fastened nodes).

All three accept an optional ``rows`` index array restricting which
*fibers* (rows) of the output are written — the unit of work distributed
by ``fiber2thread`` in the parallel solvers.  Neighbour rows are only
read, so row-partitioned concurrent calls are data-race free.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE
from repro.core.ib.fiber import FiberSheet

__all__ = [
    "second_difference",
    "compute_bending_force",
    "compute_stretching_force",
    "compute_elastic_force",
]


def second_difference(
    x: np.ndarray, axis: int, valid: np.ndarray | None = None, padded: bool = False
) -> np.ndarray:
    """Second difference ``x[i-1] - 2 x[i] + x[i+1]`` along ``axis``.

    With ``padded=False`` (default) only interior nodes are computed; end
    nodes (and, when ``valid`` is given, nodes whose 3-point stencil
    touches an invalid node) get 0, realizing free/natural boundary
    conditions at sheet edges and at inactive-mask cuts.

    With ``padded=True`` out-of-range neighbours are treated as zeros and
    *every* node gets a value — this is the transpose operator ``D2^T``
    needed so that the bending force derives from an energy and internal
    forces sum to zero (momentum conservation).

    Parameters
    ----------
    x:
        Array with node axes first, e.g. ``(nf, nn, 3)``.
    axis:
        0 (across fibers) or 1 (along the fiber).
    valid:
        Optional boolean node mask ``(nf, nn)``; only honoured in the
        interior (non-padded) form.
    """
    out = np.zeros_like(x)
    n = x.shape[axis]
    if padded:
        if valid is not None:
            raise ValueError("valid mask is only supported for the interior form")
        out -= 2.0 * x
        lo_dst = [slice(None)] * x.ndim
        lo_src = [slice(None)] * x.ndim
        lo_dst[axis] = slice(0, n - 1)
        lo_src[axis] = slice(1, n)
        out[tuple(lo_dst)] += x[tuple(lo_src)]
        hi_dst = [slice(None)] * x.ndim
        hi_src = [slice(None)] * x.ndim
        hi_dst[axis] = slice(1, n)
        hi_src[axis] = slice(0, n - 1)
        out[tuple(hi_dst)] += x[tuple(hi_src)]
        return out
    if n < 3:
        return out
    mid = [slice(None)] * x.ndim
    lo = [slice(None)] * x.ndim
    hi = [slice(None)] * x.ndim
    mid[axis] = slice(1, n - 1)
    lo[axis] = slice(0, n - 2)
    hi[axis] = slice(2, n)
    out[tuple(mid)] = x[tuple(lo)] - 2.0 * x[tuple(mid)] + x[tuple(hi)]
    if valid is not None:
        ok = np.zeros(valid.shape, dtype=bool)
        vm = [slice(None)] * valid.ndim
        vl = [slice(None)] * valid.ndim
        vh = [slice(None)] * valid.ndim
        vm[axis] = slice(1, n - 1)
        vl[axis] = slice(0, n - 2)
        vh[axis] = slice(2, n)
        ok[tuple(vm)] = valid[tuple(vl)] & valid[tuple(vm)] & valid[tuple(vh)]
        out[~ok] = 0.0
    return out


def _row_mask(sheet: FiberSheet, rows) -> np.ndarray | None:
    """Boolean fiber-row selector from a ``rows`` argument (or None)."""
    if rows is None:
        return None
    mask = np.zeros(sheet.num_fibers, dtype=bool)
    mask[np.asarray(rows, dtype=np.int64)] = True
    return mask


def compute_bending_force(sheet: FiberSheet, rows=None) -> np.ndarray:
    """Kernel 1: write (and return) ``sheet.bending_force``.

    ``F_b = -k_b [ D2_a^T D2_a X + D2_f^T D2_f X ]`` where ``a`` runs
    across fibers and ``f`` along fibers.  Because the transposed
    operator is again a (zero-padded) second difference of the interior
    curvature, each node's stencil spans two neighbours on each of the
    four sides — the paper's 8-neighbour description.
    """
    x = sheet.positions
    total = np.zeros_like(x)
    for axis in (0, 1):
        curvature = second_difference(x, axis, valid=sheet.active)
        # transpose pass: D2^T is the zero-padded second difference over
        # every node (including sheet edges); pairing the interior D2 with
        # its true transpose keeps the bending force momentum-free.
        total += second_difference(curvature, axis, padded=True)
    total *= -sheet.bend_coefficient
    total[~sheet.active] = 0.0

    mask = _row_mask(sheet, rows)
    if mask is None:
        sheet.bending_force[...] = total
    else:
        sheet.bending_force[mask] = total[mask]
    return sheet.bending_force


def _axis_tension(
    x: np.ndarray, active: np.ndarray, axis: int, k_s: float, rest: float
) -> np.ndarray:
    """Net spring force along one sheet axis; zero across inactive links."""
    force = np.zeros_like(x)
    n = x.shape[axis]
    if n < 2 or k_s == 0.0:
        return force
    d = np.diff(x, axis=axis)  # X_{m+1} - X_m
    length = np.linalg.norm(d, axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        coeff = k_s * (1.0 - rest / length)
    coeff = np.where(length > 0.0, coeff, 0.0)

    lo = [slice(None)] * active.ndim
    hi = [slice(None)] * active.ndim
    lo[axis] = slice(0, n - 1)
    hi[axis] = slice(1, n)
    link_ok = active[tuple(lo)] & active[tuple(hi)]
    tension = coeff[..., None] * d
    tension[~link_ok] = 0.0

    flo = [slice(None)] * x.ndim
    fhi = [slice(None)] * x.ndim
    flo[axis] = slice(0, n - 1)
    fhi[axis] = slice(1, n)
    force[tuple(flo)] += tension
    force[tuple(fhi)] -= tension
    return force


def compute_stretching_force(sheet: FiberSheet, rows=None) -> np.ndarray:
    """Kernel 2: write (and return) ``sheet.stretching_force``.

    The computation mirrors Algorithm 3's two stages: tension along each
    fiber (left/right neighbours, rest length ``rest_spacing_fiber``)
    plus tension across fibers (top/bottom neighbours, rest length
    ``rest_spacing_cross``).
    """
    x = sheet.positions
    total = _axis_tension(
        x, sheet.active, 1, sheet.stretch_coefficient, sheet.rest_spacing_fiber
    )
    total += _axis_tension(
        x, sheet.active, 0, sheet.stretch_coefficient, sheet.rest_spacing_cross
    )
    total[~sheet.active] = 0.0

    mask = _row_mask(sheet, rows)
    if mask is None:
        sheet.stretching_force[...] = total
    else:
        sheet.stretching_force[mask] = total[mask]
    return sheet.stretching_force


def compute_elastic_force(sheet: FiberSheet, rows=None) -> np.ndarray:
    """Kernel 3: elastic force = bending + stretching (+ tether springs).

    Tethered nodes additionally feel ``-k_t (X - X_anchor)``, the stiff
    springs that fasten, e.g., the middle region of the circular plate
    in paper Figure 1.
    """
    total = sheet.bending_force + sheet.stretching_force
    if sheet.tethered.any():
        tether = -sheet.tether_coefficient * (sheet.positions - sheet.anchors)
        tether[~sheet.tethered] = 0.0
        total += tether
    total[~sheet.active] = 0.0

    mask = _row_mask(sheet, rows)
    if mask is None:
        sheet.elastic_force[...] = total
    else:
        sheet.elastic_force[mask] = total[mask]
    return sheet.elastic_force
