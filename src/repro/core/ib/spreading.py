"""Force spreading from fibers to fluid (paper kernel 4).

For every fiber node the kernel finds the set of fluid nodes in the
``support^3`` influential domain around it and exerts the node's elastic
force onto them, weighted by the smoothed Dirac delta::

    F(x) += f_l * delta_h(x - X_l) * dA

where ``dA`` is the Lagrangian area element of the sheet.  Periodic
wrap-around matches the fluid grid's periodic topology.

The scatter has two implementations that are bit-identical (both
accumulate contributions in strict input order): :func:`numpy.bincount`
over raveled grid indices, and ``np.add.at`` through NumPy's indexed
fast path.  Their costs differ in *which* size dominates: ``bincount``
allocates and sweeps a full ``minlength=num_grid_nodes`` output per
component on top of its histogram loop, while ``add.at`` only touches
the actual contributions.  ``benchmarks/results/bench_fused.txt``
records the crossover on the paper's Table-I grid (43k contributions on
a 63k-node grid: ``add.at`` 0.31 ms vs ``bincount`` 0.52 ms), so
:func:`scatter_method` picks ``bincount`` only when the contribution
count reaches the grid size and ``add_at`` otherwise.  The
``LBMIB_SCATTER`` environment variable (``auto``/``bincount``/
``add_at``, read at import) forces a specific implementation for
benchmarking.
"""

from __future__ import annotations

import os

import numpy as np

from repro.constants import DTYPE
from repro.core.ib.delta import DeltaKernel
from repro.core.ib.fiber import FiberSheet
from repro.errors import ConfigurationError

__all__ = [
    "flatten_stencil",
    "scatter_flat",
    "scatter_method",
    "set_scatter_method",
    "spread_forces",
    "spread_values",
    "StencilCache",
]

_SCATTER_METHODS = ("auto", "bincount", "add_at")


def _env_scatter_override() -> str:
    """``LBMIB_SCATTER`` validated at read time.

    An unknown value used to fall through :func:`scatter_flat`'s
    dispatch into the ``bincount`` branch silently — a typo like
    ``LBMIB_SCATTER=addat`` would *appear* to work while benchmarking
    the wrong implementation.  Failing loudly at import, naming the
    allowed methods, turns that into a one-line fix.
    """
    value = os.environ.get("LBMIB_SCATTER", "auto")
    if value not in _SCATTER_METHODS:
        raise ConfigurationError(
            f"LBMIB_SCATTER={value!r} is not a scatter method; allowed "
            f"values: {', '.join(_SCATTER_METHODS)}"
        )
    return value


#: Forced scatter implementation; ``"auto"`` selects by problem size.
_scatter_override = _env_scatter_override()


def set_scatter_method(method: str) -> None:
    """Force the scatter implementation (``"auto"`` restores selection)."""
    global _scatter_override
    if method not in _SCATTER_METHODS:
        raise ConfigurationError(
            f"scatter method must be one of {_SCATTER_METHODS}, got {method!r}"
        )
    _scatter_override = method


def scatter_method(
    num_grid_nodes: int, num_contributions: int, itemsize: int = 8
) -> str:
    """The scatter implementation used for this problem size.

    ``bincount`` pays O(``num_grid_nodes``) per component (a fresh
    ``minlength``-sized output, zeroed, summed back into the target) on
    top of its O(``num_contributions``) histogram loop; ``add_at`` pays
    only the contributions.  ``bincount`` therefore wins only once the
    stencil contributions cover the grid — below that the dense output
    sweep dominates (the kernel-4 regression recorded in
    ``benchmarks/results/bench_fused.txt``).

    ``itemsize`` is the target field's element size in bytes.  The
    ``add_at`` indexed loop is compute-bound and shrinks with the
    storage dtype, but ``bincount``'s dense ``minlength`` output is
    always float64 — 8 bytes per grid node no matter what the target
    stores — so on float32 fields (4-byte elements) its fixed sweep is
    relatively twice as expensive and the crossover needs
    proportionally more contributions before ``bincount`` wins.
    """
    if _scatter_override != "auto":
        return _scatter_override
    threshold = num_grid_nodes * (8.0 / float(itemsize))
    return "bincount" if num_contributions >= threshold else "add_at"


def flatten_stencil(
    indices: np.ndarray, weights: np.ndarray, grid_shape: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-point stencils to linear grid indices and weights.

    Parameters
    ----------
    indices:
        Per-axis grid coordinates from :meth:`DeltaKernel.stencil`,
        shape ``(N, s, 3)``, already wrapped into ``grid_shape``.
    weights:
        3D delta weights ``(N, s, s, s)``.
    grid_shape:
        Fluid grid dimensions ``(Nx, Ny, Nz)``.

    Returns
    -------
    (flat_indices, flat_weights):
        Both of shape ``(N, s**3)``; ``flat_indices`` are raveled
        C-order node indices into the grid.
    """
    n, s, _ = indices.shape
    _, ny, nz = grid_shape
    ix = indices[:, :, 0]
    iy = indices[:, :, 1]
    iz = indices[:, :, 2]
    flat = (
        ix[:, :, None, None] * (ny * nz)
        + iy[:, None, :, None] * nz
        + iz[:, None, None, :]
    )
    return flat.reshape(n, s**3), weights.reshape(n, s**3)


def scatter_flat(
    flat_idx: np.ndarray,
    flat_w: np.ndarray,
    values: np.ndarray,
    target: np.ndarray,
    scale: float = 1.0,
    method: str | None = None,
) -> np.ndarray:
    """Scatter pre-flattened stencil contributions onto ``target``.

    Parameters
    ----------
    flat_idx, flat_w:
        Output of :func:`flatten_stencil`, both ``(N, s**3)``.
    values:
        Per-point vectors ``(N, 3)``.
    target:
        Eulerian vector field ``(3, Nx, Ny, Nz)``, accumulated in place.
    scale:
        Constant multiplier (the Lagrangian area element).
    method:
        ``"bincount"`` or ``"add_at"``; ``None`` (the default) picks via
        :func:`scatter_method`.  Both are bit-identical — they
        accumulate contributions in the same input order.
    """
    if flat_idx.size == 0:
        return target
    grid_shape = target.shape[1:]
    num_nodes = target[0].size
    if scale != 1.0:
        flat_w = flat_w * scale
    idx = flat_idx.ravel()
    if method is None:
        method = scatter_method(num_nodes, idx.size, target.dtype.itemsize)
    # Sub-float64 targets accumulate through a float64 staging field and
    # cast once at the end: the spread reduction keeps double precision
    # (the mixed policy's contract) and — because each method then sums
    # identical float64 contributions in identical order — bincount and
    # add_at stay bit-identical at every storage dtype, not just f64.
    accum = (
        target
        if target.dtype == np.float64
        else np.zeros(target.shape, dtype=np.float64)  # backend-lint: ok (f64 reduction staging)
    )
    if method == "add_at" and not accum.flags.c_contiguous:
        # add.at needs a flat in-place view of each component.
        method = "bincount"
    for comp in range(3):
        contrib = (values[:, comp : comp + 1] * flat_w).ravel()
        if method == "add_at":
            np.add.at(accum[comp].reshape(-1), idx, contrib)
        else:
            binned = np.bincount(idx, weights=contrib, minlength=num_nodes)
            accum[comp] += binned.reshape(grid_shape)
    if accum is not target:
        target += accum
    return target


def spread_values(
    positions: np.ndarray,
    values: np.ndarray,
    delta: DeltaKernel,
    target: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Scatter per-point vector ``values`` onto the vector field ``target``.

    Parameters
    ----------
    positions:
        Lagrangian coordinates ``(N, 3)``.
    values:
        Per-point vectors ``(N, 3)`` (e.g. elastic force).
    delta:
        Smoothed delta kernel.
    target:
        Eulerian vector field ``(3, Nx, Ny, Nz)``, accumulated in place.
    scale:
        Constant multiplier (the Lagrangian area element).
    """
    if positions.size == 0:
        return target
    grid_shape = target.shape[1:]
    indices, weights = delta.stencil(positions, grid_shape=grid_shape)
    flat_idx, flat_w = flatten_stencil(indices, weights, grid_shape)
    return scatter_flat(flat_idx, flat_w, values, target, scale=scale)


class StencilCache:
    """Per-step cache of flattened delta stencils, keyed per sheet.

    Within one time step the fiber positions do not move between the
    spread (kernel 4) and the velocity interpolation inside kernel 8,
    so the delta-stencil indices and weights computed for the spread
    can be reused verbatim for the interpolation.  The fused solver
    owns one cache and calls :meth:`begin_step` at the top of every
    step; both transfer kernels then share one stencil evaluation.
    """

    def __init__(self) -> None:
        self._flat: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def begin_step(self) -> None:
        """Invalidate every cached stencil (positions are about to move)."""
        self._flat.clear()

    def end_step(self) -> None:
        """Release this step's stencils once the last consumer has run.

        The stencil arrays are large (``active_nodes x support`` indices
        plus weights — ~692 kB for the paper's Table-I sheet); holding
        the final step's entry across the end of a run shows up as
        retained memory in the allocation profile even though the data
        is dead.  Dropping it here keeps the cache's retained footprint
        at zero between steps at no numerical cost.
        """
        self._flat.clear()

    def flat_stencil(
        self,
        sheet: FiberSheet,
        delta: DeltaKernel,
        grid_shape: tuple[int, int, int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened ``(indices, weights)`` of ``sheet``'s active nodes."""
        entry = self._flat.get(id(sheet))
        if entry is None:
            positions = sheet.positions[sheet.active]
            indices, weights = delta.stencil(positions, grid_shape=grid_shape)
            entry = flatten_stencil(indices, weights, grid_shape)
            self._flat[id(sheet)] = entry
        return entry


def spread_forces(
    sheet: FiberSheet,
    delta: DeltaKernel,
    force_grid: np.ndarray,
    rows=None,
    cache: StencilCache | None = None,
) -> np.ndarray:
    """Kernel 4: spread the sheet's elastic force into ``force_grid``.

    Parameters
    ----------
    sheet:
        Fiber sheet whose ``elastic_force`` has been computed (kernel 3).
    delta:
        Smoothed delta kernel defining the influential domain.
    force_grid:
        Fluid force-density field ``(3, Nx, Ny, Nz)``; accumulated in
        place (callers zero it at the start of the time step).
    rows:
        Optional fiber indices restricting which fibers spread — the
        parallel unit of ``fiber2thread``.
    cache:
        Optional :class:`StencilCache`; the stencil computed here is
        then reused by the same step's velocity interpolation.  Only
        valid without ``rows`` (the cache covers all active nodes).
    """
    if rows is None:
        if cache is not None:
            flat_idx, flat_w = cache.flat_stencil(
                sheet, delta, force_grid.shape[1:]
            )
            values = sheet.elastic_force[sheet.active]
            return scatter_flat(
                flat_idx, flat_w, values, force_grid, scale=sheet.area_element
            )
        node_mask = sheet.active
    else:
        node_mask = np.zeros_like(sheet.active)
        node_mask[np.asarray(rows, dtype=np.int64)] = True
        node_mask &= sheet.active
    positions = sheet.positions[node_mask]
    values = sheet.elastic_force[node_mask]
    return spread_values(
        positions, values, delta, force_grid, scale=sheet.area_element
    )
