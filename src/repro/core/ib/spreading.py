"""Force spreading from fibers to fluid (paper kernel 4).

For every fiber node the kernel finds the set of fluid nodes in the
``support^3`` influential domain around it and exerts the node's elastic
force onto them, weighted by the smoothed Dirac delta::

    F(x) += f_l * delta_h(x - X_l) * dA

where ``dA`` is the Lagrangian area element of the sheet.  Periodic
wrap-around matches the fluid grid's periodic topology.

The scatter itself uses :func:`numpy.bincount` over raveled grid
indices rather than ``np.add.at``: both accumulate contributions in
input order (so the two are bit-identical), but ``bincount`` runs a
tight C histogram loop while ``ufunc.at`` historically dispatched
through the generic buffered inner loop and was an order of magnitude
slower.  NumPy 1.25 gave ``ufunc.at`` an indexed fast path that closes
most of that gap — ``BENCH_fused.json`` records the measured delta on
the build in use.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE
from repro.core.ib.delta import DeltaKernel
from repro.core.ib.fiber import FiberSheet

__all__ = [
    "flatten_stencil",
    "scatter_flat",
    "spread_forces",
    "spread_values",
    "StencilCache",
]


def flatten_stencil(
    indices: np.ndarray, weights: np.ndarray, grid_shape: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-point stencils to linear grid indices and weights.

    Parameters
    ----------
    indices:
        Per-axis grid coordinates from :meth:`DeltaKernel.stencil`,
        shape ``(N, s, 3)``, already wrapped into ``grid_shape``.
    weights:
        3D delta weights ``(N, s, s, s)``.
    grid_shape:
        Fluid grid dimensions ``(Nx, Ny, Nz)``.

    Returns
    -------
    (flat_indices, flat_weights):
        Both of shape ``(N, s**3)``; ``flat_indices`` are raveled
        C-order node indices into the grid.
    """
    n, s, _ = indices.shape
    _, ny, nz = grid_shape
    ix = indices[:, :, 0]
    iy = indices[:, :, 1]
    iz = indices[:, :, 2]
    flat = (
        ix[:, :, None, None] * (ny * nz)
        + iy[:, None, :, None] * nz
        + iz[:, None, None, :]
    )
    return flat.reshape(n, s**3), weights.reshape(n, s**3)


def scatter_flat(
    flat_idx: np.ndarray,
    flat_w: np.ndarray,
    values: np.ndarray,
    target: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Scatter pre-flattened stencil contributions onto ``target``.

    Parameters
    ----------
    flat_idx, flat_w:
        Output of :func:`flatten_stencil`, both ``(N, s**3)``.
    values:
        Per-point vectors ``(N, 3)``.
    target:
        Eulerian vector field ``(3, Nx, Ny, Nz)``, accumulated in place.
    scale:
        Constant multiplier (the Lagrangian area element).
    """
    if flat_idx.size == 0:
        return target
    grid_shape = target.shape[1:]
    num_nodes = target[0].size
    if scale != 1.0:
        flat_w = flat_w * scale
    idx = flat_idx.ravel()
    for comp in range(3):
        contrib = (values[:, comp : comp + 1] * flat_w).ravel()
        binned = np.bincount(idx, weights=contrib, minlength=num_nodes)
        target[comp] += binned.reshape(grid_shape)
    return target


def spread_values(
    positions: np.ndarray,
    values: np.ndarray,
    delta: DeltaKernel,
    target: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Scatter per-point vector ``values`` onto the vector field ``target``.

    Parameters
    ----------
    positions:
        Lagrangian coordinates ``(N, 3)``.
    values:
        Per-point vectors ``(N, 3)`` (e.g. elastic force).
    delta:
        Smoothed delta kernel.
    target:
        Eulerian vector field ``(3, Nx, Ny, Nz)``, accumulated in place.
    scale:
        Constant multiplier (the Lagrangian area element).
    """
    if positions.size == 0:
        return target
    grid_shape = target.shape[1:]
    indices, weights = delta.stencil(positions, grid_shape=grid_shape)
    flat_idx, flat_w = flatten_stencil(indices, weights, grid_shape)
    return scatter_flat(flat_idx, flat_w, values, target, scale=scale)


class StencilCache:
    """Per-step cache of flattened delta stencils, keyed per sheet.

    Within one time step the fiber positions do not move between the
    spread (kernel 4) and the velocity interpolation inside kernel 8,
    so the delta-stencil indices and weights computed for the spread
    can be reused verbatim for the interpolation.  The fused solver
    owns one cache and calls :meth:`begin_step` at the top of every
    step; both transfer kernels then share one stencil evaluation.
    """

    def __init__(self) -> None:
        self._flat: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def begin_step(self) -> None:
        """Invalidate every cached stencil (positions are about to move)."""
        self._flat.clear()

    def flat_stencil(
        self,
        sheet: FiberSheet,
        delta: DeltaKernel,
        grid_shape: tuple[int, int, int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened ``(indices, weights)`` of ``sheet``'s active nodes."""
        entry = self._flat.get(id(sheet))
        if entry is None:
            positions = sheet.positions[sheet.active]
            indices, weights = delta.stencil(positions, grid_shape=grid_shape)
            entry = flatten_stencil(indices, weights, grid_shape)
            self._flat[id(sheet)] = entry
        return entry


def spread_forces(
    sheet: FiberSheet,
    delta: DeltaKernel,
    force_grid: np.ndarray,
    rows=None,
    cache: StencilCache | None = None,
) -> np.ndarray:
    """Kernel 4: spread the sheet's elastic force into ``force_grid``.

    Parameters
    ----------
    sheet:
        Fiber sheet whose ``elastic_force`` has been computed (kernel 3).
    delta:
        Smoothed delta kernel defining the influential domain.
    force_grid:
        Fluid force-density field ``(3, Nx, Ny, Nz)``; accumulated in
        place (callers zero it at the start of the time step).
    rows:
        Optional fiber indices restricting which fibers spread — the
        parallel unit of ``fiber2thread``.
    cache:
        Optional :class:`StencilCache`; the stencil computed here is
        then reused by the same step's velocity interpolation.  Only
        valid without ``rows`` (the cache covers all active nodes).
    """
    if rows is None:
        if cache is not None:
            flat_idx, flat_w = cache.flat_stencil(
                sheet, delta, force_grid.shape[1:]
            )
            values = sheet.elastic_force[sheet.active]
            return scatter_flat(
                flat_idx, flat_w, values, force_grid, scale=sheet.area_element
            )
        node_mask = sheet.active
    else:
        node_mask = np.zeros_like(sheet.active)
        node_mask[np.asarray(rows, dtype=np.int64)] = True
        node_mask &= sheet.active
    positions = sheet.positions[node_mask]
    values = sheet.elastic_force[node_mask]
    return spread_values(
        positions, values, delta, force_grid, scale=sheet.area_element
    )
