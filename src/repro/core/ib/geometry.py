"""Builders for immersed-structure geometries used in the paper.

``flat_sheet``
    The rectangular fiber sheet of Figures 4 and 7 — an array of fibers
    each holding a row of fiber nodes, placed in the y-z plane (or any
    requested orientation) inside the fluid tunnel.

``circular_plate``
    The flexible circular plate of Figure 1, fastened (tethered) in its
    middle region: a rectangular node array with an ``active`` disk mask
    and a tethered central disk.

All coordinates are lattice units; builders validate that the structure
fits inside the fluid box with enough clearance for the delta support.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE
from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.errors import ConfigurationError

__all__ = ["flat_sheet", "circular_plate", "parallel_sheets", "sheet_node_grid"]


def sheet_node_grid(
    num_fibers: int,
    nodes_per_fiber: int,
    width: float,
    height: float,
    center: tuple[float, float, float],
    normal_axis: int = 0,
) -> np.ndarray:
    """Node coordinates of a planar rectangular sheet.

    The sheet spans ``width`` along the first in-plane axis (across
    fibers) and ``height`` along the second (along each fiber), centred
    at ``center`` and perpendicular to ``normal_axis``.

    Returns
    -------
    numpy.ndarray
        Positions, shape ``(num_fibers, nodes_per_fiber, 3)``.
    """
    if num_fibers < 1 or nodes_per_fiber < 1:
        raise ConfigurationError("sheet needs at least one fiber and one node")
    if normal_axis not in (0, 1, 2):
        raise ConfigurationError(f"normal_axis must be 0, 1 or 2, got {normal_axis}")
    in_plane = [a for a in range(3) if a != normal_axis]
    s0 = (
        np.linspace(-width / 2.0, width / 2.0, num_fibers)
        if num_fibers > 1
        else np.zeros(1)
    )
    s1 = (
        np.linspace(-height / 2.0, height / 2.0, nodes_per_fiber)
        if nodes_per_fiber > 1
        else np.zeros(1)
    )
    pos = np.empty((num_fibers, nodes_per_fiber, 3), dtype=DTYPE)
    pos[:, :, normal_axis] = center[normal_axis]
    pos[:, :, in_plane[0]] = center[in_plane[0]] + s0[:, None]
    pos[:, :, in_plane[1]] = center[in_plane[1]] + s1[None, :]
    return pos


def _check_fits(positions: np.ndarray, fluid_shape, margin: float = 2.0) -> None:
    """Ensure all nodes are at least ``margin`` inside the periodic box."""
    fluid_shape = np.asarray(fluid_shape, dtype=DTYPE)
    lo = positions.min(axis=(0, 1))
    hi = positions.max(axis=(0, 1))
    if (lo < 0).any() or (hi > fluid_shape - 1).any():
        raise ConfigurationError(
            f"structure extent [{lo}, {hi}] leaves the fluid box {fluid_shape}"
        )


def flat_sheet(
    fluid_shape: tuple[int, int, int],
    num_fibers: int = 8,
    nodes_per_fiber: int = 5,
    width: float | None = None,
    height: float | None = None,
    center: tuple[float, float, float] | None = None,
    normal_axis: int = 0,
    stretch_coefficient: float = 1.0e-2,
    bend_coefficient: float = 1.0e-4,
) -> ImmersedStructure:
    """The paper's rectangular flexible sheet (Figures 4 and 7).

    Defaults place the sheet at the box centre, perpendicular to the x
    axis (the flow direction of the tunnel experiments), spanning about
    a third of the cross-section.
    """
    nx, ny, nz = fluid_shape
    if center is None:
        center = ((nx - 1) / 2.0, (ny - 1) / 2.0, (nz - 1) / 2.0)
    in_plane = [a for a in range(3) if a != normal_axis]
    if width is None:
        width = fluid_shape[in_plane[0]] / 3.0
    if height is None:
        height = fluid_shape[in_plane[1]] / 3.0
    pos = sheet_node_grid(num_fibers, nodes_per_fiber, width, height, center, normal_axis)
    _check_fits(pos, fluid_shape)
    sheet = FiberSheet(
        pos,
        stretch_coefficient=stretch_coefficient,
        bend_coefficient=bend_coefficient,
    )
    return ImmersedStructure([sheet])


def circular_plate(
    fluid_shape: tuple[int, int, int],
    num_fibers: int = 21,
    nodes_per_fiber: int = 21,
    radius: float | None = None,
    fastened_radius_fraction: float = 0.3,
    center: tuple[float, float, float] | None = None,
    normal_axis: int = 0,
    stretch_coefficient: float = 1.0e-2,
    bend_coefficient: float = 1.0e-4,
    tether_coefficient: float = 1.0e-1,
) -> ImmersedStructure:
    """The flexible circular plate of paper Figure 1.

    A square node array carries an ``active`` mask selecting the disk of
    ``radius``; the inner disk of ``fastened_radius_fraction * radius``
    is tethered ("fastened in the middle region") by stiff springs.
    """
    if not 0.0 <= fastened_radius_fraction <= 1.0:
        raise ConfigurationError(
            "fastened_radius_fraction must lie in [0, 1], got "
            f"{fastened_radius_fraction}"
        )
    nx, ny, nz = fluid_shape
    if center is None:
        center = ((nx - 1) / 2.0, (ny - 1) / 2.0, (nz - 1) / 2.0)
    if radius is None:
        in_plane = [a for a in range(3) if a != normal_axis]
        radius = min(fluid_shape[a] for a in in_plane) / 4.0
    pos = sheet_node_grid(
        num_fibers, nodes_per_fiber, 2.0 * radius, 2.0 * radius, center, normal_axis
    )
    _check_fits(pos, fluid_shape)

    in_plane = [a for a in range(3) if a != normal_axis]
    d0 = pos[:, :, in_plane[0]] - center[in_plane[0]]
    d1 = pos[:, :, in_plane[1]] - center[in_plane[1]]
    rr = np.sqrt(d0**2 + d1**2)
    active = rr <= radius + 1e-9
    tethered = (rr <= fastened_radius_fraction * radius + 1e-9) & active
    if not active.any():
        raise ConfigurationError("circular plate mask selected no nodes")

    sheet = FiberSheet(
        pos,
        stretch_coefficient=stretch_coefficient,
        bend_coefficient=bend_coefficient,
        active=active,
        tethered=tethered,
        tether_coefficient=tether_coefficient if tethered.any() else 0.0,
    )
    return ImmersedStructure([sheet])


def parallel_sheets(
    fluid_shape: tuple[int, int, int],
    num_sheets: int = 3,
    spacing: float | None = None,
    num_fibers: int = 8,
    nodes_per_fiber: int = 8,
    width: float | None = None,
    height: float | None = None,
    normal_axis: int = 0,
    stretch_coefficient: float = 1.0e-2,
    bend_coefficient: float = 1.0e-4,
) -> ImmersedStructure:
    """A 3D flexible structure built from stacked 2D sheets.

    The paper represents 3D structures as "a number of 2-D sheets"; this
    builder stacks ``num_sheets`` identical flat sheets along the normal
    axis, centred in the box.  Sheets interact only through the fluid
    (no inter-sheet springs), the configuration used for studying
    sheet-sheet hydrodynamic coupling.
    """
    if num_sheets < 1:
        raise ConfigurationError(f"num_sheets must be positive, got {num_sheets}")
    nx, ny, nz = fluid_shape
    if spacing is None:
        spacing = max(2.0, fluid_shape[normal_axis] / (3.0 * num_sheets))
    span = spacing * (num_sheets - 1)
    if span >= fluid_shape[normal_axis] - 4:
        raise ConfigurationError(
            f"{num_sheets} sheets spaced {spacing} apart do not fit along "
            f"axis {normal_axis} of {fluid_shape}"
        )
    center = [(n - 1) / 2.0 for n in fluid_shape]
    in_plane = [a for a in range(3) if a != normal_axis]
    if width is None:
        width = fluid_shape[in_plane[0]] / 3.0
    if height is None:
        height = fluid_shape[in_plane[1]] / 3.0

    sheets = []
    first = center[normal_axis] - span / 2.0
    for i in range(num_sheets):
        sheet_center = list(center)
        sheet_center[normal_axis] = first + i * spacing
        pos = sheet_node_grid(
            num_fibers, nodes_per_fiber, width, height,
            tuple(sheet_center), normal_axis,
        )
        _check_fits(pos, fluid_shape)
        sheets.append(
            FiberSheet(
                pos,
                stretch_coefficient=stretch_coefficient,
                bend_coefficient=bend_coefficient,
            )
        )
    return ImmersedStructure(sheets)
