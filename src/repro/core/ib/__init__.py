"""Immersed-boundary structure solver (the "IB" in LBM-IB).

Submodules
----------
``fiber``          fiber sheets and immersed structures (paper Figure 4)
``geometry``       builders: flat sheet (Fig. 7), circular plate (Fig. 1)
``delta``          smoothed Dirac delta kernels (4x4x4 influential domain)
``forces``         bending / stretching / elastic forces (kernels 1-3)
``spreading``      force spreading to the fluid (kernel 4)
``interpolation``  fluid-velocity interpolation (half of kernel 8)
``motion``         fiber position update (kernel 8)
"""

from repro.core.ib.delta import CosineDelta, DeltaKernel, LinearDelta, ThreePointDelta, default_delta
from repro.core.ib.fiber import FiberSheet, ImmersedStructure

__all__ = [
    "CosineDelta",
    "DeltaKernel",
    "LinearDelta",
    "ThreePointDelta",
    "default_delta",
    "FiberSheet",
    "ImmersedStructure",
]
