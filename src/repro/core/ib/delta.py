"""Smoothed Dirac delta kernels for fluid-structure transfer.

The two-way interaction of the IB method is mediated by a smoothed
approximation of the Dirac delta function: elastic forces are *spread*
from Lagrangian fiber nodes to the Eulerian fluid grid, and fluid
velocity is *interpolated* back to the fiber nodes, both weighted by

    delta_h(x - X) = phi(x_0 - X_0) phi(x_1 - X_1) phi(x_2 - X_2) / h^3

The default kernel is Peskin's 4-point cosine function, whose support is
the ``4 x 4 x 4`` *influential domain* the paper describes for kernels 4
(``spread_force_from_fibers_to_fluid``) and 8 (``move_fibers``).  The
2-point (linear hat) and 3-point (Roma-Peskin) kernels are provided as
cheaper alternatives.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DTYPE

__all__ = [
    "DeltaKernel",
    "CosineDelta",
    "LinearDelta",
    "ThreePointDelta",
    "default_delta",
]


class DeltaKernel:
    """A tensor-product smoothed delta function.

    Attributes
    ----------
    support:
        Number of grid points per axis inside the kernel support; the
        influential domain is ``support^3`` fluid nodes.
    """

    support: int = 0

    def weight_1d(self, r: np.ndarray) -> np.ndarray:
        """One-dimensional kernel ``phi(r)``, vectorized over ``r``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def stencil(
        self, positions: np.ndarray, grid_shape: tuple[int, int, int] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Influential-domain indices and 3D weights for Lagrangian points.

        Parameters
        ----------
        positions:
            Lagrangian coordinates in lattice units, shape ``(N, 3)``.
        grid_shape:
            When given, indices are wrapped periodically into the grid.

        Returns
        -------
        (indices, weights):
            ``indices`` has shape ``(N, support, 3)`` — per point, the
            grid coordinates touched along each axis.  ``weights`` has
            shape ``(N, support, support, support)`` — the tensor-product
            3D delta weights, which sum to 1 per point (partition of
            unity).
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=DTYPE))
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(
                f"positions must have shape (N, 3), got {positions.shape}"
            )
        s = self.support
        # Leftmost grid point of the support: for even supports the point
        # floor(X) - (s/2 - 1), for odd supports round(X) - (s-1)/2.
        if s % 2 == 0:
            base = np.floor(positions).astype(np.int64) - (s // 2 - 1)
        else:
            base = np.rint(positions).astype(np.int64) - (s - 1) // 2
        offsets = np.arange(s, dtype=np.int64)
        indices = base[:, None, :] + offsets[None, :, None]  # (N, s, 3)
        r = indices.astype(DTYPE) - positions[:, None, :]  # grid - point
        w = self.weight_1d(r)  # (N, s, 3)
        weights = (
            w[:, :, None, None, 0] * w[:, None, :, None, 1] * w[:, None, None, :, 2]
        )
        if grid_shape is not None:
            indices = np.mod(indices, np.asarray(grid_shape, dtype=np.int64))
        return indices, weights


class CosineDelta(DeltaKernel):
    """Peskin's 4-point cosine kernel.

    ``phi(r) = (1 + cos(pi r / 2)) / 4`` for ``|r| <= 2``, else 0.
    Satisfies the partition of unity and the even/odd moment conditions
    required for second-order interpolation (Peskin 2002).
    """

    support = 4

    def weight_1d(self, r: np.ndarray) -> np.ndarray:  # noqa: D102
        r = np.asarray(r, dtype=DTYPE)
        out = 0.25 * (1.0 + np.cos(0.5 * np.pi * r))
        return np.where(np.abs(r) <= 2.0, out, 0.0)


class LinearDelta(DeltaKernel):
    """2-point hat kernel ``phi(r) = 1 - |r|`` for ``|r| <= 1``.

    Cheapest option (8-node influential domain) but only first-order
    smooth; provided for ablation studies.
    """

    support = 2

    def weight_1d(self, r: np.ndarray) -> np.ndarray:  # noqa: D102
        r = np.abs(np.asarray(r, dtype=DTYPE))
        return np.where(r <= 1.0, 1.0 - r, 0.0)


class ThreePointDelta(DeltaKernel):
    """Roma-Peskin 3-point kernel (27-node influential domain).

    ``phi(r) = (1 + sqrt(1 - 3 r^2)) / 3``              for ``|r| <= 1/2``
    ``phi(r) = (5 - 3|r| - sqrt(1 - 3(1-|r|)^2)) / 6``  for ``1/2 < |r| <= 3/2``
    """

    support = 3

    def weight_1d(self, r: np.ndarray) -> np.ndarray:  # noqa: D102
        r = np.abs(np.asarray(r, dtype=DTYPE))
        inner = (1.0 + np.sqrt(np.maximum(0.0, 1.0 - 3.0 * r**2))) / 3.0
        outer = (
            5.0 - 3.0 * r - np.sqrt(np.maximum(0.0, 1.0 - 3.0 * (1.0 - r) ** 2))
        ) / 6.0
        out = np.where(r <= 0.5, inner, np.where(r <= 1.5, outer, 0.0))
        return out


def default_delta() -> DeltaKernel:
    """The paper's kernel: 4-point cosine (4x4x4 influential domain)."""
    return CosineDelta()
