"""Fiber motion (paper kernel 8, ``move_fibers``).

A fiber node moves with the local fluid: its new position integrates the
interpolated fluid velocity with forward Euler (the IB no-slip
condition)::

    X_l(t + dt) = X_l(t) + dt * U(X_l)

The interpolation half re-uses
:func:`repro.core.ib.interpolation.interpolate_velocity`; this module
advances the positions.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DT
from repro.core.ib.delta import DeltaKernel
from repro.core.ib.fiber import FiberSheet
from repro.core.ib.interpolation import interpolate_velocity

__all__ = ["move_fibers"]


def move_fibers(
    sheet: FiberSheet,
    delta: DeltaKernel,
    velocity_grid: np.ndarray,
    dt: float = DT,
    rows=None,
    cache=None,
) -> np.ndarray:
    """Kernel 8: interpolate fluid velocity and advance fiber positions.

    Parameters
    ----------
    sheet:
        The fiber sheet to move (its ``velocity`` buffer is refreshed).
    delta:
        Smoothed delta kernel (influential-domain lookup).
    velocity_grid:
        Updated fluid velocity ``(3, Nx, Ny, Nz)`` (after kernel 7).
    dt:
        Time step (1 in lattice units).
    rows:
        Optional fiber indices; only those fibers are moved.
    cache:
        Optional :class:`~repro.core.ib.spreading.StencilCache` shared
        with this step's force spread (fused solver fast path).

    Returns
    -------
    numpy.ndarray
        The updated ``sheet.positions``.
    """
    interpolate_velocity(sheet, delta, velocity_grid, rows=rows, cache=cache)
    if rows is None:
        node_mask = sheet.active
    else:
        node_mask = np.zeros_like(sheet.active)
        node_mask[np.asarray(rows, dtype=np.int64)] = True
        node_mask &= sheet.active
    sheet.positions[node_mask] += dt * sheet.velocity[node_mask]
    return sheet.positions
