"""Velocity interpolation from fluid to fibers (first half of kernel 8).

The fiber node's velocity is dictated by the nearby fluid: it is the
delta-weighted average of the fluid velocity over the node's influential
domain::

    U(X_l) = sum_x u(x) * delta_h(x - X_l) * h^3
"""

from __future__ import annotations

import numpy as np

from repro.core.ib.delta import DeltaKernel
from repro.core.ib.fiber import FiberSheet
from repro.core.ib.spreading import flatten_stencil

__all__ = ["interpolate_values", "interpolate_velocity"]


def interpolate_values(
    positions: np.ndarray, source: np.ndarray, delta: DeltaKernel
) -> np.ndarray:
    """Gather the vector field ``source`` at Lagrangian ``positions``.

    Parameters
    ----------
    positions:
        Coordinates ``(N, 3)``.
    source:
        Eulerian vector field ``(3, Nx, Ny, Nz)``.
    delta:
        Smoothed delta kernel.

    Returns
    -------
    numpy.ndarray
        Interpolated vectors, shape ``(N, 3)``.
    """
    if positions.size == 0:
        return np.zeros((0, 3), dtype=source.dtype)
    grid_shape = source.shape[1:]
    indices, weights = delta.stencil(positions, grid_shape=grid_shape)
    flat_idx, flat_w = flatten_stencil(indices, weights, grid_shape)
    out = np.empty((positions.shape[0], 3), dtype=source.dtype)
    for comp in range(3):
        gathered = source[comp].reshape(-1)[flat_idx]
        out[:, comp] = np.einsum("ns,ns->n", gathered, flat_w)
    return out


def interpolate_velocity(
    sheet: FiberSheet,
    delta: DeltaKernel,
    velocity_grid: np.ndarray,
    rows=None,
) -> np.ndarray:
    """Write the interpolated fluid velocity into ``sheet.velocity``.

    Parameters
    ----------
    rows:
        Optional fiber indices restricting the computation, mirroring
        ``fiber2thread`` in the parallel solvers.
    """
    if rows is None:
        node_mask = sheet.active
    else:
        node_mask = np.zeros_like(sheet.active)
        node_mask[np.asarray(rows, dtype=np.int64)] = True
        node_mask &= sheet.active
    values = interpolate_values(sheet.positions[node_mask], velocity_grid, delta)
    sheet.velocity[node_mask] = values
    return sheet.velocity
