"""Velocity interpolation from fluid to fibers (first half of kernel 8).

The fiber node's velocity is dictated by the nearby fluid: it is the
delta-weighted average of the fluid velocity over the node's influential
domain::

    U(X_l) = sum_x u(x) * delta_h(x - X_l) * h^3
"""

from __future__ import annotations

import numpy as np

from repro.core.ib.delta import DeltaKernel
from repro.core.ib.fiber import FiberSheet
from repro.core.ib.spreading import StencilCache, flatten_stencil

__all__ = ["interpolate_values", "interpolate_velocity"]


def interpolate_values(
    positions: np.ndarray,
    source: np.ndarray,
    delta: DeltaKernel,
    flat_stencil: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Gather the vector field ``source`` at Lagrangian ``positions``.

    Parameters
    ----------
    positions:
        Coordinates ``(N, 3)``.
    source:
        Eulerian vector field ``(3, Nx, Ny, Nz)``.
    delta:
        Smoothed delta kernel.
    flat_stencil:
        Optional precomputed ``(flat_idx, flat_w)`` for ``positions``
        (from :func:`~repro.core.ib.spreading.flatten_stencil`), e.g.
        the stencil already evaluated by this step's force spread.

    Returns
    -------
    numpy.ndarray
        Interpolated vectors, shape ``(N, 3)``.
    """
    grid_shape = source.shape[1:]
    if flat_stencil is None and positions.size:
        indices, weights = delta.stencil(positions, grid_shape=grid_shape)
        flat_idx, flat_w = flatten_stencil(indices, weights, grid_shape)
    elif flat_stencil is not None:
        flat_idx, flat_w = flat_stencil
    else:
        flat_idx = flat_w = np.zeros((0, 1))  # backend-lint: ok (zero-size sentinel)
    # The gather reduction runs at the delta-weight dtype (float64 —
    # fiber state stays double precision regardless of the fluid's
    # storage policy), so the result dtype follows the weights.
    out_dtype = np.result_type(source.dtype, flat_w.dtype)
    if positions.size == 0:
        return np.zeros((0, 3), dtype=out_dtype)
    out = np.empty((positions.shape[0], 3), dtype=out_dtype)
    for comp in range(3):
        gathered = source[comp].reshape(-1)[flat_idx]
        out[:, comp] = np.einsum("ns,ns->n", gathered, flat_w)
    return out


def interpolate_velocity(
    sheet: FiberSheet,
    delta: DeltaKernel,
    velocity_grid: np.ndarray,
    rows=None,
    cache: StencilCache | None = None,
) -> np.ndarray:
    """Write the interpolated fluid velocity into ``sheet.velocity``.

    Parameters
    ----------
    rows:
        Optional fiber indices restricting the computation, mirroring
        ``fiber2thread`` in the parallel solvers.
    cache:
        Optional :class:`~repro.core.ib.spreading.StencilCache` holding
        the stencil evaluated by this step's force spread; reused here
        so each step computes delta weights once per sheet.  Only valid
        without ``rows``.
    """
    if rows is None:
        node_mask = sheet.active
    else:
        node_mask = np.zeros_like(sheet.active)
        node_mask[np.asarray(rows, dtype=np.int64)] = True
        node_mask &= sheet.active
    flat_stencil = None
    if cache is not None and rows is None:
        flat_stencil = cache.flat_stencil(sheet, delta, velocity_grid.shape[1:])
    values = interpolate_values(
        sheet.positions[node_mask], velocity_grid, delta, flat_stencil=flat_stencil
    )
    sheet.velocity[node_mask] = values
    return sheet.velocity
