"""Lagrangian fiber structures (paper Figure 4).

A flexible structure is a collection of 2D *fiber sheets*.  Each sheet is
an array of fibers; each fiber is a row of fiber nodes.  Node ``(i, j)``
of a sheet lives at ``positions[i, j]`` where ``i`` indexes the fiber and
``j`` the node along the fiber.  Per-node buffers hold the bending,
stretching and total elastic force (kernels 1-3) and the interpolated
velocity (kernel 8).

Sheets may carry an ``active`` mask (used to cut non-rectangular shapes
such as the circular plate of paper Figure 1 out of a rectangular node
array) and a ``tethered`` mask with anchor positions (the plate is
"fastened in the middle region" by stiff tether springs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DTYPE
from repro.errors import ConfigurationError

__all__ = ["FiberSheet", "ImmersedStructure"]


@dataclass
class FiberSheet:
    """A 2D sheet of flexible fibers.

    Parameters
    ----------
    positions:
        Node coordinates in lattice units, shape ``(num_fibers,
        nodes_per_fiber, 3)``.
    stretch_coefficient:
        Spring constant ``k_s`` of the stretching (tension) force.
    bend_coefficient:
        Coefficient ``k_b`` of the bending (flexural rigidity) force.
    rest_spacing_fiber / rest_spacing_cross:
        Rest lengths of the springs along a fiber and across fibers.
        Default to the initial mean spacings.
    active:
        Optional boolean mask ``(num_fibers, nodes_per_fiber)``; inactive
        nodes carry no force, do not spread, and do not move.
    tethered:
        Optional boolean mask of tethered (fastened) nodes.
    tether_coefficient:
        Stiff-spring constant pulling tethered nodes to their anchors.
    """

    positions: np.ndarray
    stretch_coefficient: float = 1.0e-2
    bend_coefficient: float = 1.0e-4
    rest_spacing_fiber: float | None = None
    rest_spacing_cross: float | None = None
    active: np.ndarray | None = None
    tethered: np.ndarray | None = None
    tether_coefficient: float = 0.0
    anchors: np.ndarray = field(init=False, repr=False)
    bending_force: np.ndarray = field(init=False, repr=False)
    stretching_force: np.ndarray = field(init=False, repr=False)
    elastic_force: np.ndarray = field(init=False, repr=False)
    velocity: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.positions = np.array(self.positions, dtype=DTYPE)
        if self.positions.ndim != 3 or self.positions.shape[2] != 3:
            raise ConfigurationError(
                "positions must have shape (num_fibers, nodes_per_fiber, 3), "
                f"got {self.positions.shape}"
            )
        nf, nn, _ = self.positions.shape
        if nf < 1 or nn < 1:
            raise ConfigurationError("a fiber sheet needs at least one node")
        if self.stretch_coefficient < 0 or self.bend_coefficient < 0:
            raise ConfigurationError("force coefficients must be non-negative")

        if self.active is None:
            self.active = np.ones((nf, nn), dtype=bool)
        else:
            self.active = np.asarray(self.active, dtype=bool)
            if self.active.shape != (nf, nn):
                raise ConfigurationError(
                    f"active mask shape {self.active.shape} != node grid {(nf, nn)}"
                )
        if self.tethered is None:
            self.tethered = np.zeros((nf, nn), dtype=bool)
        else:
            self.tethered = np.asarray(self.tethered, dtype=bool)
            if self.tethered.shape != (nf, nn):
                raise ConfigurationError(
                    f"tethered mask shape {self.tethered.shape} != node grid {(nf, nn)}"
                )
        if self.tethered.any() and self.tether_coefficient <= 0.0:
            raise ConfigurationError(
                "tethered nodes given but tether_coefficient is not positive"
            )

        if self.rest_spacing_fiber is None:
            self.rest_spacing_fiber = self._mean_spacing(axis=1)
        if self.rest_spacing_cross is None:
            self.rest_spacing_cross = self._mean_spacing(axis=0)

        self.anchors = self.positions.copy()
        self.bending_force = np.zeros_like(self.positions)
        self.stretching_force = np.zeros_like(self.positions)
        self.elastic_force = np.zeros_like(self.positions)
        self.velocity = np.zeros_like(self.positions)

    def _mean_spacing(self, axis: int) -> float:
        if self.positions.shape[axis] < 2:
            return 1.0
        diffs = np.diff(self.positions, axis=axis)
        lengths = np.linalg.norm(diffs, axis=-1)
        return float(lengths.mean()) if lengths.size else 1.0

    # ------------------------------------------------------------------
    @property
    def num_fibers(self) -> int:
        """Number of fibers (rows) in the sheet."""
        return self.positions.shape[0]

    @property
    def nodes_per_fiber(self) -> int:
        """Number of nodes along each fiber."""
        return self.positions.shape[1]

    @property
    def num_nodes(self) -> int:
        """Total node count ``num_fibers * nodes_per_fiber``."""
        return self.num_fibers * self.nodes_per_fiber

    @property
    def num_active_nodes(self) -> int:
        """Number of nodes taking part in the dynamics."""
        return int(self.active.sum())

    @property
    def area_element(self) -> float:
        """Lagrangian area element ``ds1 * ds2`` used when spreading force."""
        return float(self.rest_spacing_fiber * self.rest_spacing_cross)

    def active_positions(self) -> np.ndarray:
        """Coordinates of the active nodes, shape ``(num_active_nodes, 3)``."""
        return self.positions[self.active]

    def reset_forces(self) -> None:
        """Zero all force buffers (start of a time step)."""
        self.bending_force[...] = 0.0
        self.stretching_force[...] = 0.0
        self.elastic_force[...] = 0.0

    def copy(self) -> "FiberSheet":
        """Deep copy of the sheet's full state."""
        clone = FiberSheet(
            self.positions.copy(),
            stretch_coefficient=self.stretch_coefficient,
            bend_coefficient=self.bend_coefficient,
            rest_spacing_fiber=self.rest_spacing_fiber,
            rest_spacing_cross=self.rest_spacing_cross,
            active=self.active.copy(),
            tethered=self.tethered.copy(),
            tether_coefficient=self.tether_coefficient,
        )
        clone.anchors[...] = self.anchors
        clone.bending_force[...] = self.bending_force
        clone.stretching_force[...] = self.stretching_force
        clone.elastic_force[...] = self.elastic_force
        clone.velocity[...] = self.velocity
        return clone

    def state_allclose(self, other: "FiberSheet", rtol: float = 1e-12, atol: float = 1e-13) -> bool:
        """True if positions, forces and velocity match within tolerance."""
        return (
            self.positions.shape == other.positions.shape
            and np.allclose(self.positions, other.positions, rtol=rtol, atol=atol)
            and np.allclose(self.elastic_force, other.elastic_force, rtol=rtol, atol=atol)
            and np.allclose(self.velocity, other.velocity, rtol=rtol, atol=atol)
        )

    def centroid(self) -> np.ndarray:
        """Centroid of the active nodes."""
        return self.active_positions().mean(axis=0)

    def stretch_energy(self) -> float:
        """Discrete stretching energy ``k_s/2 sum (|link| - L0)^2``.

        Sums over the along-fiber and cross-fiber spring links between
        active node pairs; a flat sheet at rest spacing has zero energy.
        """
        total = 0.0
        for axis, rest in ((1, self.rest_spacing_fiber), (0, self.rest_spacing_cross)):
            n = self.positions.shape[axis]
            if n < 2:
                continue
            d = np.diff(self.positions, axis=axis)
            length = np.linalg.norm(d, axis=-1)
            lo = [slice(None)] * 2
            hi = [slice(None)] * 2
            lo[axis] = slice(0, n - 1)
            hi[axis] = slice(1, n)
            ok = self.active[tuple(lo)] & self.active[tuple(hi)]
            total += float(((length - rest) ** 2)[ok].sum())
        return 0.5 * self.stretch_coefficient * total

    def bend_energy(self) -> float:
        """Discrete bending energy ``k_b/2 sum |D2 X|^2`` over both axes."""
        from repro.core.ib.forces import second_difference

        total = 0.0
        for axis in (0, 1):
            curvature = second_difference(self.positions, axis, valid=self.active)
            total += float((curvature**2).sum())
        return 0.5 * self.bend_coefficient * total

    def elastic_energy(self) -> float:
        """Stretching + bending energy (the quantity the forces descend)."""
        return self.stretch_energy() + self.bend_energy()

    def max_stretch_ratio(self) -> float:
        """Largest link length relative to its rest length.

        A stability diagnostic: values far above 1 signal a runaway
        (over-stiff or under-resolved) structure.
        """
        worst = 1.0
        for axis, rest in ((1, self.rest_spacing_fiber), (0, self.rest_spacing_cross)):
            n = self.positions.shape[axis]
            if n < 2 or rest <= 0:
                continue
            d = np.diff(self.positions, axis=axis)
            length = np.linalg.norm(d, axis=-1)
            lo = [slice(None)] * 2
            hi = [slice(None)] * 2
            lo[axis] = slice(0, n - 1)
            hi[axis] = slice(1, n)
            ok = self.active[tuple(lo)] & self.active[tuple(hi)]
            if ok.any():
                worst = max(worst, float((length[ok] / rest).max()))
        return worst


@dataclass
class ImmersedStructure:
    """A flexible structure: one or more fiber sheets.

    The paper represents a 3D flexible structure as a number of 2D
    sheets; the solver kernels iterate over ``sheets``.
    """

    sheets: list[FiberSheet]

    def __post_init__(self) -> None:
        if not self.sheets:
            raise ConfigurationError("an immersed structure needs at least one sheet")

    @property
    def num_nodes(self) -> int:
        """Total fiber-node count across all sheets."""
        return sum(s.num_nodes for s in self.sheets)

    @property
    def num_fibers(self) -> int:
        """Total fiber count across all sheets."""
        return sum(s.num_fibers for s in self.sheets)

    def reset_forces(self) -> None:
        """Zero force buffers of every sheet."""
        for s in self.sheets:
            s.reset_forces()

    def copy(self) -> "ImmersedStructure":
        """Deep copy of all sheets."""
        return ImmersedStructure([s.copy() for s in self.sheets])

    def state_allclose(self, other: "ImmersedStructure", rtol: float = 1e-12, atol: float = 1e-13) -> bool:
        """True if every sheet matches within tolerance."""
        return len(self.sheets) == len(other.sheets) and all(
            a.state_allclose(b, rtol=rtol, atol=atol)
            for a, b in zip(self.sheets, other.sheets)
        )

    def elastic_energy(self) -> float:
        """Total elastic energy over all sheets."""
        return sum(s.elastic_energy() for s in self.sheets)

    def max_stretch_ratio(self) -> float:
        """Worst link stretch over all sheets (stability diagnostic)."""
        return max(s.max_stretch_ratio() for s in self.sheets)
