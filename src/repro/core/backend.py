"""Array backend: the single allocation authority for field arrays.

Every field allocation in the solver hot paths goes through an
:class:`ArrayBackend` — a thin namespace bundling three orthogonal
knobs that the rest of the code never hardcodes:

* **array module** (``xp``): :mod:`numpy` today.  Anything exposing the
  small duck-typed surface used here (``empty``/``zeros``/``full``/
  ``asarray``) can be injected via :func:`set_default_backend` — the
  cupy extension point called out in the ROADMAP.  No isinstance
  checks anywhere downstream; kernels derive dtypes from the arrays
  they receive.
* **precision policy** (:class:`Precision`): maps a config-level name
  (``"float64"`` | ``"float32"`` | ``"mixed"``) to a *storage* dtype
  (what persistent fields — ``df``, ``df_new``, density, velocity,
  force — are allocated at) and a *compute* dtype (what scratch
  buffers and reduction accumulators use).  ``mixed`` stores the
  D3Q19 lattice in float32 (halving the dominant memory traffic) while
  keeping collision moments and IB spread/interpolate reductions in
  float64.
* **layout** (``order``): default C order with per-call override, so a
  field can be laid out Fortran-ordered without touching call sites.

The float64 policy is bit-identical to the pre-backend code: kernels
derive dtypes from their operands, and every reduction passes an
explicit accumulator dtype that degenerates to a no-op at float64.
The golden SHA-256 baselines therefore pin the float64 path exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Precision",
    "FLOAT64",
    "FLOAT32",
    "MIXED",
    "PRECISIONS",
    "resolve_precision",
    "ArrayBackend",
    "default_backend",
    "set_default_backend",
    "backend_for",
    "lattice_constants",
    "state_tolerance",
    "oracle_tolerance",
    "invariant_scale",
    "dtype_bytes",
]


@dataclass(frozen=True)
class Precision:
    """A named (storage dtype, compute dtype) policy.

    ``storage`` is the dtype persistent field arrays are allocated at;
    ``compute`` is the dtype of scratch-arena buffers and reduction
    accumulators.  ``float64``/``float32`` use one dtype for both;
    ``mixed`` pairs float32 storage with float64 accumulation.
    """

    name: str
    storage: np.dtype
    compute: np.dtype

    @property
    def storage_itemsize(self) -> int:
        """Bytes per element of a stored field value (8, 4, 4)."""
        return int(self.storage.itemsize)


FLOAT64 = Precision("float64", np.dtype(np.float64), np.dtype(np.float64))
FLOAT32 = Precision("float32", np.dtype(np.float32), np.dtype(np.float32))
MIXED = Precision("mixed", np.dtype(np.float32), np.dtype(np.float64))

#: Config-level names accepted by ``SimulationConfig.precision``.
PRECISIONS = ("float64", "float32", "mixed")

_BY_NAME = {p.name: p for p in (FLOAT64, FLOAT32, MIXED)}


def resolve_precision(precision: "str | Precision | None") -> Precision:
    """Normalize a policy name (or pass through a policy) to a Precision."""
    if precision is None:
        return FLOAT64
    if isinstance(precision, Precision):
        return precision
    try:
        return _BY_NAME[str(precision)]
    except KeyError:
        raise ConfigurationError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        ) from None


@dataclass(frozen=True)
class ArrayBackend:
    """Allocation namespace: array module + precision + default layout.

    ``xp`` is duck-typed — swap in any module with numpy's allocation
    surface (``empty``/``zeros``/``full``/``asarray``) to retarget
    every field allocation without touching the solvers.
    """

    xp: Any = np
    precision: Precision = FLOAT64
    order: str = "C"

    def _dtype(self, kind: str) -> np.dtype:
        if kind == "storage":
            return self.precision.storage
        if kind == "compute":
            return self.precision.compute
        raise ValueError(f"kind must be 'storage' or 'compute', got {kind!r}")

    def empty(self, shape, kind: str = "storage", order: str | None = None):
        """Uninitialized array at the policy's storage/compute dtype."""
        return self.xp.empty(
            shape, dtype=self._dtype(kind), order=order or self.order
        )

    def zeros(self, shape, kind: str = "storage", order: str | None = None):
        """Zero-filled array at the policy's storage/compute dtype."""
        return self.xp.zeros(
            shape, dtype=self._dtype(kind), order=order or self.order
        )

    def full(self, shape, fill, kind: str = "storage", order: str | None = None):
        """Constant-filled array at the policy's storage/compute dtype."""
        return self.xp.full(
            shape, fill, dtype=self._dtype(kind), order=order or self.order
        )

    def asarray(self, values, kind: str = "storage"):
        """Convert to an array at the policy's storage/compute dtype."""
        return self.xp.asarray(values, dtype=self._dtype(kind))


_default_backend = ArrayBackend()


def default_backend() -> ArrayBackend:
    """The process-wide backend new grids derive their ``xp`` from."""
    return _default_backend


def set_default_backend(backend: ArrayBackend) -> ArrayBackend:
    """Install a new default backend; returns the previous one.

    This is the injection extension point: pass an ``ArrayBackend``
    wrapping a cupy-like module and every subsequently constructed
    grid allocates through it.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = backend
    return previous


def backend_for(
    precision: "str | Precision | None", order: str = "C"
) -> ArrayBackend:
    """A backend sharing the default ``xp`` at the requested precision."""
    return ArrayBackend(
        xp=_default_backend.xp,
        precision=resolve_precision(precision),
        order=order,
    )


# ----------------------------------------------------------------------
# Per-dtype lattice constants.
#
# The float64 E/W tables in repro.core.lbm.lattice are the source of
# truth; pure-float32 kernels need float32 casts so e.g. the momentum
# GEMM runs without promotion.  Cached per dtype (tiny, immutable).
_LATTICE_CACHE: dict[str, tuple[np.ndarray, np.ndarray]] = {}


def lattice_constants(dtype) -> tuple[np.ndarray, np.ndarray]:
    """``(E_FLOAT, W)`` cast to ``dtype`` (cached)."""
    from repro.core.lbm.lattice import E_FLOAT, W

    key = np.dtype(dtype).str
    cached = _LATTICE_CACHE.get(key)
    if cached is None:
        cached = (
            np.ascontiguousarray(E_FLOAT, dtype=dtype),
            np.ascontiguousarray(W, dtype=dtype),
        )
        _LATTICE_CACHE[key] = cached
    return cached


# ----------------------------------------------------------------------
# Per-precision tolerances.
#
# float64 values are the historical (pre-backend) defaults; the float32
# rows budget for ~2^-24 relative rounding per operation accumulated
# over the few hundred flops a node sees per step.  ``mixed`` keeps
# float64 accumulation, so only the storage round-trip (one cast per
# field per step) contributes — but state comparisons still see
# float32-quantized fields, hence the shared single-precision rows.

#: precision name -> (rtol, atol) for FluidGrid.state_allclose.
_STATE_TOL = {
    "float64": (1e-12, 1e-13),
    "float32": (1e-5, 1e-6),
    "mixed": (1e-5, 1e-6),
}

#: precision name -> (rtol, atol) for the differential oracle.
_ORACLE_TOL = {
    "float64": (1e-9, 1e-11),
    "float32": (1e-4, 1e-6),
    "mixed": (5e-5, 5e-7),
}

#: precision name -> multiplier applied to float64 invariant tolerances
#: (mass-conservation rtol, momentum-consistency atol).
_INVARIANT_SCALE = {
    "float64": 1.0,
    "float32": 1e5,
    "mixed": 1e4,
}


def state_tolerance(precision: "str | Precision | None") -> tuple[float, float]:
    """``(rtol, atol)`` for exact-ish state comparison at a precision."""
    return _STATE_TOL[resolve_precision(precision).name]


def oracle_tolerance(precision: "str | Precision | None") -> tuple[float, float]:
    """``(rtol, atol)`` for cross-variant oracle runs at a precision."""
    return _ORACLE_TOL[resolve_precision(precision).name]


def invariant_scale(precision: "str | Precision | None") -> float:
    """Multiplier for float64-calibrated invariant tolerances."""
    return _INVARIANT_SCALE[resolve_precision(precision).name]


def dtype_bytes(precision: "str | Precision | None") -> int:
    """Stored bytes per field element — the machine-model scaling term."""
    return resolve_precision(precision).storage_itemsize
