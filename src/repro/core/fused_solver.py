"""Memory-aware fused LBM-IB solver (``variant="fused"``).

:class:`FusedLBMIBSolver` executes the same nine-kernel time step as the
sequential solver (paper Algorithm 1) but restructured around memory
traffic rather than kernel boundaries:

* kernels 5 + 6 run as one lattice traversal
  (:func:`repro.core.lbm.fused.fused_collide_stream`) — the equilibrium
  lattice and the whole-grid post-collision intermediate never
  materialize;
* kernel 9's full-buffer copy becomes a pointer swap
  (:meth:`~repro.core.lbm.fields.FluidGrid.swap_distributions`);
* kernel 7 runs allocation-free
  (:func:`repro.core.coupling.update_velocity_fields_inplace`);
* kernels 4 and 8 share one delta-stencil evaluation per sheet per step
  (:class:`~repro.core.ib.spreading.StencilCache`);
* every scratch buffer comes from the grid-owned arena, so a
  steady-state fluid step performs zero numpy array allocations.

Boundary conditions that read post-collision values (bounce-back walls)
declare the directions they need via
:meth:`~repro.core.lbm.boundaries.Boundary.post_dependencies`; the
solver captures exactly those face layers during the sweep and feeds
them to :meth:`~repro.core.lbm.boundaries.Boundary.apply_fused`.

The step is numerically equivalent to the sequential solver's — the
differential oracle (:mod:`repro.verify.oracle`) gates the variant
against ``sequential`` for both BGK and TRT.  The only state difference
is bookkeeping: after a fused step ``df_new`` holds the *previous*
step's post-collision distributions instead of a copy of ``df`` (every
consumer either ignores ``df_new`` or overwrites it before reading).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

from repro.constants import DT
from repro.core import kernels
from repro.core.coupling import update_velocity_fields_inplace
from repro.core.ib import motion as _motion
from repro.core.ib import spreading as _spreading
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.lbm.boundaries import Boundary, face_index, validate_boundaries
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.fused import fused_collide_stream

__all__ = ["FusedLBMIBSolver"]


@dataclass
class FusedLBMIBSolver:
    """Run the LBM-IB method through the fused, allocation-free hot path.

    Constructor parameters mirror
    :class:`~repro.core.solver.SequentialLBMIBSolver` exactly — the two
    are drop-in interchangeable (``api.build_solver`` dispatches on the
    config's ``solver`` field).
    """

    fluid: FluidGrid
    structure: ImmersedStructure | None
    delta: DeltaKernel = field(default_factory=default_delta)
    boundaries: Sequence[Boundary] = field(default_factory=list)
    dt: float = DT
    kernel_timer: Callable[[str, float], None] | None = None
    check_stability_every: int = 0
    external_force: tuple[float, float, float] | None = None
    fault_hook: Callable[[int, int], None] | None = None
    tracer: "Tracer | None" = None
    time_step: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        validate_boundaries(list(self.boundaries))
        self._stencil_cache = _spreading.StencilCache()
        self._ext: np.ndarray | None = None
        if self.external_force is not None:
            self._ext = np.asarray(
                self.external_force, dtype=self.fluid.force.dtype
            ).reshape(3, 1, 1, 1)
            self.fluid.force[...] = self._ext
        self._build_capture_plan()

    def _build_capture_plan(self) -> None:
        """Preallocate face buffers for boundaries that read df_post."""
        shape = self.fluid.shape
        face_dtype = self.fluid.df.dtype
        # direction -> [(face index tuple, destination buffer), ...]
        plan: dict[int, list[tuple[tuple, np.ndarray]]] = {}
        # (boundary, {direction: captured face layer}) in apply order
        self._fused_boundaries: list[tuple[Boundary, dict[int, np.ndarray]]] = []
        for boundary in self.boundaries:
            faces: dict[int, np.ndarray] = {}
            deps = boundary.post_dependencies()
            if deps:
                idx = face_index(boundary.axis, boundary.side, shape)
                face_shape = self.fluid.df[0][idx].shape
                for direction in deps:
                    buf = np.empty(face_shape, dtype=face_dtype)
                    faces[direction] = buf
                    plan.setdefault(int(direction), []).append((idx, buf))
            self._fused_boundaries.append((boundary, faces))
        self._capture_plan = plan
        self._capture = self._capture_faces if plan else None

    def _capture_faces(self, direction: int, post: np.ndarray) -> None:
        for idx, buf in self._capture_plan.get(direction, ()):
            buf[...] = post[idx]

    # ------------------------------------------------------------------
    def _timed(self, name: str, fn: Callable[[], None]) -> None:
        tracer = self.tracer
        if tracer is None and self.kernel_timer is None:
            fn()
            return
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if self.kernel_timer is not None:
            self.kernel_timer(name, elapsed)
        if tracer is not None:
            tracer.record(name, 0, start, elapsed, step=self.time_step)

    def _collide_stream_boundaries(self) -> None:
        fused_collide_stream(self.fluid, capture=self._capture)
        df_new = self.fluid.df_new
        for boundary, faces in self._fused_boundaries:
            boundary.apply_fused(faces, df_new)

    def _spread_forces(self) -> None:
        for sheet in self.structure.sheets:
            _spreading.spread_forces(
                sheet, self.delta, self.fluid.force, cache=self._stencil_cache
            )

    def _move_fibers(self) -> None:
        for sheet in self.structure.sheets:
            _motion.move_fibers(
                sheet,
                self.delta,
                self.fluid.velocity,
                dt=self.dt,
                cache=self._stencil_cache,
            )

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one time step through the fused hot path."""
        if self.fault_hook is not None:
            self.fault_hook(0, self.time_step)
        fluid, structure = self.fluid, self.structure

        # --- IB related (kernels 1-4, unchanged physics) ---
        if structure is not None:
            self._timed(
                "compute_bending_force_in_fibers",
                lambda: kernels.compute_bending_force_in_fibers(structure),
            )
            self._timed(
                "compute_stretching_force_in_fibers",
                lambda: kernels.compute_stretching_force_in_fibers(structure),
            )
            self._timed(
                "compute_elastic_force_in_fibers",
                lambda: kernels.compute_elastic_force_in_fibers(structure),
            )
            self._stencil_cache.begin_step()
            # reset=False semantics: the force field already holds exactly
            # the external body force (re-seeded at the end of every step).
            self._timed("spread_force_from_fibers_to_fluid", self._spread_forces)

        # --- LBM related: kernels 5 + 6 in one traversal ---
        self._timed("fused_collide_stream", self._collide_stream_boundaries)

        # --- FSI coupling related ---
        self._timed(
            "update_fluid_velocity",
            lambda: update_velocity_fields_inplace(
                fluid, fluid.arena.vector("fused_momentum")
            ),
        )
        if structure is not None:
            self._timed("move_fibers", self._move_fibers)
            # The interpolation was the stencil's last consumer; release
            # it so no dead stencil arrays stay retained after the run.
            self._stencil_cache.end_step()
        # Kernel 9 degenerates to a pointer swap (two-lattice scheme).
        self._timed("swap_distributions", fluid.swap_distributions)

        if self._ext is None:
            fluid.force[...] = 0.0
        else:
            fluid.force[...] = self._ext

        self.time_step += 1
        if (
            self.check_stability_every
            and self.time_step % self.check_stability_every == 0
        ):
            fluid.validate_stable()
            if structure is not None:
                from repro.errors import StabilityError

                for sheet in structure.sheets:
                    if not np.isfinite(sheet.positions).all():
                        raise StabilityError(
                            "fiber positions contain non-finite values; the "
                            "structure solver has become unstable (reduce "
                            "stiffness or the time step)"
                        )

    def run(self, num_steps: int, observer=None) -> None:
        """Run ``num_steps`` time steps, optionally reporting each step."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        for _ in range(num_steps):
            self.step()
            if observer is not None:
                observer(self.time_step, self)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Shallow diagnostic snapshot of the headline state arrays."""
        return {
            "velocity": self.fluid.velocity.copy(),
            "density": self.fluid.density.copy(),
            "force": self.fluid.force.copy(),
            "fiber_positions": (
                [s.positions.copy() for s in self.structure.sheets]
                if self.structure is not None
                else []
            ),
        }
