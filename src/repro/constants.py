"""Global numerical constants used across the LBM-IB library.

Lattice units are used throughout: the grid spacing ``DX`` and time step
``DT`` are both 1, as is conventional for lattice Boltzmann codes.  The
lattice speed of sound for the D3Q19 model is ``cs = 1/sqrt(3)``.
"""

from __future__ import annotations

import numpy as np

#: Grid spacing in lattice units.
DX: float = 1.0

#: Time step in lattice units.
DT: float = 1.0

#: Lattice speed of sound squared for D3Q19 (= 1/3 in lattice units).
CS2: float = 1.0 / 3.0

#: Lattice speed of sound.
CS: float = float(np.sqrt(CS2))

#: Default fluid mass density in lattice units.
RHO0: float = 1.0

#: Number of discrete velocities in the D3Q19 model.
Q: int = 19

#: Spatial dimensionality.
DIM: int = 3

#: Default floating point dtype for all field arrays.
DTYPE = np.float64

#: Relative tolerance used when asserting parallel == sequential equivalence.
EQUIV_RTOL: float = 1e-12

#: Absolute tolerance used when asserting parallel == sequential equivalence.
EQUIV_ATOL: float = 1e-13


def viscosity_from_tau(tau: float) -> float:
    """Kinematic viscosity implied by the BGK relaxation time ``tau``.

    ``nu = cs^2 * (tau - 1/2) * dt`` in lattice units.
    """
    return CS2 * (tau - 0.5) * DT


def tau_from_viscosity(nu: float) -> float:
    """BGK relaxation time that realizes kinematic viscosity ``nu``."""
    return nu / (CS2 * DT) + 0.5
