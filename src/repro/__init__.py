"""LBM-IB: a parallel library for 3D fluid-structure interaction problems.

Reproduction of "LBM-IB: A Parallel Library to Solve 3D Fluid-Structure
Interaction Problems on Manycore Systems" (ICPP 2015).  The library
couples a D3Q19 lattice Boltzmann fluid solver with an immersed-boundary
treatment of flexible fiber structures and offers three solver variants:

* :class:`repro.core.SequentialLBMIBSolver` -- Algorithm 1;
* :class:`repro.parallel.OpenMPLBMIBSolver` -- slab-parallel, per-kernel
  fork-join (Algorithms 2-3);
* :class:`repro.parallel.CubeLBMIBSolver` -- the cube-centric data-layout
  algorithm (Algorithm 4).

The :mod:`repro.machine` package provides the simulated manycore machine
(NUMA topology, caches, bandwidth) used to reproduce the paper's scaling
figures on commodity hardware, and :mod:`repro.experiments` regenerates
every table and figure of the evaluation section.

Quickstart
----------
>>> from repro.api import Simulation, SimulationConfig
>>> sim = Simulation(SimulationConfig(fluid_shape=(32, 16, 16)))
>>> sim.run(10)
>>> sim.fluid.velocity.shape
(3, 32, 16, 16)
"""

from repro._version import __version__

__all__ = ["__version__", "SimulationService", "TenantSpec"]


def __getattr__(name):
    # Lazy service exports: `from repro import SimulationService` without
    # paying the asyncio/service import on every library use.
    if name in ("SimulationService", "TenantSpec"):
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
