"""I/O: VTK visualization output, npz checkpointing, CSV result files."""

from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.csvout import read_csv, write_csv
from repro.io.vtk import write_fluid_vtk, write_structure_vtk

__all__ = [
    "load_checkpoint",
    "save_checkpoint",
    "read_csv",
    "write_csv",
    "write_fluid_vtk",
    "write_structure_vtk",
]
