"""CSV emission for experiment results.

The benchmark harness writes every regenerated table/figure both as a
paper-style text table and as CSV rows, so downstream plotting (e.g.
regenerating the figures graphically) needs no re-run.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence

__all__ = ["write_csv", "read_csv"]


def write_csv(
    path: str | os.PathLike,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write ``rows`` under ``headers`` to ``path``."""
    ncols = len(headers)
    for i, row in enumerate(rows):
        if len(row) != ncols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncols}")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        writer.writerows(rows)


def read_csv(path: str | os.PathLike) -> tuple[list[str], list[list[str]]]:
    """Read ``(headers, rows)`` back from ``path``."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    return rows[0], rows[1:]
