"""Checkpoint / restore of a full simulation state (npz format).

Long FSI runs are expensive; checkpoints capture the fluid grid and the
immersed structure exactly (both distribution buffers, both velocity
fields, positions, forces) so a restored run continues bit-for-bit.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.core.lbm.fields import FluidGrid
from repro.errors import CheckpointError

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(
    path: str | os.PathLike,
    fluid: FluidGrid,
    structure: ImmersedStructure | None = None,
    time_step: int = 0,
) -> None:
    """Write the complete state to ``path`` (npz)."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "time_step": np.array(time_step),
        "shape": np.array(fluid.shape),
        "tau": np.array(fluid.tau),
        "collision_operator": np.array(fluid.collision_operator),
        "df": fluid.df,
        "df_new": fluid.df_new,
        "density": fluid.density,
        "velocity": fluid.velocity,
        "velocity_shifted": fluid.velocity_shifted,
        "force": fluid.force,
        "num_sheets": np.array(0 if structure is None else len(structure.sheets)),
    }
    if structure is not None:
        for i, s in enumerate(structure.sheets):
            payload[f"sheet{i}_positions"] = s.positions
            payload[f"sheet{i}_anchors"] = s.anchors
            payload[f"sheet{i}_active"] = s.active
            payload[f"sheet{i}_tethered"] = s.tethered
            payload[f"sheet{i}_velocity"] = s.velocity
            payload[f"sheet{i}_bending"] = s.bending_force
            payload[f"sheet{i}_stretching"] = s.stretching_force
            payload[f"sheet{i}_elastic"] = s.elastic_force
            payload[f"sheet{i}_params"] = np.array(
                [
                    s.stretch_coefficient,
                    s.bend_coefficient,
                    s.rest_spacing_fiber,
                    s.rest_spacing_cross,
                    s.tether_coefficient,
                ]
            )
    np.savez_compressed(path, **payload)


def load_checkpoint(
    path: str | os.PathLike,
) -> tuple[FluidGrid, ImmersedStructure | None, int]:
    """Restore ``(fluid, structure, time_step)`` from a checkpoint file."""
    try:
        data = np.load(path)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {version} unsupported (expected {_FORMAT_VERSION})"
            )
        operator = (
            str(data["collision_operator"])
            if "collision_operator" in data
            else "bgk"
        )
        fluid = FluidGrid(
            tuple(int(n) for n in data["shape"]),
            tau=float(data["tau"]),
            collision_operator=operator,
        )
        fluid.df[...] = data["df"]
        fluid.df_new[...] = data["df_new"]
        fluid.density[...] = data["density"]
        fluid.velocity[...] = data["velocity"]
        fluid.velocity_shifted[...] = data["velocity_shifted"]
        fluid.force[...] = data["force"]

        num_sheets = int(data["num_sheets"])
        structure = None
        if num_sheets:
            sheets = []
            for i in range(num_sheets):
                params = data[f"sheet{i}_params"]
                sheet = FiberSheet(
                    data[f"sheet{i}_positions"],
                    stretch_coefficient=float(params[0]),
                    bend_coefficient=float(params[1]),
                    rest_spacing_fiber=float(params[2]),
                    rest_spacing_cross=float(params[3]),
                    active=data[f"sheet{i}_active"],
                    tethered=data[f"sheet{i}_tethered"],
                    tether_coefficient=float(params[4]),
                )
                sheet.anchors[...] = data[f"sheet{i}_anchors"]
                sheet.velocity[...] = data[f"sheet{i}_velocity"]
                sheet.bending_force[...] = data[f"sheet{i}_bending"]
                sheet.stretching_force[...] = data[f"sheet{i}_stretching"]
                sheet.elastic_force[...] = data[f"sheet{i}_elastic"]
                sheets.append(sheet)
            structure = ImmersedStructure(sheets)
        return fluid, structure, int(data["time_step"])
    except KeyError as exc:
        raise CheckpointError(f"checkpoint {path} is missing field {exc}") from exc
    finally:
        data.close()
