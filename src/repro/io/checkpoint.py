"""Checkpoint / restore of a full simulation state (npz format).

Long FSI runs are expensive; checkpoints capture the fluid grid and the
immersed structure exactly (both distribution buffers, both velocity
fields, positions, forces) so a restored run continues bit-for-bit.

Checkpoints are crash-safe by construction:

* **Atomic writes** — the payload is written to ``path + ".tmp"`` and
  moved into place with :func:`os.replace`, so a process killed mid-write
  can only ever leave a stale-but-complete previous checkpoint (plus a
  harmless ``.tmp`` orphan), never a half-written file under the real
  name.
* **Payload checksum** — a SHA-256 digest over every stored array is
  saved alongside the data and verified by :func:`load_checkpoint`;
  silently corrupted bytes (bit rot, torn writes on non-POSIX stores)
  raise :class:`~repro.errors.CheckpointError` instead of loading as
  garbage physics.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
import zlib

import numpy as np

from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.core.lbm.fields import FluidGrid
from repro.errors import CheckpointError

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "payload_checksum",
    "rotate_checkpoints",
]

_FORMAT_VERSION = 1
_CHECKSUM_KEY = "checksum"


def payload_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 digest over every array (key, dtype, shape, bytes).

    Keys are visited in sorted order so the digest is independent of
    insertion order; the ``checksum`` entry itself is excluded.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        if key == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _resolved(path: str | os.PathLike) -> str:
    # np.savez historically appends ".npz" to bare names; keep that
    # contract even though we write through a file object.
    final = os.fspath(path)
    if not final.endswith(".npz"):
        final += ".npz"
    return final


def save_checkpoint(
    path: str | os.PathLike,
    fluid: FluidGrid,
    structure: ImmersedStructure | None = None,
    time_step: int = 0,
) -> None:
    """Atomically write the complete state to ``path`` (npz)."""
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "time_step": np.array(time_step),
        "shape": np.array(fluid.shape),
        "tau": np.array(fluid.tau),
        "collision_operator": np.array(fluid.collision_operator),
        "precision": np.array(fluid.precision.name),
        "aa_phase": np.array(int(getattr(fluid, "aa_phase", 0))),
        "df": fluid.df,
        "density": fluid.density,
        "velocity": fluid.velocity,
        "velocity_shifted": fluid.velocity_shifted,
        "force": fluid.force,
        "num_sheets": np.array(0 if structure is None else len(structure.sheets)),
    }
    if fluid.df_new is not None:
        # Single-lattice (in-place AA) grids have no second buffer; the
        # entry is simply absent and load_checkpoint reseeds it.
        payload["df_new"] = fluid.df_new
    if structure is not None:
        for i, s in enumerate(structure.sheets):
            payload[f"sheet{i}_positions"] = s.positions
            payload[f"sheet{i}_anchors"] = s.anchors
            payload[f"sheet{i}_active"] = s.active
            payload[f"sheet{i}_tethered"] = s.tethered
            payload[f"sheet{i}_velocity"] = s.velocity
            payload[f"sheet{i}_bending"] = s.bending_force
            payload[f"sheet{i}_stretching"] = s.stretching_force
            payload[f"sheet{i}_elastic"] = s.elastic_force
            payload[f"sheet{i}_params"] = np.array(
                [
                    s.stretch_coefficient,
                    s.bend_coefficient,
                    s.rest_spacing_fiber,
                    s.rest_spacing_cross,
                    s.tether_coefficient,
                ]
            )
    payload[_CHECKSUM_KEY] = np.array(payload_checksum(payload))

    final = _resolved(path)
    tmp = final + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {final}: {exc}") from exc


def rotate_checkpoints(
    checkpoints: list[tuple[str, int]], keep: int
) -> list[tuple[str, int]]:
    """Garbage-collect a ``(path, step)`` checkpoint window down to ``keep``.

    The list is oldest-first; entries beyond the newest ``keep`` are
    unlinked (a missing file is not an error — a previous rotation or a
    fault-injection test may already have removed it) and the surviving
    window is returned.  Both :class:`~repro.resilience.runner.ResilientRunner`
    and the batch scheduler's per-job checkpoint trail use this so long
    soak runs have bounded disk usage.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    survivors = list(checkpoints)
    while len(survivors) > keep:
        old_path, _old_step = survivors.pop(0)
        try:
            os.unlink(old_path)
        except OSError:
            pass
    return survivors


def load_checkpoint(
    path: str | os.PathLike,
) -> tuple[FluidGrid, ImmersedStructure | None, int]:
    """Restore ``(fluid, structure, time_step)`` from a checkpoint file.

    Verifies the stored payload checksum before reconstructing any
    state; a truncated or bit-flipped file raises
    :class:`~repro.errors.CheckpointError` with the reason (never a
    grid of garbage numbers).
    """
    try:
        data = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc} "
            "(the file is missing, truncated, or not a checkpoint)"
        ) from exc
    try:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {version} unsupported (expected {_FORMAT_VERSION})"
            )
        arrays = {key: data[key] for key in data.files}
        if _CHECKSUM_KEY in arrays:
            stored = str(arrays[_CHECKSUM_KEY])
            actual = payload_checksum(arrays)
            if stored != actual:
                raise CheckpointError(
                    f"checkpoint {path} failed checksum verification "
                    f"(stored {stored[:12]}..., computed {actual[:12]}...): "
                    "the file was corrupted after writing; restore from an "
                    "earlier checkpoint"
                )
        operator = (
            str(arrays["collision_operator"])
            if "collision_operator" in arrays
            else "bgk"
        )
        if "precision" in arrays:
            precision = str(arrays["precision"])
        else:
            # Pre-policy checkpoints carry no precision entry; infer the
            # uniform policy matching the stored lattice dtype.
            precision = (
                "float32" if arrays["df"].dtype == np.float32 else "float64"
            )
        fluid = FluidGrid(
            tuple(int(n) for n in arrays["shape"]),
            tau=float(arrays["tau"]),
            collision_operator=operator,
            precision=precision,
        )
        fluid.df[...] = arrays["df"]
        if "df_new" in arrays:
            fluid.df_new[...] = arrays["df_new"]
        else:
            # Single-lattice checkpoint: seed the second buffer from the
            # (possibly AA-encoded) lattice; consumers that need the
            # natural layout decode via the aa_phase flag below.
            fluid.df_new[...] = arrays["df"]
        fluid.aa_phase = int(arrays["aa_phase"]) if "aa_phase" in arrays else 0
        fluid.density[...] = arrays["density"]
        fluid.velocity[...] = arrays["velocity"]
        fluid.velocity_shifted[...] = arrays["velocity_shifted"]
        fluid.force[...] = arrays["force"]

        num_sheets = int(arrays["num_sheets"])
        structure = None
        if num_sheets:
            sheets = []
            for i in range(num_sheets):
                params = arrays[f"sheet{i}_params"]
                sheet = FiberSheet(
                    arrays[f"sheet{i}_positions"],
                    stretch_coefficient=float(params[0]),
                    bend_coefficient=float(params[1]),
                    rest_spacing_fiber=float(params[2]),
                    rest_spacing_cross=float(params[3]),
                    active=arrays[f"sheet{i}_active"],
                    tethered=arrays[f"sheet{i}_tethered"],
                    tether_coefficient=float(params[4]),
                )
                sheet.anchors[...] = arrays[f"sheet{i}_anchors"]
                sheet.velocity[...] = arrays[f"sheet{i}_velocity"]
                sheet.bending_force[...] = arrays[f"sheet{i}_bending"]
                sheet.stretching_force[...] = arrays[f"sheet{i}_stretching"]
                sheet.elastic_force[...] = arrays[f"sheet{i}_elastic"]
                sheets.append(sheet)
            structure = ImmersedStructure(sheets)
        return fluid, structure, int(arrays["time_step"])
    except KeyError as exc:
        raise CheckpointError(f"checkpoint {path} is missing field {exc}") from exc
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable past its header: {exc} "
            "(truncated or corrupted archive)"
        ) from exc
    finally:
        data.close()
