"""Legacy-VTK writers for visualization.

Produces ASCII VTK files loadable by ParaView/VisIt: the fluid state as
STRUCTURED_POINTS with velocity/density/vorticity point data, and the
fiber structure as POLYDATA with points and line connectivity (one
polyline per fiber), which is how figures like the paper's Figure 1
simulation snapshot are rendered.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.ib.fiber import FiberSheet, ImmersedStructure
from repro.core.lbm import analysis
from repro.core.lbm.fields import FluidGrid

__all__ = ["write_fluid_vtk", "write_structure_vtk"]


def _header(kind: str, title: str) -> list[str]:
    return [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        f"DATASET {kind}",
    ]


def write_fluid_vtk(
    path: str | os.PathLike,
    fluid: FluidGrid,
    include_vorticity: bool = False,
) -> None:
    """Write the fluid state as a legacy-VTK structured-points file.

    Point data: ``density`` (scalar), ``velocity`` (vector), and
    optionally ``vorticity`` (vector).
    """
    nx, ny, nz = fluid.shape
    lines = _header("STRUCTURED_POINTS", "LBM-IB fluid state")
    lines += [
        f"DIMENSIONS {nx} {ny} {nz}",
        "ORIGIN 0 0 0",
        "SPACING 1 1 1",
        f"POINT_DATA {nx * ny * nz}",
    ]
    # VTK structured points iterate x fastest; our arrays are C-order
    # (z fastest), so transpose to (z, y, x) before flattening.
    rho = fluid.density.transpose(2, 1, 0).reshape(-1)
    lines.append("SCALARS density double 1")
    lines.append("LOOKUP_TABLE default")
    lines.extend(f"{v:.10g}" for v in rho)

    vel = fluid.velocity.transpose(0, 3, 2, 1).reshape(3, -1)
    lines.append("VECTORS velocity double")
    lines.extend(f"{vel[0, i]:.10g} {vel[1, i]:.10g} {vel[2, i]:.10g}" for i in range(vel.shape[1]))

    if include_vorticity:
        w = analysis.vorticity(fluid.velocity).transpose(0, 3, 2, 1).reshape(3, -1)
        lines.append("VECTORS vorticity double")
        lines.extend(
            f"{w[0, i]:.10g} {w[1, i]:.10g} {w[2, i]:.10g}" for i in range(w.shape[1])
        )

    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def write_structure_vtk(
    path: str | os.PathLike, structure: ImmersedStructure
) -> None:
    """Write the fiber structure as legacy-VTK polydata.

    Every fiber becomes one polyline over its active nodes; the elastic
    force magnitude is attached as point data.
    """
    points: list[np.ndarray] = []
    forces: list[float] = []
    poly_lines: list[list[int]] = []
    for sheet in structure.sheets:
        index_of: dict[tuple[int, int], int] = {}
        for fi in range(sheet.num_fibers):
            for ni in range(sheet.nodes_per_fiber):
                if not sheet.active[fi, ni]:
                    continue
                index_of[(fi, ni)] = len(points)
                points.append(sheet.positions[fi, ni])
                forces.append(float(np.linalg.norm(sheet.elastic_force[fi, ni])))
        for fi in range(sheet.num_fibers):
            run: list[int] = []
            for ni in range(sheet.nodes_per_fiber):
                if sheet.active[fi, ni]:
                    run.append(index_of[(fi, ni)])
                elif len(run) > 1:
                    poly_lines.append(run)
                    run = []
                else:
                    run = []
            if len(run) > 1:
                poly_lines.append(run)

    lines = _header("POLYDATA", "LBM-IB fiber structure")
    lines.append(f"POINTS {len(points)} double")
    lines.extend(f"{p[0]:.10g} {p[1]:.10g} {p[2]:.10g}" for p in points)
    total_ints = sum(len(pl) + 1 for pl in poly_lines)
    lines.append(f"LINES {len(poly_lines)} {total_ints}")
    for pl in poly_lines:
        lines.append(" ".join([str(len(pl))] + [str(i) for i in pl]))
    lines.append(f"POINT_DATA {len(points)}")
    lines.append("SCALARS elastic_force_magnitude double 1")
    lines.append("LOOKUP_TABLE default")
    lines.extend(f"{f:.10g}" for f in forces)

    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
