"""Differential oracle: run two solver variants step-locked and diff them.

The paper's verification statement (Section VI) is that the sequential,
OpenMP, and cube-based programs compute identical physics — the
parallel schedules are pure performance transformations.  The oracle
makes that statement mechanically checkable for *any* pair of variants:
both simulations start from byte-identical state and advance in
lock-step, with every gathered field compared after each step.  The
first step where any field diverges beyond tolerance is reported with
the offending field, the worst element's global index, and — when a
cube-blocked variant is involved — the cube containing it, so a
scheduling bug is localized to the cube whose update went wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.api import Simulation
from repro.config import SimulationConfig
from repro.core.backend import oracle_tolerance
from repro.core.lbm.fields import FluidGrid

__all__ = [
    "Divergence",
    "DifferentialOracle",
    "variant_config",
    "compare_variants",
    "seeded_initial_fluid",
]

#: Gathered fluid fields diffed after every step, in check order.
_FLUID_FIELDS = ("df", "density", "velocity", "velocity_shifted", "force")

#: Solver variants with a cube-blocked layout (per-cube localization).
_CUBE_VARIANTS = ("cube", "async_cube", "hybrid")


@dataclass(frozen=True)
class Divergence:
    """First point where two variants disagree.

    Attributes
    ----------
    step:
        Time step after which the divergence was detected (1-based).
    field:
        Field name (``"df"``, ``"velocity"``, ``"sheet0.positions"``...).
    max_abs_error:
        Largest absolute element difference in that field.
    tolerance:
        The allowed difference at that element.
    index:
        Index of the worst element in the global field layout.
    cube:
        Cube coordinates containing the worst element, when a
        cube-blocked variant is part of the comparison (else ``None``).
    variant_a / variant_b:
        The two solver variants compared.
    """

    step: int
    field: str
    max_abs_error: float
    tolerance: float
    index: tuple
    cube: tuple | None
    variant_a: str
    variant_b: str

    def __str__(self) -> str:
        where = f"index {self.index}"
        if self.cube is not None:
            where += f" (cube {self.cube})"
        return (
            f"variants {self.variant_a!r} and {self.variant_b!r} diverged at "
            f"step {self.step} in field {self.field!r}: |delta| = "
            f"{self.max_abs_error:.3e} > tol {self.tolerance:.3e} at {where}"
        )


def variant_config(config: SimulationConfig, variant: str) -> SimulationConfig:
    """``config`` retargeted at ``variant``, thread count made feasible.

    The cube variants need the thread mesh to fit the cube counts, the
    distributed variants need at least one x-plane (or cube slab) per
    rank; the requested ``num_threads`` is clamped accordingly, exactly
    as a user following the paper's sizing rules would.
    """
    threads = config.num_threads
    nx = config.fluid_shape[0]
    if variant in ("cube", "async_cube"):
        threads = min(threads, min(n // config.cube_size for n in config.fluid_shape))
    elif variant == "hybrid":
        threads = min(threads, nx // config.cube_size)
    elif variant == "distributed":
        threads = min(threads, nx)
    elif variant in ("sequential", "fused", "inplace", "batched"):
        threads = 1
    return replace(config, solver=variant, num_threads=max(1, threads))


def seeded_initial_fluid(config: SimulationConfig, seed: int | None) -> FluidGrid:
    """A deterministic, physically sane initial fluid for ``config``."""
    fluid = FluidGrid(
        config.fluid_shape,
        tau=config.effective_tau,
        collision_operator=config.collision_operator,
        precision=config.precision,
    )
    if seed is not None:
        rng = np.random.default_rng(seed)
        fluid.initialize_equilibrium(
            density=1.0 + 0.01 * rng.standard_normal(fluid.shape),
            velocity=0.01 * rng.standard_normal((3,) + fluid.shape),
        )
    return fluid


#: Backwards-compatible private alias (pre-service name).
_seeded_initial_fluid = seeded_initial_fluid


def _first_field_divergence(
    sim_a: Simulation,
    sim_b: Simulation,
    step: int,
    rtol: float,
    atol: float,
    cube_size: int | None,
) -> Divergence | None:
    """Diff every gathered field of the two simulations once."""
    fluid_a, fluid_b = sim_a.fluid, sim_b.fluid
    named: list[tuple[str, np.ndarray, np.ndarray, bool]] = [
        (f, getattr(fluid_a, f), getattr(fluid_b, f), True) for f in _FLUID_FIELDS
    ]
    struct_a, struct_b = sim_a.structure, sim_b.structure
    if struct_a is not None and struct_b is not None:
        for si, (sa, sb) in enumerate(zip(struct_a.sheets, struct_b.sheets)):
            named.append((f"sheet{si}.positions", sa.positions, sb.positions, False))
            named.append((f"sheet{si}.velocity", sa.velocity, sb.velocity, False))
    for name, a, b, is_fluid in named:
        delta = np.abs(a - b)
        allowed = atol + rtol * np.abs(b)
        excess = delta - allowed
        worst = float(excess.max())
        if worst <= 0.0:
            continue
        flat = int(np.argmax(excess))
        index = tuple(int(i) for i in np.unravel_index(flat, a.shape))
        cube = None
        if is_fluid and cube_size is not None:
            # Spatial axes are the trailing three for every fluid field.
            spatial = index[-3:]
            cube = tuple(i // cube_size for i in spatial)
        return Divergence(
            step=step,
            field=name,
            max_abs_error=float(delta.flat[flat]),
            tolerance=float(allowed.flat[flat]),
            index=index,
            cube=cube,
            variant_a=sim_a.config.solver,
            variant_b=sim_b.config.solver,
        )
    return None


class DifferentialOracle:
    """Step-locked comparison of two solver variants of one config.

    Parameters
    ----------
    config:
        The base run description (its ``solver`` field is overridden).
    variant_a / variant_b:
        Solver variants to compare (``variant_a`` defaults to the
        sequential reference).
    rtol / atol:
        Element tolerance: ``|a - b| <= atol + rtol * |b|``.  ``None``
        (the default) resolves per the config's precision policy via
        :func:`repro.core.backend.oracle_tolerance` — for float64 that
        is far tighter than any physical signal and far looser than
        benign summation-order noise; the float32/mixed bounds widen to
        accommodate single-precision rounding across reordered sums.
    state_seed:
        Seed for the shared perturbed initial condition (``None`` keeps
        the quiescent equilibrium start).
    config_b:
        Optional override for the second run's config — used by the
        self-test to deliberately perturb a parameter (e.g. tau) and
        prove the oracle catches it.
    telemetry:
        Optional :class:`~repro.observe.Telemetry`; each compared step
        bumps ``verify.steps_compared`` and each detected divergence
        bumps ``verify.divergences`` in its metrics registry.
    """

    def __init__(
        self,
        config: SimulationConfig,
        variant_a: str = "sequential",
        variant_b: str = "cube",
        rtol: float | None = None,
        atol: float | None = None,
        state_seed: int | None = 0,
        config_b: SimulationConfig | None = None,
        telemetry=None,
    ) -> None:
        self.config_a = variant_config(config, variant_a)
        self.config_b = (
            variant_config(config, variant_b)
            if config_b is None
            else variant_config(config_b, variant_b)
        )
        default_rtol, default_atol = oracle_tolerance(config.precision)
        self.rtol = default_rtol if rtol is None else rtol
        self.atol = default_atol if atol is None else atol
        self.state_seed = state_seed
        self.telemetry = telemetry
        self._cube_size: int | None = None
        for cfg in (self.config_a, self.config_b):
            if cfg.solver in _CUBE_VARIANTS:
                self._cube_size = cfg.cube_size
                break

    def _build_pair(self) -> tuple[Simulation, Simulation]:
        fluid = seeded_initial_fluid(self.config_a, self.state_seed)
        structure = self.config_a.build_structure()
        sims = []
        for cfg in (self.config_a, self.config_b):
            sims.append(
                Simulation(
                    cfg,
                    initial_fluid=fluid.copy(),
                    initial_structure=structure.copy() if structure else None,
                )
            )
        return sims[0], sims[1]

    def run(self, num_steps: int) -> Divergence | None:
        """Advance both variants in lock-step, diffing after every step.

        Returns the first :class:`Divergence`, or ``None`` when the two
        variants agree for all ``num_steps`` steps.
        """
        sim_a, sim_b = self._build_pair()
        metrics = self.telemetry.metrics if self.telemetry is not None else None
        try:
            for _ in range(num_steps):
                sim_a.run(1)
                sim_b.run(1)
                divergence = _first_field_divergence(
                    sim_a,
                    sim_b,
                    step=sim_a.time_step,
                    rtol=self.rtol,
                    atol=self.atol,
                    cube_size=self._cube_size,
                )
                if metrics is not None:
                    metrics.counter("verify.steps_compared").inc()
                if divergence is not None:
                    if metrics is not None:
                        metrics.counter("verify.divergences").inc()
                    return divergence
            return None
        finally:
            sim_a.close()
            sim_b.close()


def compare_variants(
    config: SimulationConfig,
    variant_a: str,
    variant_b: str,
    num_steps: int,
    rtol: float | None = None,
    atol: float | None = None,
    state_seed: int | None = 0,
) -> Divergence | None:
    """One-shot form of :class:`DifferentialOracle`."""
    oracle = DifferentialOracle(
        config,
        variant_a=variant_a,
        variant_b=variant_b,
        rtol=rtol,
        atol=atol,
        state_seed=state_seed,
    )
    return oracle.run(num_steps)
