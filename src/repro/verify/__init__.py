"""Differential verification subsystem.

Machinery that proves the solver variants compute identical physics and
that the physics itself obeys its conservation laws:

* :mod:`repro.verify.oracle` — step-locked differential oracle between
  any two solver variants, reporting the first divergent step, field,
  and (for cube layouts) cube.
* :mod:`repro.verify.invariants` — physics invariant checkers (mass,
  momentum, positivity, fiber arc length, NaN/Inf sentinels) attachable
  per step to every variant.
* :mod:`repro.verify.generate` — seeded random valid configurations
  with shrinking to a minimal failing case.
* :mod:`repro.verify.golden` — committed, checksummed golden regression
  baselines with a regeneration entry point.

``python -m repro.verify`` (wired as ``make verify-physics``) runs the
whole gate: golden baselines, the oracle across all variants on
generated configs, and a deliberate-perturbation self-test.
"""

from repro.errors import InvariantError
from repro.verify.generate import VerifyCase, generate_cases, random_case, shrink_case
from repro.verify.golden import (
    GOLDEN_CASES,
    check_baselines,
    compute_baseline,
    default_golden_dir,
    state_digest,
    state_stats,
    write_baselines,
)
from repro.verify.invariants import (
    DistributionPositivity,
    FiberArcLength,
    FiniteFields,
    Invariant,
    InvariantSuite,
    MassConservation,
    MomentumConsistency,
)
from repro.verify.oracle import (
    DifferentialOracle,
    Divergence,
    compare_variants,
    seeded_initial_fluid,
    variant_config,
)

__all__ = [
    "InvariantError",
    "Invariant",
    "InvariantSuite",
    "FiniteFields",
    "MassConservation",
    "MomentumConsistency",
    "DistributionPositivity",
    "FiberArcLength",
    "DifferentialOracle",
    "Divergence",
    "compare_variants",
    "seeded_initial_fluid",
    "variant_config",
    "VerifyCase",
    "random_case",
    "generate_cases",
    "shrink_case",
    "GOLDEN_CASES",
    "check_baselines",
    "compute_baseline",
    "default_golden_dir",
    "write_baselines",
    "state_stats",
    "state_digest",
]
