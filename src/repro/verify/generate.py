"""Seeded property-based generation of valid simulation configs.

Random valid scenarios — grid sizes, cube sizes, thread meshes,
distribution policies, fiber geometries, collision operators — feed the
differential oracle and the invariant suite, so variant-equivalence is
exercised across the whole configuration space rather than the handful
of shapes a hand-written test would pick.  Everything is driven by one
integer seed: the same seed always yields the same cases, so a CI
failure is reproducible locally by number.

When a case fails, :func:`shrink_case` greedily simplifies it (fewer
steps, no structure, one thread, smallest grid, plainest policies)
while the failure persists, ending at a minimal failing config that is
far easier to debug than the randomly drawn original.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

import numpy as np

from repro.config import SimulationConfig, StructureConfig

__all__ = ["VerifyCase", "random_case", "generate_cases", "shrink_case"]

_METHODS = ("block", "cyclic", "block_cyclic")
_STRUCTURES = ("none", "flat_sheet", "parallel_sheets")


@dataclass(frozen=True)
class VerifyCase:
    """One generated scenario: a config recipe plus run length and seed.

    The case is pure data (hashable, printable, shrinkable); call
    :meth:`config` to realize it for a concrete solver variant.
    """

    dims: tuple[int, int, int] = (8, 8, 8)
    cube_size: int = 2
    tau: float = 0.8
    operator: str = "bgk"
    num_threads: int = 2
    cube_method: str = "block"
    fiber_method: str = "block"
    structure_kind: str = "flat_sheet"
    num_fibers: int = 4
    nodes_per_fiber: int = 4
    external_force: tuple[float, float, float] | None = None
    steps: int = 2
    state_seed: int = 0

    def config(self, solver: str = "sequential") -> SimulationConfig:
        """Realize the case as a :class:`SimulationConfig`."""
        return SimulationConfig(
            fluid_shape=self.dims,
            tau=self.tau,
            collision_operator=self.operator,
            solver=solver,
            num_threads=self.num_threads,
            cube_size=self.cube_size,
            cube_method=self.cube_method,
            fiber_method=self.fiber_method,
            structure=StructureConfig(
                kind=self.structure_kind,
                num_fibers=self.num_fibers,
                nodes_per_fiber=self.nodes_per_fiber,
                num_sheets=2,
                stretch_coefficient=2e-2,
                bend_coefficient=5e-4,
            ),
            external_force=self.external_force,
        )

    def describe(self) -> str:
        """Compact one-line summary for reports and logs."""
        force = "F" if self.external_force else "-"
        return (
            f"dims={self.dims} k={self.cube_size} tau={self.tau} "
            f"op={self.operator} threads={self.num_threads} "
            f"dist={self.cube_method}/{self.fiber_method} "
            f"structure={self.structure_kind} steps={self.steps} "
            f"force={force} seed={self.state_seed}"
        )


def random_case(rng: np.random.Generator) -> VerifyCase:
    """Draw one valid random case from ``rng``."""
    cube_size = int(rng.choice([2, 4]))
    dims = tuple(
        int(cube_size * rng.integers(2, 7 if cube_size == 2 else 4))
        for _ in range(3)
    )
    structure_kind = str(rng.choice(_STRUCTURES))
    external = None
    if rng.random() < 0.3:
        external = (1e-5, 0.0, 0.0)
    return VerifyCase(
        dims=dims,
        cube_size=cube_size,
        tau=float(rng.choice([0.6, 0.8, 1.1])),
        operator=str(rng.choice(["bgk", "trt"])),
        num_threads=int(rng.integers(1, 5)),
        cube_method=str(rng.choice(_METHODS)),
        fiber_method=str(rng.choice(_METHODS)),
        structure_kind=structure_kind,
        num_fibers=int(rng.integers(3, 6)),
        nodes_per_fiber=int(rng.integers(3, 6)),
        external_force=external,
        steps=int(rng.integers(2, 4)),
        state_seed=int(rng.integers(0, 2**31)),
    )


def generate_cases(seed: int, count: int) -> list[VerifyCase]:
    """``count`` reproducible cases drawn from one seed."""
    rng = np.random.default_rng(seed)
    return [random_case(rng) for _ in range(count)]


def _simplifications(case: VerifyCase) -> Iterator[VerifyCase]:
    """Candidate one-step simplifications, most aggressive first."""
    if case.steps > 1:
        yield replace(case, steps=1)
    if case.structure_kind != "none":
        yield replace(case, structure_kind="none")
    if case.num_threads > 1:
        yield replace(case, num_threads=1)
    min_dims = tuple(2 * case.cube_size for _ in range(3))
    if case.dims != min_dims:
        yield replace(case, dims=min_dims)
        # Also try halving one axis at a time toward the minimum.
        for axis in range(3):
            if case.dims[axis] > 2 * case.cube_size:
                dims = list(case.dims)
                dims[axis] = 2 * case.cube_size
                yield replace(case, dims=tuple(dims))
    if case.cube_size > 2:
        dims = tuple(n - (n % 2) for n in case.dims)
        if all(n >= 4 for n in dims):
            yield replace(case, cube_size=2, dims=dims)
    if case.operator != "bgk":
        yield replace(case, operator="bgk")
    if case.external_force is not None:
        yield replace(case, external_force=None)
    if case.cube_method != "block":
        yield replace(case, cube_method="block")
    if case.fiber_method != "block":
        yield replace(case, fiber_method="block")
    if case.structure_kind != "none" and (case.num_fibers > 3 or case.nodes_per_fiber > 3):
        yield replace(case, num_fibers=3, nodes_per_fiber=3)
    if case.structure_kind == "parallel_sheets":
        yield replace(case, structure_kind="flat_sheet")


def shrink_case(
    case: VerifyCase,
    still_fails: Callable[[VerifyCase], bool],
    max_attempts: int = 64,
) -> VerifyCase:
    """Greedy shrink: keep any simplification that still fails.

    ``still_fails(candidate)`` re-runs whatever check broke (oracle or
    invariant suite) on the candidate; exceptions from malformed
    candidates are treated as "does not reproduce" so shrinking never
    widens the bug class.  Stops at a fixpoint or after
    ``max_attempts`` evaluations.
    """
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _simplifications(case):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                reproduced = still_fails(candidate)
            except Exception:
                reproduced = False
            if reproduced:
                case = candidate
                improved = True
                break
    return case
