"""Physics invariant checkers, attachable as per-step hooks.

The LBM-IB method guarantees a handful of properties regardless of how
the computation is scheduled: collision and (periodic) streaming
conserve mass exactly; the velocity-shift forcing scheme injects
exactly ``F dt`` of momentum per step; distributions stay positive in
the stable low-Mach regime; fibers are inextensible enough that their
arc length stays within elastic bounds; and nothing is ever NaN/Inf.
Every parallel rewrite in this repository is a pure *performance*
transformation, so each of these must hold for every solver variant —
these checkers turn that contract into executable assertions.

Two attachment points:

* **Global, per-step** — :meth:`InvariantSuite.check_simulation` runs
  after every time step when a suite is attached to a
  :class:`~repro.api.Simulation` (any variant, including under
  resilience rollback via
  :class:`~repro.resilience.runner.ResilientRunner`).
* **Per-thread sentinel** — :meth:`InvariantSuite.sentinel_hook`
  produces a cheap NaN/Inf sentinel run inside the worker threads of
  the thread-parallel solvers, with per-cube localization for the
  cube-blocked layout.  Violations raise
  :class:`~repro.errors.InvariantError`, which the execution substrate
  surfaces un-wrapped with thread/cube context attached.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import InvariantError

__all__ = [
    "Invariant",
    "FiniteFields",
    "MassConservation",
    "MomentumConsistency",
    "DistributionPositivity",
    "FiberArcLength",
    "InvariantSuite",
]

#: Fluid arrays inspected by the finite sentinel, cheapest first.
_FLUID_FIELDS = ("df", "df_new", "density", "velocity", "velocity_shifted", "force")


class Invariant:
    """One checkable physics property.

    Subclasses implement :meth:`check`; :meth:`bind` captures any
    reference state (conserved totals) from the initial condition and
    is called again after every checkpoint restore or rollback so the
    baseline always matches the state the run actually continues from.
    """

    name = "invariant"

    def bind(self, fluid, structure) -> None:  # pragma: no cover - default no-op
        """Capture reference values from the (restored) initial state."""

    def check(self, fluid, structure, step: int) -> None:
        """Raise :class:`~repro.errors.InvariantError` on violation."""
        raise NotImplementedError


class FiniteFields(Invariant):
    """No fluid field or fiber array may contain NaN/Inf."""

    name = "finite_fields"

    def check(self, fluid, structure, step: int) -> None:
        for field in _FLUID_FIELDS:
            arr = getattr(fluid, field)
            if arr is None:  # single-lattice grid carries no df_new
                continue
            if not np.isfinite(arr).all():
                bad = int(np.flatnonzero(~np.isfinite(arr).ravel())[0])
                raise InvariantError(
                    self.name,
                    f"fluid field {field!r} contains non-finite values "
                    f"(first at flat index {bad})",
                    step=step,
                    field=field,
                )
        if structure is not None:
            for si, sheet in enumerate(structure.sheets):
                for field in ("positions", "velocity", "elastic_force"):
                    if not np.isfinite(getattr(sheet, field)).all():
                        raise InvariantError(
                            self.name,
                            f"sheet {si} {field} contains non-finite values",
                            step=step,
                            field=f"sheet{si}.{field}",
                        )


class MassConservation(Invariant):
    """Total fluid mass stays at its initial value.

    Collision conserves density pointwise, periodic streaming is a
    permutation, and bounce-back walls reflect populations in place, so
    total mass is exact up to floating-point roundoff.  Outflow
    boundaries deliberately lose mass — the default suite omits this
    checker for such configs.
    """

    name = "mass_conservation"

    def __init__(self, rtol: float = 1e-9) -> None:
        self.rtol = rtol
        self._reference: float | None = None

    def bind(self, fluid, structure) -> None:
        self._reference = fluid.total_mass()

    def check(self, fluid, structure, step: int) -> None:
        if self._reference is None:
            self.bind(fluid, structure)
            return
        mass = fluid.total_mass()
        drift = abs(mass - self._reference)
        limit = self.rtol * abs(self._reference)
        if drift > limit:
            raise InvariantError(
                self.name,
                f"total mass drifted from {self._reference:.12g} to {mass:.12g}",
                step=step,
                field="df",
                value=drift,
                limit=limit,
            )


class MomentumConsistency(Invariant):
    """Per-step momentum change equals the applied force impulse.

    The velocity-shift forcing scheme injects exactly ``F dt`` of
    momentum per step (see :attr:`FluidGrid.tau_odd`), so in a fully
    periodic domain::

        p(t+1) - p(t) = dt * (sum of spread elastic forces
                              + external force * num_nodes)

    The elastic contribution is recovered from the fiber sheets (the
    smoothed delta is a partition of unity, so spreading preserves the
    total force).  Walls exchange momentum with the boundary — the
    default suite enables this checker only for periodic-only runs.

    The first check after a (re)bind only records the momentum without
    comparing: the velocity-shift scheme carries the forcing through
    ``velocity_shifted``, which a freshly initialized state has not yet
    passed through kernel 7, so the very first step after a cold start
    injects no impulse.
    """

    name = "momentum_consistency"

    def __init__(self, dt: float = 1.0, external_force=None, atol: float = 5e-9) -> None:
        self.dt = dt
        self.external_force = external_force
        self.atol = atol
        self._prev: np.ndarray | None = None
        self._prev_step: int | None = None

    def bind(self, fluid, structure) -> None:
        self._prev = None
        self._prev_step = None

    def _impulse(self, fluid, structure, num_steps: int) -> np.ndarray:
        impulse = np.zeros(3)
        if structure is not None:
            for sheet in structure.sheets:
                impulse += sheet.area_element * sheet.elastic_force[sheet.active].sum(
                    axis=0
                )
        if self.external_force is not None:
            impulse += np.asarray(self.external_force, dtype=np.float64) * fluid.num_nodes
        return impulse * self.dt * num_steps

    def check(self, fluid, structure, step: int) -> None:
        momentum = fluid.total_momentum()
        if self._prev is None or self._prev_step is None:
            self._prev, self._prev_step = momentum, step
            return
        num_steps = max(1, step - self._prev_step)
        expected = self._prev + self._impulse(fluid, structure, num_steps)
        scale = float(np.abs(expected).max()) + float(np.abs(self._prev).max())
        error = float(np.abs(momentum - expected).max())
        limit = self.atol * max(1.0, scale) * max(1.0, fluid.num_nodes ** 0.5)
        self._prev, self._prev_step = momentum, step
        if error > limit:
            raise InvariantError(
                self.name,
                "momentum change does not match the applied force impulse "
                f"(got {momentum}, expected {expected})",
                step=step,
                field="df",
                value=error,
                limit=limit,
            )


class DistributionPositivity(Invariant):
    """Distribution functions stay (numerically) positive.

    BGK does not guarantee positivity, but in the stable low-Mach
    regime every population stays well above zero; a distribution
    diving negative is the canonical early sign of a blow-up, long
    before NaN appears.  The floor is configurable for deliberately
    aggressive runs.
    """

    name = "distribution_positivity"

    def __init__(self, floor: float = -1e-6) -> None:
        self.floor = floor

    def check(self, fluid, structure, step: int) -> None:
        low = float(fluid.df.min())
        if low < self.floor:
            idx = np.unravel_index(int(fluid.df.argmin()), fluid.df.shape)
            raise InvariantError(
                self.name,
                f"distribution went negative at df{tuple(int(i) for i in idx)}",
                step=step,
                field="df",
                value=low,
                limit=self.floor,
            )


class FiberArcLength(Invariant):
    """Fiber segment lengths stay within elastic stretch bounds.

    The stretch ratio is segment length over rest spacing; a sheet
    stretched far beyond (or collapsed far below) its rest length means
    the structure solver has gone non-physical even while every value
    is still finite.
    """

    name = "fiber_arc_length"

    def __init__(self, max_ratio: float = 4.0, min_ratio: float = 0.05) -> None:
        self.max_ratio = max_ratio
        self.min_ratio = min_ratio

    def check(self, fluid, structure, step: int) -> None:
        if structure is None:
            return
        for si, sheet in enumerate(structure.sheets):
            ratio = sheet.max_stretch_ratio()
            if not np.isfinite(ratio):
                raise InvariantError(
                    self.name,
                    f"sheet {si} stretch ratio is non-finite",
                    step=step,
                    field=f"sheet{si}.positions",
                )
            if ratio > self.max_ratio:
                raise InvariantError(
                    self.name,
                    f"sheet {si} stretched to {ratio:.3g}x its rest spacing",
                    step=step,
                    field=f"sheet{si}.positions",
                    value=ratio,
                    limit=self.max_ratio,
                )


def _check_cube_state_finite(cubes, tid: int, step: int) -> None:
    """NaN/Inf sentinel over a cube-blocked state, localized per cube."""
    for field in ("df", "density", "velocity", "force"):
        arr = getattr(cubes, field)
        flat = arr.reshape(arr.shape[0], -1)
        bad = ~np.isfinite(flat).all(axis=1)
        if bad.any():
            cube = int(np.flatnonzero(bad)[0])
            raise InvariantError(
                "finite_fields",
                f"cube-blocked field {field!r} contains non-finite values "
                f"in cube {cube}",
                step=step,
                field=field,
                tid=tid,
                cube=cubes.cube_coords(cube),
            )


def _check_grid_state_finite(fluid, tid: int, step: int) -> None:
    """NaN/Inf sentinel over a flat grid state."""
    for field in _FLUID_FIELDS:
        arr = getattr(fluid, field)
        if arr is None:  # single-lattice grid carries no df_new
            continue
        if not np.isfinite(arr).all():
            raise InvariantError(
                "finite_fields",
                f"fluid field {field!r} contains non-finite values",
                step=step,
                field=field,
                tid=tid,
            )


class InvariantSuite:
    """An ordered collection of invariants with the two attachment hooks.

    Parameters
    ----------
    invariants:
        The checkers to run, in order (first failure wins).
    every:
        Check cadence in steps (1 = every step).
    """

    def __init__(self, invariants: Sequence[Invariant], every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.invariants = list(invariants)
        self.every = every
        #: Number of successful whole-suite evaluations (diagnostics).
        self.checks_passed = 0
        #: Optional :class:`~repro.observe.metrics.MetricsRegistry`;
        #: when set, every suite evaluation bumps the
        #: ``verify.invariant_checks`` counter (installed by
        #: :meth:`repro.api.Simulation.attach_telemetry`).
        self.metrics = None

    @classmethod
    def default(
        cls,
        config=None,
        every: int = 1,
        positivity_floor: float = -1e-6,
        max_stretch: float = 4.0,
    ) -> "InvariantSuite":
        """The standard suite, gated on what the config makes checkable.

        Mass conservation is dropped when an outflow boundary is
        configured (mass deliberately leaves); momentum consistency
        needs a fully periodic domain (walls exchange momentum with the
        boundary).  The drift tolerances scale with the config's
        precision policy (:func:`repro.core.backend.invariant_scale`):
        single-precision storage turns the exactly-conserved sums into
        sums over float32 roundoff.
        """
        from repro.core.backend import invariant_scale

        tol_scale = 1.0 if config is None else invariant_scale(config.precision)
        checks: list[Invariant] = [FiniteFields()]
        boundaries = () if config is None else config.boundaries
        has_outflow = any(bc.kind == "outflow" for bc in boundaries)
        fully_periodic = all(bc.kind == "periodic" for bc in boundaries)
        if not has_outflow:
            checks.append(MassConservation(rtol=1e-9 * tol_scale))
        if fully_periodic:
            checks.append(
                MomentumConsistency(
                    dt=1.0 if config is None else config.dt,
                    external_force=None if config is None else config.external_force,
                    atol=5e-9 * tol_scale,
                )
            )
        checks.append(DistributionPositivity(floor=positivity_floor))
        if config is None or config.structure.kind != "none":
            checks.append(FiberArcLength(max_ratio=max_stretch))
        return cls(checks, every=every)

    @classmethod
    def slot_checkers(
        cls,
        config=None,
        positivity_floor: float = -1e-6,
        max_stretch: float = 4.0,
    ) -> list[Invariant]:
        """Fresh checker instances for guarding one batch slot.

        The batched solver's :class:`~repro.batch.guard.SlotGuard` runs
        health sentinels per slot, so every slot needs its *own*
        stateful checker instances (conserved-quantity baselines are
        per simulation).  This is the same config-gated set as
        :meth:`default`, built fresh on every call.
        """
        return cls.default(
            config, positivity_floor=positivity_floor, max_stretch=max_stretch
        ).invariants

    # ------------------------------------------------------------------
    # global per-step checking
    # ------------------------------------------------------------------
    def bind(self, fluid, structure) -> None:
        """(Re-)capture conserved-quantity baselines from this state."""
        for invariant in self.invariants:
            invariant.bind(fluid, structure)

    def check_state(self, fluid, structure, step: int) -> None:
        """Run every checker against a gathered global state."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("verify.invariant_checks").inc(len(self.invariants))
        for invariant in self.invariants:
            invariant.check(fluid, structure, step)
        self.checks_passed += 1

    def check_simulation(self, sim) -> None:
        """Run every checker against a simulation's gathered state."""
        step = sim.time_step
        if step % self.every:
            return
        self.check_state(sim.fluid, sim.structure, step)

    # ------------------------------------------------------------------
    # per-thread sentinel hook
    # ------------------------------------------------------------------
    def sentinel_hook(self, state) -> Callable[[int, int], None]:
        """A cheap ``(tid, step)`` NaN/Inf sentinel for worker threads.

        ``state`` is the solver's live state — a
        :class:`~repro.parallel.cubes.CubeGrid` for the cube solvers
        (violations are localized to the offending cube) or a
        :class:`~repro.core.lbm.fields.FluidGrid` for the slab solvers.
        Only thread 0 scans (the state is shared; scanning once per
        step is enough), every ``self.every`` steps.
        """
        cube_blocked = hasattr(state, "cube_coords")

        def hook(tid: int, step: int) -> None:
            if tid != 0 or step % self.every:
                return
            if cube_blocked:
                _check_cube_state_finite(state, tid, step)
            else:
                _check_grid_state_finite(state, tid, step)

        return hook
