"""Golden regression baselines: checksummed state digests on disk.

The differential oracle proves *variants agree with each other*; the
golden baselines prove *the physics itself did not move*.  A small set
of named scenarios is run for a few steps and reduced to (a) scalar
physics statistics (mass, momentum, kinetic energy, extrema, fiber
geometry) compared within a tight tolerance, and (b) a SHA-256 digest
over the rounded state arrays for bit-level drift detection.  The
results live as JSON under ``tests/golden/`` and are committed; a
refactor that changes the computed physics fails the comparison loudly,
and an *intentional* physics change regenerates them with::

    python -m repro.verify --regen-golden

Digests are taken over values rounded to :data:`DIGEST_DECIMALS`
decimal places so that they are stable against floating-point noise at
the 1e-12 level while still pinning every array to ~1e-9 physics.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

import numpy as np

from repro.api import Simulation
from repro.verify.generate import VerifyCase

__all__ = [
    "GOLDEN_CASES",
    "GOLDEN_VARIANTS",
    "DIGEST_DECIMALS",
    "default_golden_dir",
    "state_stats",
    "state_arrays",
    "fields_digest",
    "state_digest",
    "compute_baseline",
    "write_baselines",
    "check_baselines",
]

#: Decimal places arrays are rounded to before hashing.
DIGEST_DECIMALS = 9

#: Relative tolerance for scalar statistics comparisons.
STATS_RTOL = 1e-9
STATS_ATOL = 1e-12

#: The committed scenarios: small, fast, and covering the main physics
#: regimes (fluid-only decay, sheet FSI, TRT + driven channel flow).
GOLDEN_CASES: dict[str, VerifyCase] = {
    "fluid_decay_bgk": VerifyCase(
        dims=(8, 8, 8),
        cube_size=2,
        tau=0.8,
        operator="bgk",
        structure_kind="none",
        steps=5,
        state_seed=20150715,
    ),
    "flat_sheet_fsi": VerifyCase(
        dims=(12, 8, 8),
        cube_size=4,
        tau=0.7,
        operator="bgk",
        structure_kind="flat_sheet",
        num_fibers=4,
        nodes_per_fiber=5,
        steps=5,
        state_seed=42,
    ),
    "trt_driven_channel": VerifyCase(
        dims=(8, 8, 4),
        cube_size=2,
        tau=0.9,
        operator="trt",
        structure_kind="none",
        external_force=(1e-5, 0.0, 0.0),
        steps=5,
        state_seed=7,
    ),
}


#: Solver variants pinned by committed baselines, as a file-name suffix
#: -> solver mapping: every case in :data:`GOLDEN_CASES` is stored once
#: per variant (``fluid_decay_bgk.json`` for the sequential reference,
#: ``fluid_decay_bgk_fused.json`` for the fused fast path, ...).
GOLDEN_VARIANTS: dict[str, str] = {
    "": "sequential",
    "_fused": "fused",
    "_inplace": "inplace",
    "_batched": "batched",
}


def default_golden_dir() -> str:
    """``tests/golden`` relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden")


def _run_case(case: VerifyCase, solver: str = "sequential") -> Simulation:
    from repro.verify.oracle import _seeded_initial_fluid

    config = case.config(solver)
    sim = Simulation(
        config,
        initial_fluid=_seeded_initial_fluid(config, case.state_seed),
    )
    sim.run(case.steps)
    return sim


def state_stats(sim: Simulation) -> dict[str, float]:
    """Scalar physics statistics of a simulation's gathered state."""
    fluid = sim.fluid
    momentum = fluid.total_momentum()
    stats: dict[str, float] = {
        "total_mass": float(fluid.total_mass()),
        "momentum_x": float(momentum[0]),
        "momentum_y": float(momentum[1]),
        "momentum_z": float(momentum[2]),
        "kinetic_energy": float(sim.kinetic_energy()),
        "max_velocity": float(sim.max_velocity()),
        "min_density": float(fluid.density.min()),
        "max_density": float(fluid.density.max()),
        "min_df": float(fluid.df.min()),
    }
    structure = sim.structure
    if structure is not None:
        for si, sheet in enumerate(structure.sheets):
            centroid = sheet.centroid()
            stats[f"sheet{si}_centroid_x"] = float(centroid[0])
            stats[f"sheet{si}_centroid_y"] = float(centroid[1])
            stats[f"sheet{si}_centroid_z"] = float(centroid[2])
            stats[f"sheet{si}_max_stretch"] = float(sheet.max_stretch_ratio())
            stats[f"sheet{si}_elastic_energy"] = float(sheet.elastic_energy())
    return stats


def state_arrays(fluid, structure=None) -> dict[str, np.ndarray]:
    """The named state arrays a digest covers, for any gathered state."""
    arrays: dict[str, np.ndarray] = {
        name: getattr(fluid, name)
        for name in ("df", "density", "velocity", "velocity_shifted", "force")
    }
    if structure is not None:
        for si, sheet in enumerate(structure.sheets):
            arrays[f"sheet{si}_positions"] = sheet.positions
            arrays[f"sheet{si}_velocity"] = sheet.velocity
    return arrays


def fields_digest(fluid, structure=None, decimals: int = DIGEST_DECIMALS) -> str:
    """SHA-256 over a gathered ``(fluid, structure)`` state's rounded arrays.

    Works on any :class:`~repro.core.lbm.fields.FluidGrid`-shaped state
    — in particular the final states carried by the batch scheduler's
    :class:`~repro.batch.scheduler.BatchResult`, which is how the chaos
    harness pins a faulted run's survivors to the fault-free golden
    digests.
    """
    arrays = state_arrays(fluid, structure)
    digest = hashlib.sha256()
    for key in sorted(arrays):
        arr = np.round(np.ascontiguousarray(arrays[key], dtype=np.float64), decimals)
        # Normalize -0.0 so the digest only sees one zero.
        arr = arr + 0.0
        digest.update(key.encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def state_digest(sim: Simulation, decimals: int = DIGEST_DECIMALS) -> str:
    """SHA-256 over every rounded state array (order-independent keys)."""
    return fields_digest(sim.fluid, sim.structure, decimals=decimals)


def compute_baseline(name: str, case: VerifyCase, solver: str = "sequential") -> dict:
    """Run one golden case under ``solver`` and reduce it to its record."""
    sim = _run_case(case, solver)
    try:
        return {
            "name": name,
            "case": case.describe(),
            "solver": solver,
            "steps": case.steps,
            "digest_decimals": DIGEST_DECIMALS,
            "stats": state_stats(sim),
            "digest": state_digest(sim),
        }
    finally:
        sim.close()


def _baseline_files() -> list[tuple[str, VerifyCase, str, str]]:
    """Every ``(case name, case, solver, file name)`` baseline on disk."""
    return [
        (name, case, solver, f"{name}{suffix}.json")
        for name, case in GOLDEN_CASES.items()
        for suffix, solver in GOLDEN_VARIANTS.items()
    ]


def write_baselines(golden_dir: str | os.PathLike | None = None) -> list[str]:
    """(Re)generate every golden baseline file; returns written paths."""
    directory = os.fspath(golden_dir or default_golden_dir())
    os.makedirs(directory, exist_ok=True)
    written = []
    for name, case, solver, filename in _baseline_files():
        record = compute_baseline(name, case, solver)
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(path)
    return written


def check_baselines(golden_dir: str | os.PathLike | None = None) -> list[str]:
    """Compare current physics against the committed baselines.

    Returns a list of human-readable failure strings (empty = pass).  A
    missing baseline file is a failure: the suite must never silently
    skip a regression gate.
    """
    directory = os.fspath(golden_dir or default_golden_dir())
    failures: list[str] = []
    for name, case, solver, filename in _baseline_files():
        label = name if solver == "sequential" else f"{name}[{solver}]"
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            failures.append(
                f"{label}: baseline file {path} is missing "
                "(run `python -m repro.verify --regen-golden`)"
            )
            continue
        with open(path, encoding="utf-8") as fh:
            stored = json.load(fh)
        current = compute_baseline(name, case, solver)
        for key, expected in stored["stats"].items():
            got = current["stats"].get(key)
            if got is None:
                failures.append(f"{label}: statistic {key!r} no longer computed")
                continue
            if abs(got - expected) > STATS_ATOL + STATS_RTOL * abs(expected):
                failures.append(
                    f"{label}: statistic {key!r} moved from {expected:.12g} "
                    f"to {got:.12g}"
                )
        if current["digest"] != stored["digest"]:
            failures.append(
                f"{label}: state digest changed "
                f"({stored['digest'][:12]}... -> {current['digest'][:12]}...); "
                "the computed physics is no longer bit-compatible with the "
                "baseline — if intentional, regenerate with "
                "`python -m repro.verify --regen-golden`"
            )
    return failures
