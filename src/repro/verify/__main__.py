"""``python -m repro.verify`` — the physics verification gate.

Runs, in order:

1. **Golden baselines** — the committed checksummed digests under
   ``tests/golden/`` still match the current code.
2. **Differential oracle sweep** — for each generated config (seeded,
   reproducible), every parallel variant is compared step-locked
   against the sequential reference; any divergence is shrunk to a
   minimal failing case before being reported.
3. **Perturbation self-test** — a run with tau deliberately off by
   1e-3 *must* be caught by the oracle, with the divergent step, field,
   and cube identified; a verification harness that cannot detect a
   known-bad kernel is worse than none.

Exit status 0 = all gates passed.  Wired as ``make verify-physics``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.verify.generate import generate_cases, shrink_case
from repro.verify.golden import check_baselines, write_baselines
from repro.verify.oracle import DifferentialOracle, compare_variants

#: Variants checked against the sequential reference: the fused
#: single-core fast path, its single-lattice in-place (AA-pattern)
#: form, its batched form, and every parallel schedule.
VARIANTS = (
    "fused",
    "inplace",
    "batched",
    "openmp",
    "cube",
    "async_cube",
    "distributed",
    "hybrid",
)


def _run_golden(regen: bool, golden_dir: str | None) -> int:
    if regen:
        for path in write_baselines(golden_dir):
            print(f"  wrote {path}")
        return 0
    failures = check_baselines(golden_dir)
    for failure in failures:
        print(f"  FAIL {failure}")
    if not failures:
        print("  golden baselines match")
    return len(failures)


def _oracle_failure(case, variant):
    """Re-run one (case, variant) pair; the shrink predicate."""
    return compare_variants(
        case.config(),
        "sequential",
        variant,
        case.steps,
        state_seed=case.state_seed,
    )


def _run_oracle_sweep(seed: int, count: int) -> int:
    cases = generate_cases(seed, count)
    failures = 0
    for i, case in enumerate(cases):
        print(f"  case {i}: {case.describe()}")
        for variant in VARIANTS:
            divergence = _oracle_failure(case, variant)
            if divergence is None:
                print(f"    {variant:<12} ok")
                continue
            failures += 1
            print(f"    {variant:<12} FAIL {divergence}")
            minimal = shrink_case(
                case, lambda c: _oracle_failure(c, variant) is not None
            )
            if minimal != case:
                print(f"    minimal failing case: {minimal.describe()}")
                print(f"    minimal divergence:   {_oracle_failure(minimal, variant)}")
    return failures


def _run_selftest(seed: int) -> int:
    """The oracle must catch a tau perturbed by 1e-3 (cube-localized)."""
    case = generate_cases(seed, 1)[0]
    config = case.config()
    perturbed = replace(config, tau=config.effective_tau + 1e-3, viscosity=None)
    oracle = DifferentialOracle(
        config,
        variant_a="sequential",
        variant_b="cube",
        state_seed=case.state_seed,
        config_b=perturbed,
    )
    divergence = oracle.run(max(case.steps, 2))
    if divergence is None:
        print("  FAIL: a tau perturbation of 1e-3 was NOT detected")
        return 1
    located = divergence.cube is not None
    print(f"  caught injected perturbation: {divergence}")
    if not located:
        print("  FAIL: divergence in a cube variant lacks cube localization")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="LBM-IB physics verification gate",
    )
    parser.add_argument("--cases", type=int, default=3, help="generated configs to sweep")
    parser.add_argument("--seed", type=int, default=20150715, help="generator seed")
    parser.add_argument("--golden-dir", default=None, help="golden baseline directory")
    parser.add_argument(
        "--regen-golden",
        action="store_true",
        help="regenerate the golden baselines instead of checking them",
    )
    parser.add_argument(
        "--skip-selftest",
        action="store_true",
        help="skip the deliberate-perturbation self-test",
    )
    args = parser.parse_args(argv)

    failures = 0
    print("[1/3] golden regression baselines")
    failures += _run_golden(args.regen_golden, args.golden_dir)
    if args.regen_golden:
        return 0

    print(f"[2/3] differential oracle sweep ({args.cases} generated configs)")
    failures += _run_oracle_sweep(args.seed, args.cases)

    if args.skip_selftest:
        print("[3/3] perturbation self-test skipped")
    else:
        print("[3/3] perturbation self-test (tau off by 1e-3)")
        failures += _run_selftest(args.seed)

    if failures:
        print(f"verify-physics: {failures} failure(s)")
        return 1
    print("verify-physics: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
