"""Simulated message-passing substrate (the MPI stand-in).

The paper's first future-work item is extending the library "from
shared memory manycore systems to extreme-scale distributed memory
manycore systems".  Real MPI is unavailable in this environment, so
:class:`SimulatedComm` provides the communicator semantics the
distributed solver needs — point-to-point sends/receives with tags,
barriers, and allreduce — with ranks running as threads and *no shared
mutable numerical state*: every transferred array is copied at the
send boundary, exactly as a network transport would.

Message counts and byte volumes are recorded per rank, so communication
costs of the distributed algorithm are measurable.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CommStats", "SimulatedComm", "RankComm"]


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0


class SimulatedComm:
    """A communicator over ``size`` thread-ranks.

    Obtain each rank's endpoint with :meth:`rank_comm`; run the ranks
    with :func:`repro.parallel.executor.run_spmd`.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"communicator size must be positive, got {size}")
        self.size = size
        self._mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        self._mailbox_lock = threading.Lock()
        self._barrier = threading.Barrier(size)
        self._reduce_lock = threading.Lock()
        self._reduce_buffer: np.ndarray | None = None
        self._reduce_count = 0
        self._reduce_result: np.ndarray | None = None
        self.stats = [CommStats() for _ in range(size)]

    def _mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = self._mailboxes[key] = queue.Queue()
            return box

    def rank_comm(self, rank: int) -> "RankComm":
        """The endpoint for ``rank``."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside communicator of {self.size}")
        return RankComm(self, rank)

    def total_bytes_sent(self) -> int:
        """Bytes sent across all ranks."""
        return sum(s.bytes_sent for s in self.stats)

    def total_messages(self) -> int:
        """Messages sent across all ranks."""
        return sum(s.messages_sent for s in self.stats)


class RankComm:
    """One rank's view of a :class:`SimulatedComm`."""

    def __init__(self, comm: SimulatedComm, rank: int) -> None:
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.comm.size

    # ------------------------------------------------------------------
    def send(self, dst: int, tag: int, array: np.ndarray) -> None:
        """Send a copy of ``array`` to ``dst`` (non-blocking deposit)."""
        if not 0 <= dst < self.size:
            raise ConfigurationError(f"destination rank {dst} out of range")
        payload = np.array(array, copy=True)
        self.comm._mailbox(self.rank, dst, tag).put(payload)
        st = self.comm.stats[self.rank]
        st.messages_sent += 1
        st.bytes_sent += payload.nbytes

    def recv(self, src: int, tag: int, timeout: float = 30.0) -> np.ndarray:
        """Block until the matching message from ``src`` arrives."""
        if not 0 <= src < self.size:
            raise ConfigurationError(f"source rank {src} out of range")
        try:
            payload = self.comm._mailbox(src, self.rank, tag).get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"rank {self.rank} timed out waiting for tag {tag} from rank {src}"
            ) from None
        st = self.comm.stats[self.rank]
        st.messages_received += 1
        st.bytes_received += payload.nbytes
        return payload

    def sendrecv(
        self, dst: int, src: int, tag: int, array: np.ndarray
    ) -> np.ndarray:
        """Exchange: send to ``dst``, receive the counterpart from ``src``."""
        self.send(dst, tag, array)
        return self.recv(src, tag)

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks."""
        self.comm._barrier.wait()

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        """Element-wise sum over all ranks; every rank gets the result.

        Deterministic accumulation order (rank 0, 1, ...) would require
        extra staging; instead contributions are added under a lock in
        arrival order, which is sufficient for the library's tolerance
        contracts and matches MPI's unspecified reduction order.
        """
        comm = self.comm
        contribution = np.asarray(array, dtype=np.float64)
        with comm._reduce_lock:
            if comm._reduce_buffer is None:
                comm._reduce_buffer = contribution.copy()
            else:
                comm._reduce_buffer = comm._reduce_buffer + contribution
            comm._reduce_count += 1
        self.barrier()
        # buffer complete; publish, then reset after everyone has read it
        with comm._reduce_lock:
            if comm._reduce_result is None:
                comm._reduce_result = comm._reduce_buffer
        result = comm._reduce_result.copy()
        self.barrier()
        with comm._reduce_lock:
            comm._reduce_buffer = None
            comm._reduce_result = None
            comm._reduce_count = 0
        self.barrier()
        return result
