"""Simulated message-passing substrate (the MPI stand-in).

The paper's first future-work item is extending the library "from
shared memory manycore systems to extreme-scale distributed memory
manycore systems".  Real MPI is unavailable in this environment, so
:class:`SimulatedComm` provides the communicator semantics the
distributed solver needs — point-to-point sends/receives with tags,
barriers, and allreduce — with ranks running as threads and *no shared
mutable numerical state*: every transferred array is copied at the
send boundary, exactly as a network transport would.

Message counts and byte volumes are recorded per rank, so communication
costs of the distributed algorithm are measurable.

Every blocking operation takes a deadline (per call, or the
communicator-wide ``timeout`` default): a dead or stalled peer rank
turns into a typed :class:`~repro.errors.CommTimeoutError` naming the
waiting rank, the operation, and (for receives) the expected source and
tag — never an indefinite hang.  An optional fault injector
(:class:`repro.resilience.FaultInjector`) may drop or delay messages at
the send boundary to exercise those paths deterministically.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import CommTimeoutError, ConfigurationError

__all__ = ["CommStats", "SimulatedComm", "RankComm", "DEFAULT_COMM_TIMEOUT"]

#: Default deadline for barriers/collectives; generous for real runs,
#: overridable per communicator or per call for tests.
DEFAULT_COMM_TIMEOUT = 60.0


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    messages_dropped: int = 0


class SimulatedComm:
    """A communicator over ``size`` thread-ranks.

    Obtain each rank's endpoint with :meth:`rank_comm`; run the ranks
    with :func:`repro.parallel.executor.run_spmd`.

    Parameters
    ----------
    size:
        Number of ranks.
    timeout:
        Default deadline (seconds) for barriers and collectives.
    fault_injector:
        Optional object with an ``on_send(src, dst, tag)`` hook
        returning ``None`` (deliver), ``"drop"``, or a float delay in
        seconds — used by the resilience test harness to simulate lost
        or slow messages.
    """

    def __init__(
        self,
        size: int,
        timeout: float | None = DEFAULT_COMM_TIMEOUT,
        fault_injector=None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"communicator size must be positive, got {size}")
        self.size = size
        self.timeout = timeout
        self.fault_injector = fault_injector
        self._mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        self._mailbox_lock = threading.Lock()
        self._barrier = threading.Barrier(size, action=self._clear_arrivals)
        self._arrived: list[int] = []
        self._arrived_lock = threading.Lock()
        self._reduce_lock = threading.Lock()
        self._reduce_buffer: np.ndarray | None = None
        self._reduce_count = 0
        self._reduce_result: np.ndarray | None = None
        self.stats = [CommStats() for _ in range(size)]

    def _clear_arrivals(self) -> None:
        with self._arrived_lock:
            self._arrived.clear()

    def _mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = self._mailboxes[key] = queue.Queue()
            return box

    def rank_comm(self, rank: int) -> "RankComm":
        """The endpoint for ``rank``."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside communicator of {self.size}")
        return RankComm(self, rank)

    def total_bytes_sent(self) -> int:
        """Bytes sent across all ranks."""
        return sum(s.bytes_sent for s in self.stats)

    def total_messages(self) -> int:
        """Messages sent across all ranks."""
        return sum(s.messages_sent for s in self.stats)


class RankComm:
    """One rank's view of a :class:`SimulatedComm`."""

    def __init__(self, comm: SimulatedComm, rank: int) -> None:
        self.comm = comm
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.comm.size

    # ------------------------------------------------------------------
    def send(self, dst: int, tag: int, array: np.ndarray) -> None:
        """Send a copy of ``array`` to ``dst`` (non-blocking deposit)."""
        if not 0 <= dst < self.size:
            raise ConfigurationError(f"destination rank {dst} out of range")
        st = self.comm.stats[self.rank]
        injector = self.comm.fault_injector
        if injector is not None:
            action = injector.on_send(self.rank, dst, tag)
            if action == "drop":
                st.messages_dropped += 1
                return
            if action is not None:
                time.sleep(float(action))
        payload = np.array(array, copy=True)
        self.comm._mailbox(self.rank, dst, tag).put(payload)
        st.messages_sent += 1
        st.bytes_sent += payload.nbytes

    def recv(self, src: int, tag: int, timeout: float | None = None) -> np.ndarray:
        """Block until the matching message from ``src`` arrives.

        The deadline defaults to the communicator-wide ``timeout``.
        Raises :class:`~repro.errors.CommTimeoutError` (an
        :class:`LBMIBError` and a :class:`TimeoutError`) carrying this
        rank, the source rank, and the tag if no message arrives in
        time.
        """
        if not 0 <= src < self.size:
            raise ConfigurationError(f"source rank {src} out of range")
        deadline = self.comm.timeout if timeout is None else timeout
        try:
            payload = self.comm._mailbox(src, self.rank, tag).get(timeout=deadline)
        except queue.Empty:
            raise CommTimeoutError(
                self.rank, "recv", deadline, src=src, tag=tag
            ) from None
        st = self.comm.stats[self.rank]
        st.messages_received += 1
        st.bytes_received += payload.nbytes
        return payload

    def sendrecv(
        self, dst: int, src: int, tag: int, array: np.ndarray
    ) -> np.ndarray:
        """Exchange: send to ``dst``, receive the counterpart from ``src``."""
        self.send(dst, tag, array)
        return self.recv(src, tag)

    # ------------------------------------------------------------------
    def barrier(self, timeout: float | None = None) -> None:
        """Synchronize all ranks.

        ``timeout`` defaults to the communicator's configured deadline;
        a rank that never arrives (it died, or is wedged) breaks the
        barrier for everyone, and every waiter raises
        :class:`~repro.errors.CommTimeoutError` naming the missing
        ranks.
        """
        comm = self.comm
        deadline = comm.timeout if timeout is None else timeout
        with comm._arrived_lock:
            comm._arrived.append(self.rank)
        try:
            comm._barrier.wait(deadline)
        except threading.BrokenBarrierError:
            with comm._arrived_lock:
                arrived = set(comm._arrived)
                if self.rank in comm._arrived:
                    comm._arrived.remove(self.rank)
            missing = sorted(set(range(comm.size)) - arrived)
            raise CommTimeoutError(
                self.rank,
                "barrier",
                0.0 if deadline is None else deadline,
                missing=missing,
            ) from None

    def allreduce_sum(
        self, array: np.ndarray, timeout: float | None = None
    ) -> np.ndarray:
        """Element-wise sum over all ranks; every rank gets the result.

        Deterministic accumulation order (rank 0, 1, ...) would require
        extra staging; instead contributions are added under a lock in
        arrival order, which is sufficient for the library's tolerance
        contracts and matches MPI's unspecified reduction order.

        Inherits the barrier deadline semantics: a missing peer raises
        :class:`~repro.errors.CommTimeoutError` instead of deadlocking.
        """
        comm = self.comm
        # The reduction accumulates in float64 regardless of the input's
        # storage dtype (the backend's mixed-policy contract for global
        # sums); a sub-f64 float input gets its dtype back at the end.
        in_dtype = np.asarray(array).dtype
        contribution = np.asarray(array, dtype=np.float64)
        with comm._reduce_lock:
            if comm._reduce_buffer is None:
                comm._reduce_buffer = contribution.copy()
            else:
                comm._reduce_buffer = comm._reduce_buffer + contribution
            comm._reduce_count += 1
        self.barrier(timeout)
        # buffer complete; publish, then reset after everyone has read it
        with comm._reduce_lock:
            if comm._reduce_result is None:
                comm._reduce_result = comm._reduce_buffer
        result = comm._reduce_result.copy()
        self.barrier(timeout)
        with comm._reduce_lock:
            comm._reduce_buffer = None
            comm._reduce_result = None
            comm._reduce_count = 0
        self.barrier(timeout)
        if in_dtype.kind == "f" and in_dtype != np.float64:
            result = result.astype(in_dtype)
        return result
