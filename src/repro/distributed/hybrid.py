"""Hybrid distributed + cube solver.

The paper's future work asks to "extend the *cube-based implementation*
from shared memory manycore systems to extreme-scale distributed memory
manycore systems" — i.e. keep the cube-centric data layout on every
node and add message passing between nodes.  This solver does exactly
that:

* each rank owns an x-slab stored as a rank-local
  :class:`~repro.parallel.cubes.CubeGrid` (the slab thickness must be a
  multiple of the cube size);
* within a rank, every step runs the cube-centric kernels of
  Algorithm 4 (fused collide+stream per cube, per-cube velocity update
  and buffer copy), reusing :class:`CubeLBMIBSolver`'s per-cube
  operations directly;
* the within-rank streaming wraps periodically, which deposits *wrong*
  values exactly on the slab's two x-boundary planes — those planes are
  then overwritten by the halo planes received from the neighbouring
  ranks, the same exchange pattern as the flat distributed solver;
* the immersed structure is replicated per rank; forces spread into the
  local cubes only, and partial fiber velocities are summed with an
  allreduce.

Numerics are identical to the sequential program (tested), completing
the chain sequential -> OpenMP -> cube -> async-cube -> distributed ->
distributed-cube.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.constants import DT, DTYPE
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.ib import forces as _forces
from repro.core.ib.spreading import flatten_stencil
from repro.core.lbm.boundaries import Boundary, validate_boundaries
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.lattice import E, Q
from repro.distributed.comm import RankComm, SimulatedComm
from repro.errors import ConfigurationError, PartitionError
from repro.parallel.cube_solver import CubeLBMIBSolver
from repro.parallel.cubes import CubeGrid
from repro.parallel.executor import run_spmd

__all__ = ["HybridCubeLBMIBSolver"]

_PLUS_X = [i for i in range(Q) if E[i, 0] == 1]
_MINUS_X = [i for i in range(Q) if E[i, 0] == -1]
_TAG_RIGHT = 0
_TAG_LEFT = 1


class HybridCubeLBMIBSolver:
    """Cube-layout ranks with halo exchange (distributed Algorithm 4).

    Parameters
    ----------
    fluid:
        Global initial state, scattered into rank-local cube grids.
    structure:
        Immersed structure (replicated per rank) or ``None``.
    num_ranks:
        Ranks; the x extent must split into ``num_ranks`` slabs whose
        thicknesses are multiples of ``cube_size``.
    cube_size:
        Cube edge ``k`` of every rank's local cube grid.
    """

    def __init__(
        self,
        fluid: FluidGrid,
        structure: ImmersedStructure | None,
        num_ranks: int,
        cube_size: int = 4,
        delta: DeltaKernel | None = None,
        boundaries: list[Boundary] | None = None,
        dt: float = DT,
        external_force: tuple[float, float, float] | None = None,
    ) -> None:
        nx, ny, nz = fluid.shape
        if num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be positive, got {num_ranks}")
        if ny % cube_size or nz % cube_size:
            raise PartitionError(
                f"grid {fluid.shape} y/z extents not divisible by cube size {cube_size}"
            )
        cubes_x = nx // cube_size
        if nx % cube_size or cubes_x < num_ranks:
            raise PartitionError(
                f"cannot split {nx} x-planes into {num_ranks} rank slabs of "
                f"whole {cube_size}-cubes"
            )
        self.global_shape = fluid.shape
        self.num_ranks = num_ranks
        self.cube_size = cube_size
        self.delta = delta if delta is not None else default_delta()
        self.boundaries = list(boundaries or [])
        validate_boundaries(self.boundaries)
        self.dt = dt
        self.external_force = external_force
        self.time_step = 0
        self.comm = SimulatedComm(num_ranks)
        # Optional observe.Tracer; one span per phase per rank per step
        # (tid = rank).  None keeps the rank loop overhead-free.
        self.tracer = None

        # distribute whole cubes: rank slab thickness = cubes * k
        base, rem = divmod(cubes_x, num_ranks)
        self.slab_starts: list[int] = []
        self.slab_sizes: list[int] = []
        start = 0
        for r in range(num_ranks):
            size = (base + (1 if r < rem else 0)) * cube_size
            self.slab_starts.append(start)
            self.slab_sizes.append(size)
            start += size

        self._engines: list[CubeLBMIBSolver] = []
        self._structures: list[ImmersedStructure | None] = []
        for r in range(num_ranks):
            x0, size = self.slab_starts[r], self.slab_sizes[r]
            local = FluidGrid(
                (size, ny, nz),
                tau=fluid.tau,
                collision_operator=fluid.collision_operator,
                trt_magic=fluid.trt_magic,
            )
            sl = slice(x0, x0 + size)
            local.df[...] = fluid.df[:, sl]
            local.df_new[...] = fluid.df_new[:, sl]
            local.density[...] = fluid.density[sl]
            local.velocity[...] = fluid.velocity[:, sl]
            local.velocity_shifted[...] = fluid.velocity_shifted[:, sl]
            local.force[...] = fluid.force[:, sl]
            if external_force is not None:
                local.force[...] = np.asarray(external_force, dtype=DTYPE)[
                    :, None, None, None
                ]
            cube_grid = CubeGrid.from_fluid_grid(local, cube_size)
            rank_boundaries = [
                b
                for b in self.boundaries
                if b.axis != 0
                or (b.side == "low" and r == 0)
                or (b.side == "high" and r == num_ranks - 1)
            ]
            engine = CubeLBMIBSolver(
                cube_grid,
                None,  # fibers handled at the hybrid level (replication)
                num_threads=1,
                boundaries=rank_boundaries,
                delta=self.delta,
                dt=dt,
                use_locks=False,  # single thread per rank
                trace=False,
                external_force=external_force,
            )
            self._engines.append(engine)
            self._structures.append(
                structure.copy() if structure is not None else None
            )

    # ------------------------------------------------------------------
    # plane gather/scatter against cube storage
    # ------------------------------------------------------------------
    def _plane_record_indices(self, rank: int, local_x: int):
        """(cube, local) indices of one local x-plane, in (y, z) order."""
        engine = self._engines[rank]
        cubes = engine.cubes
        ny, nz = self.global_shape[1], self.global_shape[2]
        y, z = np.meshgrid(np.arange(ny), np.arange(nz), indexing="ij")
        flat = (local_x * ny + y.ravel()) * nz + z.ravel()
        return cubes.locate_flat(flat)

    def _gather_df_plane(self, rank: int, local_x: int, directions) -> np.ndarray:
        """Post-collision ``df`` values of ``directions`` on one plane."""
        engine = self._engines[rank]
        cubes = engine.cubes
        k3 = self.cube_size**3
        cube_idx, local_idx = self._plane_record_indices(rank, local_x)
        ny, nz = self.global_shape[1], self.global_shape[2]
        df_flat = cubes.df.reshape(cubes.num_cubes, Q, k3)
        out = np.empty((len(directions), ny, nz), dtype=DTYPE)
        for slot, i in enumerate(directions):
            out[slot] = df_flat[cube_idx, i, local_idx].reshape(ny, nz)
        return out

    def _scatter_df_new_plane(
        self, rank: int, local_x: int, directions, values: np.ndarray
    ) -> None:
        """Overwrite ``df_new`` of ``directions`` on one local plane."""
        engine = self._engines[rank]
        cubes = engine.cubes
        k3 = self.cube_size**3
        cube_idx, local_idx = self._plane_record_indices(rank, local_x)
        df_new_flat = cubes.df_new.reshape(cubes.num_cubes, Q, k3)
        for slot, i in enumerate(directions):
            df_new_flat[cube_idx, i, local_idx] = values[slot].ravel()

    # ------------------------------------------------------------------
    # fiber handling (replicated, slab-clipped) — mirrors the flat solver
    # ------------------------------------------------------------------
    def _spread_local(self, rank: int) -> None:
        structure = self._structures[rank]
        assert structure is not None
        engine = self._engines[rank]
        cubes = engine.cubes
        k3 = self.cube_size**3
        x0 = self.slab_starts[rank]
        size = self.slab_sizes[rank]
        ny, nz = self.global_shape[1], self.global_shape[2]
        force_flat = cubes.force.reshape(cubes.num_cubes, 3, k3)
        for sheet in structure.sheets:
            _forces.compute_bending_force(sheet)
            _forces.compute_stretching_force(sheet)
            _forces.compute_elastic_force(sheet)
            positions = sheet.positions[sheet.active]
            values = sheet.elastic_force[sheet.active] * sheet.area_element
            if positions.size == 0:
                continue
            indices, weights = self.delta.stencil(
                positions, grid_shape=self.global_shape
            )
            flat_idx, flat_w = flatten_stencil(indices, weights, self.global_shape)
            gx = flat_idx // (ny * nz)
            mine = ((gx >= x0) & (gx < x0 + size)).ravel()
            local_flat = (flat_idx - x0 * ny * nz).ravel()[mine]
            contrib = (flat_w[:, :, None] * values[:, None, :]).reshape(-1, 3)[mine]
            cube_idx, local_idx = cubes.locate_flat(local_flat)
            for comp in range(3):
                np.add.at(
                    force_flat[:, comp, :],
                    (cube_idx, local_idx),
                    contrib[:, comp],
                )

    def _move_fibers_allreduce(self, rank: int, rc: RankComm) -> None:
        structure = self._structures[rank]
        assert structure is not None
        engine = self._engines[rank]
        cubes = engine.cubes
        k3 = self.cube_size**3
        x0 = self.slab_starts[rank]
        size = self.slab_sizes[rank]
        ny, nz = self.global_shape[1], self.global_shape[2]
        vel_flat = cubes.velocity.reshape(cubes.num_cubes, 3, k3)
        for sheet in structure.sheets:
            positions = sheet.positions[sheet.active]
            if positions.size == 0:
                continue
            indices, weights = self.delta.stencil(
                positions, grid_shape=self.global_shape
            )
            flat_idx, flat_w = flatten_stencil(indices, weights, self.global_shape)
            gx = flat_idx // (ny * nz)
            mine = (gx >= x0) & (gx < x0 + size)
            w_local = np.where(mine, flat_w, 0.0)
            local_flat = np.where(mine, flat_idx - x0 * ny * nz, 0)
            cube_idx, local_idx = cubes.locate_flat(local_flat.ravel())
            n, s3 = flat_idx.shape
            partial = np.empty((n, 3), dtype=DTYPE)
            for comp in range(3):
                gathered = vel_flat[cube_idx, comp, local_idx].reshape(n, s3)
                partial[:, comp] = np.einsum("ns,ns->n", gathered, w_local)
            total = rc.allreduce_sum(partial)
            sheet.velocity[sheet.active] = total
            sheet.positions[sheet.active] += self.dt * total

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _phase(
        self, name: str, rank: int, step: int, fn: Callable[[], None]
    ) -> None:
        """Run one rank-loop phase, emitting a span when tracing."""
        tracer = self.tracer
        if tracer is None:
            fn()
            return
        start = time.perf_counter()
        fn()
        tracer.record(
            name,
            rank,
            start,
            time.perf_counter() - start,
            step=step,
            cat="phase",
        )

    def _halo_exchange(self, rank: int, rc: RankComm, step: int) -> None:
        """Exchange the y/z-rolled boundary populations of ``df``."""
        right = (rank + 1) % self.num_ranks
        left = (rank - 1) % self.num_ranks
        last = self.slab_sizes[rank] - 1
        out_right = self._gather_df_plane(rank, last, _PLUS_X)
        out_left = self._gather_df_plane(rank, 0, _MINUS_X)
        for slot, i in enumerate(_PLUS_X):
            ey, ez = int(E[i, 1]), int(E[i, 2])
            out_right[slot] = np.roll(out_right[slot], (ey, ez), (0, 1))
        for slot, i in enumerate(_MINUS_X):
            ey, ez = int(E[i, 1]), int(E[i, 2])
            out_left[slot] = np.roll(out_left[slot], (ey, ez), (0, 1))
        tag_r = (step << 1) | _TAG_RIGHT
        tag_l = (step << 1) | _TAG_LEFT
        rc.send(right, tag_r, out_right)
        rc.send(left, tag_l, out_left)
        self._scatter_df_new_plane(rank, 0, _PLUS_X, rc.recv(left, tag_r))
        self._scatter_df_new_plane(rank, last, _MINUS_X, rc.recv(right, tag_l))

    def _rank_loop(self, rank: int, num_steps: int) -> None:
        rc = self.comm.rank_comm(rank)
        engine = self._engines[rank]
        cubes = engine.cubes
        has_structure = self._structures[rank] is not None

        def all_cubes(op) -> Callable[[], None]:
            return lambda: [op(c) for c in range(cubes.num_cubes)]

        for local_step in range(num_steps):
            step = self.time_step + local_step
            if has_structure:
                self._phase(
                    "fiber_forces_and_spread",
                    rank,
                    step,
                    lambda: self._spread_local(rank),
                )

            # loop 2 (cube-centric): fused collide + stream, all own cubes
            self._phase(
                "compute_fluid_collision", rank, step, all_cubes(engine._collide_cube)
            )
            self._phase(
                "stream_fluid_velocity_distribution",
                rank,
                step,
                all_cubes(engine._stream_cube),
            )

            # halo exchange: y/z-rolled boundary populations of df
            self._phase(
                "halo_exchange",
                rank,
                step,
                lambda: self._halo_exchange(rank, rc, step),
            )

            # loop 3: boundaries + velocity update per cube
            self._phase(
                "update_fluid_velocity", rank, step, all_cubes(engine._update_cube)
            )

            # loop 4 + 5
            if has_structure:
                self._phase(
                    "move_fibers",
                    rank,
                    step,
                    lambda: self._move_fibers_allreduce(rank, rc),
                )
            self._phase(
                "copy_fluid_velocity_distribution",
                rank,
                step,
                all_cubes(engine._copy_cube),
            )

    def run(self, num_steps: int) -> None:
        """Advance ``num_steps`` steps across all cube-layout ranks."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        if num_steps == 0:
            return
        run_spmd(self.num_ranks, lambda rank: self._rank_loop(rank, num_steps))
        self.time_step += num_steps

    # ------------------------------------------------------------------
    @property
    def structure(self) -> ImmersedStructure | None:
        """Rank 0's structure replica."""
        return self._structures[0]

    def gather_fluid(self) -> FluidGrid:
        """Reassemble the global fluid state from the rank cube grids."""
        template = self._engines[0].cubes
        fluid = FluidGrid(
            self.global_shape,
            tau=template.tau,
            collision_operator=template.collision_operator,
            trt_magic=template.trt_magic,
        )
        for r, engine in enumerate(self._engines):
            local = engine.cubes.to_fluid_grid()
            sl = slice(self.slab_starts[r], self.slab_starts[r] + self.slab_sizes[r])
            fluid.df[:, sl] = local.df
            fluid.df_new[:, sl] = local.df_new
            fluid.density[sl] = local.density
            fluid.velocity[:, sl] = local.velocity
            fluid.velocity_shifted[:, sl] = local.velocity_shifted
            fluid.force[:, sl] = local.force
        return fluid
