"""Distributed-memory LBM-IB solver over the simulated communicator.

Realizes the paper's future-work extension "from shared memory manycore
systems to extreme-scale distributed memory manycore systems":

* the fluid grid is block-decomposed along x — each rank owns a
  contiguous slab and *never* touches another rank's arrays;
* streaming exchanges exactly the boundary populations that cross rank
  borders: the five +x-moving populations of the last plane go right,
  the five -x-moving populations of the first plane go left (one
  message each way per step, per rank);
* the immersed structure is **replicated**: every rank holds the fiber
  state and computes the (cheap, paper Table I: <2.2%) fiber forces
  redundantly, spreads only into its own slab, interpolates partial
  fiber velocities from its slab, and an allreduce sums the partials —
  the delta support's partition of unity makes the sum exact;
* physical boundaries are applied by the ranks owning the faces.

Numerics are identical to the sequential solver (enforced by tests), so
the distributed extension slots into the same verification story as the
shared-memory programs.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.constants import DT, DTYPE
from repro.core import coupling as _coupling
from repro.core.ib import forces as _forces
from repro.core.ib.delta import DeltaKernel, default_delta
from repro.core.ib.fiber import ImmersedStructure
from repro.core.ib.spreading import flatten_stencil
from repro.core.lbm import collision as _collision
from repro.core.lbm import macroscopic as _macroscopic
from repro.core.lbm.boundaries import Boundary, validate_boundaries
from repro.core.lbm.fields import FluidGrid
from repro.core.lbm.lattice import E, Q
from repro.distributed.comm import RankComm, SimulatedComm
from repro.errors import ConfigurationError
from repro.parallel.executor import run_spmd
from repro.parallel.partition import static_slabs

__all__ = ["DistributedLBMIBSolver"]

#: Directions leaving a slab in +x / -x (five each in D3Q19).
_PLUS_X = [i for i in range(Q) if E[i, 0] == 1]
_MINUS_X = [i for i in range(Q) if E[i, 0] == -1]

_TAG_RIGHT = 0
_TAG_LEFT = 1


class DistributedLBMIBSolver:
    """Rank-decomposed LBM-IB with explicit message passing.

    Parameters
    ----------
    fluid:
        Global initial fluid state; scattered into rank slabs at
        construction (the global grid is not referenced afterwards).
    structure:
        Immersed structure (replicated per rank) or ``None``.
    num_ranks:
        Ranks in the simulated communicator; each needs at least one
        x-plane.
    boundaries / delta / dt / external_force:
        As in the shared-memory solvers.
    """

    def __init__(
        self,
        fluid: FluidGrid,
        structure: ImmersedStructure | None,
        num_ranks: int,
        delta: DeltaKernel | None = None,
        boundaries: list[Boundary] | None = None,
        dt: float = DT,
        external_force: tuple[float, float, float] | None = None,
    ) -> None:
        nx, ny, nz = fluid.shape
        if num_ranks < 1:
            raise ConfigurationError(f"num_ranks must be positive, got {num_ranks}")
        if num_ranks > nx:
            raise ConfigurationError(
                f"{num_ranks} ranks need at least {num_ranks} x-planes, grid has {nx}"
            )
        self.global_shape = fluid.shape
        self.num_ranks = num_ranks
        self.delta = delta if delta is not None else default_delta()
        self.boundaries = list(boundaries or [])
        validate_boundaries(self.boundaries)
        self.dt = dt
        self.external_force = external_force
        self.time_step = 0
        self.comm = SimulatedComm(num_ranks)
        # Optional observe.Tracer; one span per phase per rank per step
        # (tid = rank).  None keeps the rank loop overhead-free.
        self.tracer = None

        self.slabs = static_slabs(nx, num_ranks)
        self._grids: list[FluidGrid] = []
        for slab in self.slabs:
            local = FluidGrid(
                (slab.size, ny, nz),
                tau=fluid.tau,
                collision_operator=fluid.collision_operator,
                trt_magic=fluid.trt_magic,
            )
            sl = slice(slab.start, slab.stop)
            local.df[...] = fluid.df[:, sl]
            local.df_new[...] = fluid.df_new[:, sl]
            local.density[...] = fluid.density[sl]
            local.velocity[...] = fluid.velocity[:, sl]
            local.velocity_shifted[...] = fluid.velocity_shifted[:, sl]
            local.force[...] = fluid.force[:, sl]
            if external_force is not None:
                local.force[...] = np.asarray(external_force, dtype=DTYPE)[
                    :, None, None, None
                ]
            self._grids.append(local)
        self._structures: list[ImmersedStructure | None] = [
            structure.copy() if structure is not None else None
            for _ in range(num_ranks)
        ]

    # ------------------------------------------------------------------
    # per-rank kernels
    # ------------------------------------------------------------------
    def _spread_local(self, rank: int) -> None:
        """Kernels 1-4: full fiber forces, spreading clipped to the slab."""
        structure = self._structures[rank]
        assert structure is not None
        grid = self._grids[rank]
        slab = self.slabs[rank]
        ny, nz = self.global_shape[1], self.global_shape[2]
        for sheet in structure.sheets:
            _forces.compute_bending_force(sheet)
            _forces.compute_stretching_force(sheet)
            _forces.compute_elastic_force(sheet)
            positions = sheet.positions[sheet.active]
            values = sheet.elastic_force[sheet.active] * sheet.area_element
            if positions.size == 0:
                continue
            indices, weights = self.delta.stencil(
                positions, grid_shape=self.global_shape
            )
            flat_idx, flat_w = flatten_stencil(indices, weights, self.global_shape)
            gx = flat_idx // (ny * nz)
            mine = (gx >= slab.start) & (gx < slab.stop)
            local_flat = flat_idx - slab.start * ny * nz
            contrib = flat_w[:, :, None] * values[:, None, :]
            sel = mine.ravel()
            lf = local_flat.ravel()[sel]
            cv = contrib.reshape(-1, 3)[sel]
            for comp in range(3):
                np.add.at(grid.force[comp].reshape(-1), lf, cv[:, comp])

    def _collide_local(self, rank: int) -> None:
        grid = self._grids[rank]
        density = _macroscopic.compute_density(grid.df)
        _collision.collide(
            grid.df,
            density,
            grid.velocity_shifted,
            grid.tau,
            operator=grid.collision_operator,
            magic_lambda=grid.trt_magic,
        )

    def _stream_exchange(self, rank: int, rc: RankComm, step: int) -> None:
        """Kernel 6 with halo exchange of the rank-crossing populations."""
        grid = self._grids[rank]
        ny, nz = grid.shape[1], grid.shape[2]
        right = (rank + 1) % self.num_ranks
        left = (rank - 1) % self.num_ranks

        out_right = np.empty((len(_PLUS_X), ny, nz), dtype=DTYPE)
        out_left = np.empty((len(_MINUS_X), ny, nz), dtype=DTYPE)

        for i in range(Q):
            ex, ey, ez = (int(c) for c in E[i])
            if ex == 0:
                grid.df_new[i] = np.roll(grid.df[i], shift=(ey, ez), axis=(1, 2))
            elif ex == 1:
                shifted_last = np.roll(grid.df[i, -1], shift=(ey, ez), axis=(0, 1))
                out_right[_PLUS_X.index(i)] = shifted_last
                if grid.shape[0] > 1:
                    grid.df_new[i, 1:] = np.roll(
                        grid.df[i, :-1], shift=(ey, ez), axis=(1, 2)
                    )
            else:
                shifted_first = np.roll(grid.df[i, 0], shift=(ey, ez), axis=(0, 1))
                out_left[_MINUS_X.index(i)] = shifted_first
                if grid.shape[0] > 1:
                    grid.df_new[i, :-1] = np.roll(
                        grid.df[i, 1:], shift=(ey, ez), axis=(1, 2)
                    )

        # one message each way per step; tags separate steps and sides
        tag_r = (step << 1) | _TAG_RIGHT
        tag_l = (step << 1) | _TAG_LEFT
        rc.send(right, tag_r, out_right)
        rc.send(left, tag_l, out_left)
        in_left = rc.recv(left, tag_r)  # what my left neighbour pushed right
        in_right = rc.recv(right, tag_l)  # what my right neighbour pushed left
        for slot, i in enumerate(_PLUS_X):
            grid.df_new[i, 0] = in_left[slot]
        for slot, i in enumerate(_MINUS_X):
            grid.df_new[i, -1] = in_right[slot]

    def _apply_boundaries_local(self, rank: int) -> None:
        grid = self._grids[rank]
        for b in self.boundaries:
            if b.axis == 0:
                owner = 0 if b.side == "low" else self.num_ranks - 1
                if rank != owner:
                    continue
            b.apply(grid.df, grid.df_new)

    def _update_local(self, rank: int) -> None:
        grid = self._grids[rank]
        _coupling.update_velocity_fields(grid)

    def _move_fibers_allreduce(self, rank: int, rc: RankComm) -> None:
        """Kernel 8: partial interpolation per rank + allreduce sum."""
        structure = self._structures[rank]
        assert structure is not None
        grid = self._grids[rank]
        slab = self.slabs[rank]
        ny, nz = self.global_shape[1], self.global_shape[2]
        for sheet in structure.sheets:
            positions = sheet.positions[sheet.active]
            if positions.size == 0:
                continue
            indices, weights = self.delta.stencil(
                positions, grid_shape=self.global_shape
            )
            flat_idx, flat_w = flatten_stencil(indices, weights, self.global_shape)
            gx = flat_idx // (ny * nz)
            mine = (gx >= slab.start) & (gx < slab.stop)
            w_local = np.where(mine, flat_w, 0.0)
            local_flat = np.where(mine, flat_idx - slab.start * ny * nz, 0)
            partial = np.empty((positions.shape[0], 3), dtype=DTYPE)
            for comp in range(3):
                gathered = grid.velocity[comp].reshape(-1)[local_flat]
                partial[:, comp] = np.einsum("ns,ns->n", gathered, w_local)
            total = rc.allreduce_sum(partial)
            sheet.velocity[sheet.active] = total
            sheet.positions[sheet.active] += self.dt * total

    def _copy_local(self, rank: int) -> None:
        grid = self._grids[rank]
        np.copyto(grid.df, grid.df_new)
        if self.external_force is None:
            grid.force[...] = 0.0
        else:
            grid.force[...] = np.asarray(self.external_force, dtype=DTYPE)[
                :, None, None, None
            ]

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _phase(
        self, name: str, rank: int, step: int, fn: Callable[[], None]
    ) -> None:
        """Run one rank-loop phase, emitting a span when tracing."""
        tracer = self.tracer
        if tracer is None:
            fn()
            return
        start = time.perf_counter()
        fn()
        tracer.record(
            name,
            rank,
            start,
            time.perf_counter() - start,
            step=step,
            cat="phase",
        )

    def _rank_loop(self, rank: int, num_steps: int) -> None:
        rc = self.comm.rank_comm(rank)
        has_structure = self._structures[rank] is not None
        for local_step in range(num_steps):
            step = self.time_step + local_step
            if has_structure:
                self._phase(
                    "fiber_forces_and_spread",
                    rank,
                    step,
                    lambda: self._spread_local(rank),
                )
            self._phase(
                "compute_fluid_collision",
                rank,
                step,
                lambda: self._collide_local(rank),
            )
            self._phase(
                "stream_and_halo_exchange",
                rank,
                step,
                lambda: (
                    self._stream_exchange(rank, rc, step),
                    self._apply_boundaries_local(rank),
                )[0],
            )
            self._phase(
                "update_fluid_velocity",
                rank,
                step,
                lambda: self._update_local(rank),
            )
            if has_structure:
                self._phase(
                    "move_fibers",
                    rank,
                    step,
                    lambda: self._move_fibers_allreduce(rank, rc),
                )
            self._phase(
                "copy_fluid_velocity_distribution",
                rank,
                step,
                lambda: self._copy_local(rank),
            )

    def run(self, num_steps: int) -> None:
        """Advance ``num_steps`` steps across all ranks."""
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        if num_steps == 0:
            return
        run_spmd(self.num_ranks, lambda rank: self._rank_loop(rank, num_steps))
        self.time_step += num_steps

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def structure(self) -> ImmersedStructure | None:
        """Rank 0's structure replica (all replicas stay identical)."""
        return self._structures[0]

    def structures_consistent(self, rtol: float = 0.0, atol: float = 0.0) -> bool:
        """True if every rank's structure replica matches rank 0's."""
        ref = self._structures[0]
        if ref is None:
            return all(s is None for s in self._structures)
        return all(
            s is not None and ref.state_allclose(s, rtol=rtol, atol=atol)
            for s in self._structures[1:]
        )

    def gather_fluid(self) -> FluidGrid:
        """Reassemble the global fluid state from the rank slabs."""
        template = self._grids[0]
        fluid = FluidGrid(
            self.global_shape,
            tau=template.tau,
            collision_operator=template.collision_operator,
            trt_magic=template.trt_magic,
        )
        for slab, local in zip(self.slabs, self._grids):
            sl = slice(slab.start, slab.stop)
            fluid.df[:, sl] = local.df
            fluid.df_new[:, sl] = local.df_new
            fluid.density[sl] = local.density
            fluid.velocity[:, sl] = local.velocity
            fluid.velocity_shifted[:, sl] = local.velocity_shifted
            fluid.force[:, sl] = local.force
        return fluid
