"""Distributed-memory extension (the paper's first future-work item).

``comm``    — simulated MPI-like communicator (thread ranks, copied
              message payloads, barriers, allreduce, traffic counters)
``solver``  — x-slab rank decomposition with halo exchange of the
              rank-crossing populations and a replicated structure
``hybrid``  — the same rank decomposition with the *cube-centric* data
              layout inside every rank (the paper's exact future-work
              sentence: distributed memory for the cube implementation)
"""

from repro.distributed.comm import CommStats, RankComm, SimulatedComm
from repro.distributed.hybrid import HybridCubeLBMIBSolver
from repro.distributed.solver import DistributedLBMIBSolver

__all__ = [
    "CommStats",
    "RankComm",
    "SimulatedComm",
    "DistributedLBMIBSolver",
    "HybridCubeLBMIBSolver",
]
