"""Version information for the LBM-IB reproduction library."""

__version__ = "1.0.0"
