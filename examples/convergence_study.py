#!/usr/bin/env python3
"""Grid-convergence study: the solver is second-order accurate.

The paper notes the LBM "is of second-order accuracy in both time and
space".  This study verifies it empirically: a Taylor-Green vortex is
run at increasing resolution under *diffusive scaling* (velocity and
viscosity scaled so the physical problem stays fixed), and the error
against the analytic solution is measured.  The observed convergence
order should approach 2.

Run:  python examples/convergence_study.py
"""

from __future__ import annotations

import numpy as np

from repro.constants import tau_from_viscosity
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver


def taylor_green_error(n: int, u0_base: float = 0.04, nu_lattice_base: float = 0.05,
                       t_physical: float = 1.0, n_base: int = 8) -> float:
    """Relative L2 error of the decayed vortex at resolution ``n``.

    Diffusive scaling from the base resolution: dx ~ 1/n, dt ~ 1/n^2,
    so lattice velocity scales as 1/n and lattice viscosity stays
    proportional to n * dx^2/dt = const ... here we fix the *physical*
    Reynolds number by scaling u0 ~ n_base/n and nu ~ n_base/n is not
    needed: keeping lattice nu fixed and u0 ~ 1/n realizes dt ~ 1/n^2.
    """
    scale = n / n_base
    u0 = u0_base / scale
    nu = nu_lattice_base
    tau = tau_from_viscosity(nu)
    steps = int(round(t_physical * scale**2 * n_base**2 * 0.05))

    grid = FluidGrid((n, n, 2), tau=tau)
    k = 2 * np.pi / n
    x = np.arange(n)
    X, Y = np.meshgrid(x, x, indexing="ij")
    u = np.zeros((3, n, n, 2))
    u[0] = (u0 * np.cos(k * X) * np.sin(k * Y))[:, :, None]
    u[1] = (-u0 * np.sin(k * X) * np.cos(k * Y))[:, :, None]
    grid.initialize_equilibrium(velocity=u)

    SequentialLBMIBSolver(grid, None).run(steps)

    decay = np.exp(-nu * 2 * k**2 * steps)
    exact = u * decay
    err = np.sqrt(((grid.velocity - exact) ** 2).sum())
    norm = np.sqrt((exact**2).sum())
    return float(err / norm)


def main() -> None:
    print("Taylor-Green grid convergence (diffusive scaling)")
    print(f"{'N':>5} {'rel L2 error':>14} {'observed order':>15}")
    resolutions = [8, 16, 32]
    errors = [taylor_green_error(n) for n in resolutions]
    prev = None
    for n, err in zip(resolutions, errors):
        order = "" if prev is None else f"{np.log2(prev / err):>15.2f}"
        print(f"{n:>5} {err:>14.3e} {order}")
        prev = err
    final_order = np.log2(errors[-2] / errors[-1])
    assert final_order > 1.6, f"expected ~2nd order, observed {final_order:.2f}"
    print(f"\nobserved order {final_order:.2f} — second-order accuracy confirmed")


if __name__ == "__main__":
    main()
