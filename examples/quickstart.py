#!/usr/bin/env python3
"""Quickstart: a flexible sheet relaxing in a quiescent fluid.

The smallest complete LBM-IB run: build a fluid box and a flat fiber
sheet through the high-level API, pinch the sheet out of plane, and
watch the elastic forces pull it back while the surrounding fluid
absorbs the motion.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Simulation, SimulationConfig, StructureConfig


def main() -> None:
    config = SimulationConfig(
        fluid_shape=(24, 24, 24),
        tau=0.8,
        structure=StructureConfig(
            kind="flat_sheet",
            num_fibers=10,
            nodes_per_fiber=10,
            stretch_coefficient=3e-2,
            bend_coefficient=1e-4,
        ),
        solver="sequential",
    )
    with Simulation(config) as sim:
        sheet = sim.structure.sheets[0]
        # pinch the centre node 1.5 lattice units out of the sheet plane
        sheet.positions[5, 5, 0] += 1.5
        print("LBM-IB quickstart: flexible sheet relaxing in quiescent fluid")
        print(f"grid {config.fluid_shape}, viscosity {sim.viscosity:.4f} (lattice units)")
        print(f"{'step':>6} {'pinch height':>13} {'max |u|':>10} {'kinetic E':>12}")
        for _ in range(10):
            sim.run(10)
            pinch = sheet.positions[5, 5, 0] - sheet.anchors[5, 5, 0]
            print(
                f"{sim.time_step:>6} {pinch:>13.4f} "
                f"{sim.max_velocity():>10.3e} {sim.kinetic_energy():>12.4e}"
            )
        assert sheet.positions[5, 5, 0] < 1.5 + sheet.anchors[5, 5, 0], (
            "the pinched node should relax back toward the sheet plane"
        )
        print("done: the sheet relaxed and stirred the fluid, as expected")


if __name__ == "__main__":
    main()
