#!/usr/bin/env python3
"""Simulation-as-a-service demo: two tenants sharing one scheduler.

Spins up a :class:`~repro.service.SimulationService` over a temporary
workdir, submits a handful of small jobs from two tenants with unequal
weights, streams live progress for one job, cancels another mid-queue,
and prints the SLO metrics the service collected (queue latency, slot
occupancy, per-step latency quantiles).

Run:  PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.config import SimulationConfig
from repro.observe import Telemetry
from repro.service import SimulationService, TenantSpec

CFG = SimulationConfig(fluid_shape=(8, 8, 8), solver="batched")
NUM_STEPS = 8


async def main() -> None:
    telemetry = Telemetry()
    with tempfile.TemporaryDirectory(prefix="lbmib-service-") as workdir:
        async with SimulationService(
            workdir,
            tenants=[
                TenantSpec("hobby", weight=1.0),
                TenantSpec("premium", weight=3.0),
            ],
            max_batch=3,
            telemetry=telemetry,
        ) as service:
            print("LBM-IB simulation service: 2 tenants, weighted 1:3")
            jobs = []
            for index in range(3):
                jobs.append(
                    service.submit(
                        CFG, NUM_STEPS, tenant="hobby", state_seed=index
                    )
                )
            for index in range(3):
                jobs.append(
                    service.submit(
                        CFG, NUM_STEPS, tenant="premium", state_seed=10 + index
                    )
                )
            for job_id in jobs:
                snap = service.poll(job_id)
                print(f"  submitted {job_id} (tenant={snap.tenant})")

            # Cancel one hobby job while it is still queued.
            victim = jobs[2]
            service.cancel(victim)
            print(f"  cancelled {victim} while queued")

            # Stream one premium job's progress live.
            watched = jobs[3]
            print(f"  streaming {watched}:")
            async for event in service.stream(watched):
                if event["type"] == "progress":
                    print(
                        f"    progress: step {event['steps_completed']}"
                        f"/{NUM_STEPS}"
                    )
                else:
                    print(f"    result: {event['result'].status}")

            # Collect everything else.
            for job_id in jobs:
                result = await service.result(job_id)
                print(
                    f"  {job_id}: {result.status:>9}"
                    f"  steps={result.steps_completed}"
                )

    snap = telemetry.metrics.snapshot()
    counters = snap["counters"]
    latency = snap["histograms"]["service.queue_latency_seconds"]
    steps = snap["quantiles"]["service.step_seconds"]
    print("SLO metrics:")
    print(
        f"  accepted={counters['service.accepted']}"
        f" completed={counters['service.completed']}"
        f" cancelled={counters.get('service.cancelled_total', 0)}"
    )
    print(
        f"  queue latency: n={latency['count']}"
        f" mean={latency['mean'] * 1e3:.1f}ms max={latency['max'] * 1e3:.1f}ms"
    )
    print(
        f"  step time: n={steps['count']}"
        f" p50={steps['p50'] * 1e3:.2f}ms p99={steps['p99'] * 1e3:.2f}ms"
    )
    print(
        f"  slot occupancy (last tick):"
        f" {snap['gauges']['service.slot_occupancy']:.0f}"
        f"/{snap['gauges']['service.slot_capacity']:.0f}"
    )
    print("done: both tenants served, one job cancelled, SLOs recorded")


if __name__ == "__main__":
    asyncio.run(main())
