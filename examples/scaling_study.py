#!/usr/bin/env python3
"""The paper's evaluation in one script: solver equivalence + scaling.

Part 1 runs the *same* FSI problem through all three solver programs
(sequential Algorithm 1, OpenMP-style Algorithms 2-3, cube-based
Algorithm 4) and verifies they produce identical physics — the paper's
"all the numerical results have been verified to be correct by
comparing the new result to that of the sequential implementation".

Part 2 prints the machine-model reproductions of the paper's scaling
results: Figure 5 (OpenMP strong scaling on the 32-core machine) and
Figure 8 (weak scaling on thog, where the cube-based version wins by
53% at 64 cores).

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Simulation, SimulationConfig, StructureConfig
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.fig8 import render_fig8, run_fig8


def make_config(solver: str, num_threads: int) -> SimulationConfig:
    return SimulationConfig(
        fluid_shape=(16, 16, 16),
        tau=0.8,
        structure=StructureConfig(
            kind="flat_sheet", num_fibers=8, nodes_per_fiber=8,
            stretch_coefficient=2e-2, bend_coefficient=1e-4,
        ),
        solver=solver,
        num_threads=num_threads,
        cube_size=4,
    )


def perturb(sim: Simulation) -> None:
    sheet = sim.structure.sheets[0]
    sheet.positions[3, 4, 0] += 1.0


def main() -> None:
    steps = 10
    print("Part 1: numerical equivalence of the three solver programs")
    with Simulation(make_config("sequential", 1)) as ref:
        perturb(ref)
        ref.run(steps)
        ref_fluid = ref.fluid
        ref_sheet = ref.structure.sheets[0]

        for solver, threads in (("openmp", 3), ("cube", 4)):
            with Simulation(make_config(solver, threads)) as sim:
                perturb(sim)
                sim.run(steps)
                fluid_ok = ref_fluid.state_allclose(sim.fluid, rtol=1e-10, atol=1e-12)
                sheet_ok = ref_sheet.state_allclose(
                    sim.structure.sheets[0], rtol=1e-10, atol=1e-12
                )
                status = "MATCH" if (fluid_ok and sheet_ok) else "MISMATCH"
                print(f"  {solver:10s} ({threads} threads): {status}")
                assert fluid_ok and sheet_ok

    print("\nPart 2: modelled scaling on the paper's machines\n")
    print(render_fig5(run_fig5()))
    print()
    print(render_fig8(run_fig8()))


if __name__ == "__main__":
    main()
