#!/usr/bin/env python3
"""Paper Figure 7: a moving elastic sheet in a 3D tunnel flow.

A flexible sheet is placed across a tunnel; a moving-wall inlet at the
upstream x face drives fluid past it while the downstream face lets the
flow leave (zero-gradient outflow).  The sheet is carried downstream
and bows in the flow — the experiment the paper's weak-scaling study
simulates.

The script tracks the sheet's centroid and deformation and writes VTK
snapshots (fluid + structure) to ``out/`` for ParaView.

Run:  python examples/flexible_sheet_in_flow.py [--steps N] [--solver sequential|openmp|cube]
"""

from __future__ import annotations

import argparse
import pathlib

import numpy as np

from repro.api import BoundaryConfig, Simulation, SimulationConfig, StructureConfig
from repro.io import write_fluid_vtk, write_structure_vtk


def build_config(solver: str) -> SimulationConfig:
    """The tunnel-flow setup, scaled down from the paper's input."""
    return SimulationConfig(
        fluid_shape=(48, 24, 24),
        tau=0.7,
        structure=StructureConfig(
            kind="flat_sheet",
            num_fibers=12,
            nodes_per_fiber=12,
            stretch_coefficient=5e-2,
            bend_coefficient=5e-4,
            normal_axis=0,  # perpendicular to the flow
        ),
        boundaries=(
            # moving-wall inlet: pushes fluid in +x at the upstream face
            BoundaryConfig("bounce_back", "x", "low", wall_velocity=(0.05, 0.0, 0.0)),
            BoundaryConfig("outflow", "x", "high"),
            BoundaryConfig("bounce_back", "y", "low"),
            BoundaryConfig("bounce_back", "y", "high"),
        ),
        solver=solver,
        num_threads=2 if solver != "sequential" else 1,
        cube_size=4,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument(
        "--solver", choices=("sequential", "openmp", "cube"), default="sequential"
    )
    parser.add_argument("--vtk-every", type=int, default=50)
    args = parser.parse_args()

    out_dir = pathlib.Path(__file__).resolve().parent / "out"
    out_dir.mkdir(exist_ok=True)

    with Simulation(build_config(args.solver)) as sim:
        sheet = sim.structure.sheets[0]
        x0 = sheet.centroid()[0]
        print(f"tunnel flow past a flexible sheet ({args.solver} solver)")
        print(f"{'step':>6} {'centroid x':>11} {'bow depth':>10} {'max |u|':>10}")
        snapshots = 0
        for start in range(0, args.steps, args.vtk_every):
            chunk = min(args.vtk_every, args.steps - start)
            sim.run(chunk)
            pos = sheet.positions
            bow = float(pos[:, :, 0].max() - pos[:, :, 0].min())
            print(
                f"{sim.time_step:>6} {sheet.centroid()[0]:>11.3f} "
                f"{bow:>10.4f} {sim.max_velocity():>10.4f}"
            )
            write_fluid_vtk(
                out_dir / f"fluid_{sim.time_step:05d}.vtk",
                sim.fluid,
                include_vorticity=True,
            )
            write_structure_vtk(
                out_dir / f"sheet_{sim.time_step:05d}.vtk", sim.structure
            )
            snapshots += 1

        drift = sheet.centroid()[0] - x0
        print(f"centroid drift downstream: {drift:+.3f} lattice units")
        print(f"wrote {snapshots} VTK snapshot pairs to {out_dir}")
        assert drift > 0, "the sheet should be carried downstream by the flow"


if __name__ == "__main__":
    main()
