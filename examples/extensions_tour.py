#!/usr/bin/env python3
"""Tour of the future-work extensions the paper's conclusion proposes.

Runs the same small FSI problem through:

1. the barrier-based cube solver (paper Algorithm 4),
2. the dynamic-task-scheduled cube solver (no intra-step barriers),
3. the distributed-memory solver (rank slabs + halo messages),

verifies all three agree with the sequential program, then auto-tunes
the cube size and checkpoints/restores the run.

Run:  python examples/extensions_tour.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.config import SimulationConfig, StructureConfig
from repro.core.ib import geometry
from repro.core.lbm.fields import FluidGrid
from repro.core.solver import SequentialLBMIBSolver
from repro.distributed import DistributedLBMIBSolver, HybridCubeLBMIBSolver
from repro.io import load_checkpoint, save_checkpoint
from repro.machine.spec import thog
from repro.parallel import AsyncCubeLBMIBSolver, CubeGrid, CubeLBMIBSolver
from repro.tuning import autotune_cube_size, suggest_cube_size

SHAPE = (16, 12, 12)
STEPS = 10


def make_state():
    grid = FluidGrid(SHAPE, tau=0.8)
    structure = geometry.flat_sheet(
        SHAPE, num_fibers=6, nodes_per_fiber=6, stretch_coefficient=0.03
    )
    structure.sheets[0].positions[3, 3, 0] += 0.8
    return grid, structure


def main() -> None:
    print("reference: sequential solver (paper Algorithm 1)")
    ref_grid, ref_structure = make_state()
    SequentialLBMIBSolver(ref_grid, ref_structure).run(STEPS)

    print("\n1. barrier-based cube solver (paper Algorithm 4)")
    grid, structure = make_state()
    cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
    solver = CubeLBMIBSolver(cg, structure, num_threads=4)
    solver.run(STEPS)
    crossings = sum(b.stats.crossings for b in solver.barriers.values())
    assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=1e-10, atol=1e-12)
    print(f"   MATCH; {crossings} barrier crossings over {STEPS} steps")

    print("\n2. dynamic task scheduling (no intra-step barriers)")
    grid, structure = make_state()
    cg = CubeGrid.from_fluid_grid(grid, cube_size=4)
    async_solver = AsyncCubeLBMIBSolver(cg, structure, num_threads=4)
    async_solver.run(STEPS)
    assert ref_grid.state_allclose(cg.to_fluid_grid(), rtol=1e-10, atol=1e-12)
    print(
        f"   MATCH; 0 barrier crossings, {async_solver.tasks_executed} tasks executed"
    )

    print("\n3. distributed memory (rank slabs + halo exchange)")
    grid, structure = make_state()
    dist = DistributedLBMIBSolver(grid, structure, num_ranks=4)
    dist.run(STEPS)
    assert ref_grid.state_allclose(dist.gather_fluid(), rtol=1e-10, atol=1e-12)
    assert dist.structures_consistent()
    print(
        f"   MATCH; {dist.comm.total_messages()} messages, "
        f"{dist.comm.total_bytes_sent() / 1024:.0f} KiB of halo traffic"
    )

    print("\n4. hybrid: cube layout inside every distributed rank")
    grid, structure = make_state()
    hybrid = HybridCubeLBMIBSolver(grid, structure, num_ranks=2, cube_size=4)
    hybrid.run(STEPS)
    assert ref_grid.state_allclose(hybrid.gather_fluid(), rtol=1e-10, atol=1e-12)
    print(
        f"   MATCH; rank slabs of {hybrid.slab_sizes} planes, "
        f"{hybrid.comm.total_messages()} halo messages"
    )

    print("\n5. cube-size auto-tuning")
    config = SimulationConfig(
        fluid_shape=SHAPE,
        structure=StructureConfig(kind="flat_sheet", num_fibers=6, nodes_per_fiber=6),
        num_threads=2,
    )
    print(f"   model suggests k={suggest_cube_size(SHAPE, thog())} for thog's L2 budget")
    result = autotune_cube_size(config, candidates=[2, 4], steps=2)
    for k, seconds in sorted(result.seconds_by_size.items()):
        marker = "  <== best" if k == result.best_cube_size else ""
        print(f"   k={k}: {seconds:.3f}s{marker}")

    print("\n6. checkpoint / restore")
    with tempfile.NamedTemporaryFile(suffix=".npz") as tmp:
        save_checkpoint(tmp.name, ref_grid, ref_structure, time_step=STEPS)
        restored_grid, restored_structure, step = load_checkpoint(tmp.name)
        a = SequentialLBMIBSolver(ref_grid, ref_structure)
        b = SequentialLBMIBSolver(restored_grid, restored_structure)
        a.run(5)
        b.run(5)
        assert ref_grid.state_allclose(restored_grid, rtol=0, atol=0)
        print(f"   restored at step {step}; continued runs are bit-for-bit identical")

    print("\nall extensions verified against the sequential program")


if __name__ == "__main__":
    main()
